//! xoshiro256++ — the generator behind `SmallRng` on 64-bit targets.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // All-zero state is a fixed point of xoshiro; reseed it.
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4}: first outputs from the
        // reference implementation by Blackman & Vigna.
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            seed[0] = 1;
            seed[8] = 2;
            seed[16] = 3;
            seed[24] = 4;
            seed
        });
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn zero_seed_is_rescued() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
