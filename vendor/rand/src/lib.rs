#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and
//! no registry cache, so third-party crates cannot be downloaded. This
//! crate re-implements exactly the slice of the `rand` 0.8 API the
//! workspace uses — [`rngs::SmallRng`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`SeedableRng::seed_from_u64`] — on top of
//! xoshiro256++ (the same generator real `SmallRng` uses on 64-bit
//! targets), seeded through SplitMix64 like the original.
//!
//! Only determinism and reasonable statistical quality are promised;
//! the exact value streams differ from upstream `rand` in `gen_range`
//! (upstream uses widening-multiply rejection sampling; this stub uses
//! plain scaling), so synthesized datasets are *stable within this
//! repository* but not bit-identical to ones produced with the real
//! crate.

/// Random number generator implementations.
pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small;

/// The core generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Samples one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types uniformly samplable from a range (the `gen_range` bound).
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo_half), "badly skewed: {lo_half}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(5u32..9);
            assert!((5..9).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-4i32..=-2);
            assert!((-4..=-2).contains(&i));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3u32..3);
    }
}
