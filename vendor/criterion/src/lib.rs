#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be downloaded. This crate keeps the workspace's benches
//! compiling *and measuring*: each `bench_function` is calibrated to
//! ~`TARGET_SAMPLE_NANOS` per sample, timed for the configured number
//! of samples, and reported as min/median/mean nanoseconds on stdout.
//! There are no plots, no statistics beyond the three-point summary,
//! and no saved baselines.
//!
//! Positional command-line arguments act as substring filters on the
//! `group/function` id, like upstream; flags (`--bench`, `--exact`,
//! etc.) are accepted and ignored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock per measured sample.
const TARGET_SAMPLE_NANOS: u128 = 2_000_000;

/// How a batched iteration's setup cost is amortized (accepted for API
/// compatibility; the stub always times routine-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup.
    SmallInput,
    /// Large inputs: few routine calls per setup.
    LargeInput,
    /// One routine call per setup.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            filters,
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size: need at least 2 samples");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, f);
        self
    }

    /// Finishes the group (upstream writes reports here; a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(c: &mut Criterion, id: &str, mut f: F) {
    if !c.matches(id) {
        return;
    }
    // Calibrate: how many iterations fill a sample?
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let once = bench.elapsed.as_nanos().max(1);
    let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<u128> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() / u128::from(iters));
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{id:<40} time: [min {} median {} mean {}] ({} samples x {iters} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len(),
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            filters: Vec::new(),
        };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("spin", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0, "routine never executed");
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion {
            sample_size: 2,
            filters: vec!["other".into()],
        };
        let mut ran = false;
        c.bench_function("this_one", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut c = Criterion {
            sample_size: 2,
            filters: Vec::new(),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
