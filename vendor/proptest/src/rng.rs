//! Deterministic case generator (SplitMix64).

/// The generator driving strategy sampling. Seeded from the test name
/// so every run of a test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (FNV-1a of the name).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn in_range<T: Uniform>(&mut self, r: core::ops::Range<T>) -> T {
        T::from_range(self, r.start, r.end, false)
    }

    /// Uniform sample from an inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn in_range_inclusive<T: Uniform>(&mut self, r: core::ops::RangeInclusive<T>) -> T {
        T::from_range(self, *r.start(), *r.end(), true)
    }
}

/// Types samplable from a range by [`TestRng`].
pub trait Uniform: Copy {
    /// Samples from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn from_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn from_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "strategy range is empty");
                lo.wrapping_add((rng.next_u64() as u128 % span as u128) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn from_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "strategy range is empty");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);
