//! String strategies from a small regex subset.
//!
//! Supports exactly the shape the workspace's tests use: one character
//! class with an optional counted repetition — `[chars]{m,n}`,
//! `[chars]{n}`, `[chars]*`, `[chars]+`, or a bare `[chars]` /  literal
//! string. Classes may contain ranges (`a-z`), literals, and the
//! escapes `\n`, `\t`, `\r`, `\\`, `\]`, `\-`.

use crate::TestRng;

fn parse_class(pattern: &str, start: usize) -> (Vec<(char, char)>, usize) {
    let chars: Vec<char> = pattern.chars().collect();
    let mut ranges = Vec::new();
    let mut i = start;
    let mut pending: Option<char> = None;
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            match chars.get(i) {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('r') => '\r',
                Some(&c) => c,
                None => panic!("regex strategy: trailing backslash in {pattern:?}"),
            }
        } else {
            chars[i]
        };
        if c == '-' && pending.is_some() && i + 1 < chars.len() && chars[i + 1] != ']' {
            // Range: pending-next.
            i += 1;
            let hi = if chars[i] == '\\' {
                i += 1;
                match chars[i] {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    c => c,
                }
            } else {
                chars[i]
            };
            let lo = pending.take().expect("pending range start");
            assert!(lo <= hi, "regex strategy: inverted range in {pattern:?}");
            ranges.push((lo, hi));
        } else {
            if let Some(p) = pending.take() {
                ranges.push((p, p));
            }
            pending = Some(c);
        }
        i += 1;
    }
    assert!(
        i < chars.len(),
        "regex strategy: unterminated class in {pattern:?}"
    );
    if let Some(p) = pending {
        ranges.push((p, p));
    }
    (ranges, i + 1)
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.in_range(0..total);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("class char");
        }
        pick -= span;
    }
    unreachable!("pick within total")
}

/// Generates one string matching `pattern`.
///
/// # Panics
/// Panics on syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    if !pattern.starts_with('[') {
        // Literal pattern.
        return pattern.to_string();
    }
    let (ranges, rest) = parse_class(pattern, 1);
    let tail = &pattern[pattern
        .char_indices()
        .nth(rest)
        .map(|(i, _)| i)
        .unwrap_or(pattern.len())..];
    let (lo, hi) = match tail {
        "" => (1usize, 1usize),
        "*" => (0, 16),
        "+" => (1, 16),
        _ => {
            let inner = tail
                .strip_prefix('{')
                .and_then(|t| t.strip_suffix('}'))
                .unwrap_or_else(|| panic!("regex strategy: unsupported tail {tail:?}"));
            match inner.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repeat lower bound"),
                    n.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = inner.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        }
    };
    let len = rng.in_range_inclusive(lo..=hi);
    (0..len).map(|_| sample_class(&ranges, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printable_class_with_escapes() {
        let mut rng = TestRng::for_test("printable");
        for _ in 0..200 {
            let s = generate("[ -~\n\t]{0,600}", &mut rng);
            assert!(s.len() <= 600);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn exact_count_and_literal() {
        let mut rng = TestRng::for_test("exact");
        assert_eq!(generate("abc", &mut rng), "abc");
        let s = generate("[xy]{3}", &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.chars().all(|c| c == 'x' || c == 'y'));
    }
}
