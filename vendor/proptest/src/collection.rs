//! Collection strategies (`vec`, `btree_set`).

use std::collections::BTreeSet;
use std::fmt::Debug;

use crate::{Strategy, TestRng};

/// Strategy for `Vec`s with element strategy `S` and a length range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: core::ops::Range<usize>,
}

/// Generates vectors whose length is drawn from `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.in_range(self.sizes.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s with element strategy `S` and a size range.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    sizes: core::ops::Range<usize>,
}

/// Generates sets whose size is drawn from `sizes`. If the element
/// strategy cannot produce enough distinct values, the set saturates at
/// whatever was reachable (upstream proptest retries similarly).
pub fn btree_set<S>(element: S, sizes: core::ops::Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, sizes }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.in_range(self.sizes.clone());
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
