#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be downloaded. This crate implements the subset of its API
//! the workspace uses: the [`proptest!`] macro, numeric-range / tuple /
//! collection / character-class strategies, [`Just`], [`prop_oneof!`],
//! [`any`], and the `prop_assert*` family.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), there is **no
//! shrinking** (a failing case panics with its inputs printed), and no
//! persistence of failing seeds (any `proptest-regressions` files are
//! ignored).

use std::fmt::Debug;

pub mod collection;
mod regex;
mod rng;

pub use rng::TestRng;

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Unlike upstream there is no shrinking, so a
/// strategy is just a seeded sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_inclusive(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String literals are character-class regex strategies
/// (`"[ -~\n\t]{0,600}"` style; see [`mod@regex`] for the supported
/// subset).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniform choice between type-erased strategies ([`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof: no alternatives");
        let idx = rng.in_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Uniformly picks one of the listed strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        // Callers conventionally parenthesize range alternatives;
        // don't lint the redundant parens in the expansion.
        #[allow(unused_parens)]
        let alternatives = vec![$($crate::Strategy::boxed($s)),+];
        $crate::Union(alternatives)
    }};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each function body runs once per generated
/// case; `prop_assume!` rejections are regenerated, failures panic with
/// the offending inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ( @impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(20) + 1000,
                    "proptest {}: too many rejected cases",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                // Render inputs up front: the body may move them.
                let inputs = format!("{:#?}", ($(&$arg,)+));
                let result: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match result {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed: {}\ninputs: {}",
                        stringify!($name),
                        msg,
                        inputs
                    ),
                }
            }
        }
    )*};
    ( $($rest:tt)* ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in -2i32..=2, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(pairs in collection::vec((0u64..100, 1u32..5), 1..20)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            for &(v, w) in &pairs {
                prop_assert!(v < 100 && (1..5).contains(&w));
            }
        }

        #[test]
        fn assume_rejects_without_counting(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn oneof_and_just(v in prop_oneof![(0.0f32..1.0), Just(f32::INFINITY)]) {
            prop_assert!(v.is_infinite() || (0.0..1.0).contains(&v));
        }

        #[test]
        fn regex_class_strategy(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn btree_set_sizes() {
        let mut rng = TestRng::for_test("btree");
        for _ in 0..50 {
            let s = Strategy::generate(&collection::btree_set(1u32..500, 0..60), &mut rng);
            assert!(s.len() < 60);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failing_case_panics_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
