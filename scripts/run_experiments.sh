#!/usr/bin/env bash
# Regenerates every paper table/figure + ablation into results/.
# Usage: scripts/run_experiments.sh [utterances-per-task]
set -euo pipefail
cd "$(dirname "$0")/.."
UTTS="${1:-8}"
OUT=results
mkdir -p "$OUT"
BINS=(
  fig01_time_breakdown fig02_dataset_sizes
  table1_wfst_sizes table2_compressed_sizes table3_configs table4_gpu_config
  fig06_cache_miss_sweep fig07_offset_table fig08_memory_footprint
  fig09_search_energy fig10_power_breakdown fig11_bandwidth
  table5_decode_latency table6_wer fig12_overall_time fig13_overall_energy
  ablation_lm_lookup ablation_preemptive_pruning ablation_quantization
  ablation_cache_split ablation_two_pass ablation_beam_sweep
  ablation_scoring_substrate overall_summary
)
cargo build --release -p unfold-bench --bins
for b in "${BINS[@]}"; do
  echo "== $b"
  EXTRA=()
  # The headline run also exports decode-time telemetry (JSONL).
  if [[ "$b" == overall_summary ]]; then
    EXTRA=(--metrics "$OUT/overall_summary_metrics.jsonl")
  fi
  UNFOLD_UTTS="$UTTS" "target/release/$b" "${EXTRA[@]}" | tee "$OUT/$b.md"
done
# Machine-readable decode-throughput report (frames/sec, RTF, OLT hit
# rate, worker-pool scaling) — lands at the repo root as BENCH_decode.json.
echo "== decode_throughput"
cargo bench -p unfold-bench --bench decode_throughput
# Optional: run the differential verification campaign alongside the
# experiments (UNFOLD_VERIFY=<cases>, e.g. UNFOLD_VERIFY=256). Any
# divergence fails the script and leaves repro files in results/verify/.
if [[ -n "${UNFOLD_VERIFY:-}" ]]; then
  echo "== verify (${UNFOLD_VERIFY} cases)"
  cargo build --release -p unfold-verify
  target/release/unfold-verify --cases "$UNFOLD_VERIFY" --seed 42 \
    --out "$OUT/verify" | tee "$OUT/verify_campaign.log"
fi
# Optional: serve-mode latency (UNFOLD_SERVE=1): start the streaming
# server, drive the closed-loop load generator, and append the
# first-partial / final latency percentiles. The machine-readable
# report lands at the repo root as BENCH_serve.json.
if [[ -n "${UNFOLD_SERVE:-}" ]]; then
  echo "== serve latency"
  cargo build --release -p unfold-cli
  PORT_FILE="$OUT/serve.port"
  rm -f "$PORT_FILE"
  target/release/unfold-cli serve --task tedlium --port 0 \
    --port-file "$PORT_FILE" --workers 0 > "$OUT/serve_run.md" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do [[ -s "$PORT_FILE" ]] && break; sleep 0.1; done
  [[ -s "$PORT_FILE" ]] || { echo "serve never bound a port" >&2; exit 1; }
  target/release/unfold-cli loadgen --task tedlium --port-file "$PORT_FILE" \
    --sessions 16 --concurrency 4 --utterances "$UTTS" \
    --saturate --out BENCH_serve.json --shutdown | tee "$OUT/serve_latency.md"
  wait "$SERVE_PID"
  rm -f "$PORT_FILE"
fi
echo "results written to $OUT/"
