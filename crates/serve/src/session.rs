//! Session identity, lifecycle, and the table entry the scheduler
//! juggles.

use std::collections::VecDeque;
use std::sync::Arc;

use unfold_bias::BiasingFst;
use unfold_decoder::{DecodeResult, FrameInput, LmSource, StreamSession};
use unfold_lm::WordId;

/// Opaque session identifier, unique for a server's lifetime.
pub type SessionId = u64;

/// Where a session is in its lifecycle.
///
/// `Open → Finishing → Closed`; eviction removes the entry from any
/// phase. There is no separate "Streaming" state — an `Open` session
/// with queued frames is streaming, one without is idle, and the
/// distinction is visible in [`SessionView::queued`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Accepting frames.
    Open,
    /// `finish()` called; draining queued frames, then finalizing.
    Finishing,
    /// Final result ready for collection.
    Closed,
}

/// A read-only snapshot of one session's scheduling state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionView {
    /// Lifecycle phase.
    pub phase: SessionPhase,
    /// Frames accepted from the client so far.
    pub frames_accepted: u64,
    /// Frames actually decoded so far.
    pub frames_decoded: u64,
    /// Frames queued (raw + scored), awaiting a decode slice.
    pub queued: usize,
    /// Frames still awaiting the scoring stage (a subset of `queued`;
    /// always 0 in lockstep mode, where scoring happens at ingest).
    pub queued_raw: usize,
    /// Scored frames awaiting the search stage (a subset of `queued`).
    pub queued_scored: usize,
    /// Whether a worker currently holds frames or decode state of this
    /// session (a search lease or a scoring lease).
    pub leased: bool,
    /// Whether a scoring worker currently holds raw frames of this
    /// session.
    pub score_leased: bool,
    /// Degradation-ladder level this session was admitted at
    /// (0 = full beams).
    pub degrade_level: u8,
}

/// The session-table entry. The decode state lives in an `Option` so a
/// worker can *move it out* under the lock (a lease), decode without
/// holding the lock, and return it.
///
/// The entry pins its *own* LM handle, resolved once at `open` from the
/// server's model registry. Retiring an LM from the registry therefore
/// never disturbs a live session — the session's `Arc` keeps the model
/// alive until its final result is collected.
#[derive(Debug)]
pub(crate) struct Session<L: LmSource + ?Sized> {
    /// The LM this session decodes against (fixed at admission).
    pub lm: Arc<L>,
    /// The registry generation stamp of `lm` at admission — the stable
    /// identity leases hand workers for their per-LM OLT memo (heap
    /// addresses are reusable across retire/add; stamps are not).
    pub lm_gen: u64,
    /// The biasing model personalizing this session, if any (fixed at
    /// admission, like `lm`). Each quantum wraps `lm` in a fresh
    /// on-the-fly `BiasedLm` around this handle.
    pub bias: Option<Arc<BiasingFst>>,
    /// Registry generation stamp of `bias` at admission (0 when
    /// unbiased; stamps share the LM counter and start at the LM
    /// count, so 0 is never a bias stamp).
    pub bias_gen: u64,
    /// Search state; `None` while leased to a worker.
    pub decode: Option<StreamSession>,
    /// Queued score rows (`row[pdf - 1]` = acoustic cost) — the
    /// search stage's input. In pipelined mode this is the bounded
    /// SPSC scored-frame queue (depth capped by the search lag).
    pub queue: VecDeque<Vec<f32>>,
    /// Frames awaiting the scoring stage (pipelined mode only;
    /// lockstep scoring happens at ingest, so this stays empty).
    pub raw: VecDeque<FrameInput>,
    /// Whether a scoring worker holds frames drained from `raw`. At
    /// most one score lease per session is outstanding — the SPSC
    /// discipline that makes scored rows land in push order, which is
    /// what keeps pipelined decode bit-identical to lockstep.
    pub score_leased: bool,
    /// Set when scoring for this session stalled on a full scored
    /// queue; the session re-enters the score-ready queue when search
    /// drains it. Prevents a stalled session from spinning in the
    /// scoring stage's ready queue.
    pub score_stalled: bool,
    pub phase: SessionPhase,
    /// Last *client* activity (open/push/finish) — the idle-eviction
    /// clock. Decode progress deliberately does not refresh it.
    pub last_activity_ms: u64,
    /// Last *scheduler* progress (lease completion). Collection has no
    /// timestamp of its own, so the root span closes at
    /// `max(last_activity_ms, last_progress_ms)` — never before its
    /// child lease spans.
    pub last_progress_ms: u64,
    /// The `(deadline_ms, seq)` key of this session's live ready-queue
    /// entry, if any; heap entries with a different key are stale.
    pub armed: Option<(u64, u64)>,
    pub leased: bool,
    pub result: Option<DecodeResult>,
    pub frames_accepted: u64,
    pub frames_decoded: u64,
    /// Stable prefix cached at the last lease completion, served while
    /// the decode state is out with a worker.
    pub last_partial: Vec<WordId>,
    pub degrade_level: u8,
    /// The session's root lifecycle span, open from admission until
    /// the slot is freed (collect or evict). 0 = spans disabled.
    pub root_span: u64,
    /// The open `sched-wait` span, if the session is armed and waiting
    /// for a lease. 0 = none open.
    pub wait_span: u64,
}

impl<L: LmSource + ?Sized> Session<L> {
    pub(crate) fn new(
        decode: StreamSession,
        lm: Arc<L>,
        lm_gen: u64,
        bias: Option<(Arc<BiasingFst>, u64)>,
        now_ms: u64,
        degrade_level: u8,
    ) -> Self {
        let (bias, bias_gen) = match bias {
            Some((b, g)) => (Some(b), g),
            None => (None, 0),
        };
        Session {
            lm,
            lm_gen,
            bias,
            bias_gen,
            decode: Some(decode),
            queue: VecDeque::new(),
            raw: VecDeque::new(),
            score_leased: false,
            score_stalled: false,
            phase: SessionPhase::Open,
            last_activity_ms: now_ms,
            last_progress_ms: now_ms,
            armed: None,
            leased: false,
            result: None,
            frames_accepted: 0,
            frames_decoded: 0,
            last_partial: Vec::new(),
            degrade_level,
            root_span: 0,
            wait_span: 0,
        }
    }

    /// Whether the session has work a *search* lease could perform:
    /// scored frames, or a pending finalize with nothing still in (or
    /// headed for) the scoring stage — finalizing while raw frames
    /// await scoring would drop them from the transcript.
    pub(crate) fn runnable(&self) -> bool {
        !self.queue.is_empty()
            || (self.phase == SessionPhase::Finishing
                && self.result.is_none()
                && self.raw.is_empty()
                && !self.score_leased)
    }

    /// Whether the scoring stage can take frames from this session:
    /// raw frames present, no score lease outstanding, and not parked
    /// stalled on a full scored queue.
    pub(crate) fn scoreable(&self) -> bool {
        !self.raw.is_empty() && !self.score_leased && !self.score_stalled
    }

    pub(crate) fn view(&self) -> SessionView {
        SessionView {
            phase: self.phase,
            frames_accepted: self.frames_accepted,
            frames_decoded: self.frames_decoded,
            queued: self.queue.len() + self.raw.len(),
            queued_raw: self.raw.len(),
            queued_scored: self.queue.len(),
            leased: self.leased || self.score_leased,
            score_leased: self.score_leased,
            degrade_level: self.degrade_level,
        }
    }
}
