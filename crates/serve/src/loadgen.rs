//! Closed-loop load generator for the TCP front end.
//!
//! `concurrency` client threads each stream their share of `sessions`
//! sequentially: open, send frame chunks (waiting for each `Partial`
//! before sending the next chunk — closed loop, so offered load adapts
//! to the server), finish, wait for `Final`. Two latencies are
//! measured per session:
//!
//! * **first partial** — open until the first *non-empty* stable
//!   partial, the "time to first word" a captioning UI cares about;
//! * **final** — `Finish` sent until `Final` received, the tail
//!   flush cost.
//!
//! Latencies are captured in *microseconds* (each client thread bumps
//! its own lock-free [`LogHistogram`], merged exactly at the end) and
//! reported as fractional milliseconds — sub-millisecond finals no
//! longer truncate to 0.
//!
//! With [`LoadgenConfig::scrape_every_ms`] set, a scraper thread polls
//! the live `Stats` endpoint on its own connection while traffic runs,
//! asserting that every counter is monotonic scrape-over-scrape and
//! that the frame ledger reconciles (`accepted = decoded + backlog +
//! inflight + dropped`) inside each consistent snapshot.
//!
//! The report carries p50/p95/p99 summaries of both latencies plus the
//! server's own metrics record (admissions, evictions, deadline
//! misses), and serializes to the JSON shape `BENCH_serve.json` stores.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use unfold_obs::{LogHistogram, ObsRecord, Summary};

use crate::wire::{read_server, write_client, ClientMsg, ServerMsg};

/// Load-generator knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Total sessions to run.
    pub sessions: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Frames per `Frames` message.
    pub chunk_frames: usize,
    /// Poll the live `Stats` endpoint every this many milliseconds from
    /// a dedicated scraper connection while traffic runs (0 = off).
    pub scrape_every_ms: u64,
    /// Send `Shutdown` to the server after the run (for smoke tests
    /// that own the server's lifetime).
    pub shutdown_after: bool,
    /// Register this many *distinct* per-user biasing models over the
    /// wire before traffic starts, then open each session with one of
    /// them round-robin (0 = every session unbiased). Models the
    /// "contacts list per caller" personalization workload.
    pub bias_users: usize,
    /// Vocabulary bound for the minted biasing phrases (word ids are
    /// drawn from `1..=bias_vocab`; keep it within the served LM's
    /// vocabulary so the phrases can actually fire).
    pub bias_vocab: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            sessions: 16,
            concurrency: 4,
            chunk_frames: 10,
            scrape_every_ms: 0,
            shutdown_after: false,
            bias_users: 0,
            bias_vocab: 50,
        }
    }
}

/// The registry name loadgen gives biasing user `u`.
fn bias_user_name(u: usize) -> String {
    format!("user-{u}")
}

#[derive(Debug, Default, Clone, Copy)]
struct SessionOutcome {
    first_partial_us: Option<u64>,
    final_us: Option<u64>,
    completed: bool,
    rejected: bool,
    errored: bool,
}

/// A latency summary in fractional milliseconds (captured in µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyMs {
    /// Observations.
    pub count: u64,
    /// Mean, ms.
    pub mean: f64,
    /// Median, ms.
    pub p50: f64,
    /// 95th percentile, ms.
    pub p95: f64,
    /// 99th percentile, ms.
    pub p99: f64,
    /// Exact minimum, ms.
    pub min: f64,
    /// Exact maximum, ms.
    pub max: f64,
}

impl LatencyMs {
    fn from_us(s: &Summary) -> Self {
        LatencyMs {
            count: s.count,
            mean: s.mean / 1e3,
            p50: s.p50 / 1e3,
            p95: s.p95 / 1e3,
            p99: s.p99 / 1e3,
            min: s.min as f64 / 1e3,
            max: s.max as f64 / 1e3,
        }
    }
}

/// JSON number, with non-finite values mapped to `null`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One latency summary as a JSON object.
fn summary(s: &LatencyMs) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"min\": {}, \"max\": {}}}",
        s.count,
        num(s.mean),
        num(s.p50),
        num(s.p95),
        num(s.p99),
        num(s.min),
        num(s.max)
    )
}

/// What a load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Sessions attempted.
    pub sessions_requested: usize,
    /// Sessions that received a `Final`.
    pub sessions_completed: u64,
    /// Sessions refused admission.
    pub sessions_rejected: u64,
    /// Sessions that hit a protocol or server error.
    pub errors: u64,
    /// Open → first non-empty stable partial.
    pub first_partial_ms: LatencyMs,
    /// `Finish` sent → `Final` received.
    pub final_ms: LatencyMs,
    /// Wall time of the whole run (fractional ms).
    pub elapsed_ms: f64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Mid-run `Stats` scrapes performed (0 when scraping is off).
    pub scrapes: u64,
    /// Scrapes that failed: I/O error, a counter moving backwards, or a
    /// snapshot whose frame ledger did not reconcile.
    pub scrape_failures: u64,
    /// Whether the frame ledger reconciled in the final stats fetch
    /// *and* every mid-run scrape: `serve.frames_accepted =
    /// frames_decoded + backlog + inflight + dropped`.
    pub reconciled: bool,
    /// Closed `session`-stage spans the server reported at the end —
    /// reconciles with `sessions_completed` plus evictions.
    pub server_session_spans: u64,
    /// The server's flight-recorder dump (JSONL), fetched at the end:
    /// the pinned incident snapshot if one froze, else a live ring
    /// snapshot. Not serialized into the JSON report.
    pub flight_jsonl: String,
    /// The server's own metrics totals (`serve.*`), fetched over the
    /// wire at the end of the run.
    pub server: Vec<(String, f64)>,
}

impl LoadgenReport {
    /// Looks up one server metric by name (e.g.
    /// `"serve.deadline_misses"`).
    pub fn server_total(&self, name: &str) -> Option<f64> {
        self.server.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Serializes the report as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        self.to_json_with_saturation(&[])
    }

    /// Same document with a `"saturation"` array (one object per sweep
    /// rung, see [`run_saturation_sweep`]) ahead of the server-counter
    /// block. An empty sweep omits the key, so plain `to_json` output
    /// is unchanged.
    pub fn to_json_with_saturation(&self, sweep: &[SaturationPoint]) -> String {
        self.to_json_document(sweep, None)
    }

    /// The full document: saturation sweep plus the personalized-bias
    /// A/B block (see [`run_bias_compare`]). Either part is omitted
    /// when absent, so the narrower serializers' output is unchanged.
    pub fn to_json_document(
        &self,
        sweep: &[SaturationPoint],
        bias: Option<&BiasCompare>,
    ) -> String {
        self.to_json_full(sweep, bias, None)
    }

    /// The widest document: saturation sweep, bias A/B block, and the
    /// lockstep-vs-pipelined comparison (see [`PipelineCompare`]). Every
    /// optional part is omitted when absent, so the narrower
    /// serializers' output is byte-identical to before they existed.
    pub fn to_json_full(
        &self,
        sweep: &[SaturationPoint],
        bias: Option<&BiasCompare>,
        pipeline: Option<&PipelineCompare>,
    ) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"sessions_requested\": {},\n",
            self.sessions_requested
        ));
        out.push_str(&format!(
            "  \"sessions_completed\": {},\n",
            self.sessions_completed
        ));
        out.push_str(&format!(
            "  \"sessions_rejected\": {},\n",
            self.sessions_rejected
        ));
        out.push_str(&format!("  \"errors\": {},\n", self.errors));
        out.push_str(&format!("  \"elapsed_ms\": {},\n", num(self.elapsed_ms)));
        out.push_str(&format!(
            "  \"sessions_per_sec\": {},\n",
            num(self.sessions_per_sec)
        ));
        out.push_str(&format!("  \"scrapes\": {},\n", self.scrapes));
        out.push_str(&format!(
            "  \"scrape_failures\": {},\n",
            self.scrape_failures
        ));
        out.push_str(&format!("  \"reconciled\": {},\n", self.reconciled));
        out.push_str(&format!(
            "  \"server_session_spans\": {},\n",
            self.server_session_spans
        ));
        out.push_str(&format!(
            "  \"first_partial_ms\": {},\n",
            summary(&self.first_partial_ms)
        ));
        out.push_str(&format!("  \"final_ms\": {},\n", summary(&self.final_ms)));
        if !sweep.is_empty() {
            out.push_str("  \"saturation\": [\n");
            for (i, p) in sweep.iter().enumerate() {
                out.push_str(&format!(
                    "    {}{}\n",
                    point_json(p),
                    if i + 1 < sweep.len() { "," } else { "" }
                ));
            }
            out.push_str("  ],\n");
        }
        if let Some(pc) = pipeline {
            out.push_str(&pc.to_json_block());
        }
        if let Some(b) = bias {
            out.push_str(&format!(
                "  \"bias\": {{\"users\": {}, \"sessions\": {}, \"completed\": {}, \"errors\": {}, \"unbiased_p99_final_ms\": {}, \"p99_final_ms\": {}, \"deadline_miss_delta\": {}, \"unbiased_vm_rss_kb\": {}, \"vm_rss_kb\": {}, \"marginal_rss_kb_per_user\": {}}},\n",
                b.users,
                b.sessions,
                b.completed,
                b.errors,
                num(b.unbiased_p99_final_ms),
                num(b.biased_p99_final_ms),
                num(b.deadline_miss_delta),
                num(b.unbiased_vm_rss_kb),
                num(b.biased_vm_rss_kb),
                num(b.marginal_rss_kb_per_user),
            ));
        }
        out.push_str("  \"server\": {");
        for (i, (name, v)) in self.server.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {}", num(*v)));
        }
        if !self.server.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn conn(addr: SocketAddr) -> io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    Ok((BufReader::new(stream.try_clone()?), BufWriter::new(stream)))
}

/// The `serve.*` counters every scrape re-checks for monotonicity.
const MONOTONIC: &[&str] = &[
    "serve.sessions_opened",
    "serve.frames_accepted",
    "serve.frames_decoded",
    "serve.frames_dropped",
    "serve.quanta",
    "serve.finals",
    "serve.deadline_misses",
    "serve.worker_panics",
];

fn metric(pairs: &[(String, f64)], name: &str) -> Option<f64> {
    pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// Whether one stats snapshot's frame ledger balances: every accepted
/// frame is decoded, queued, out with a worker, or accounted dropped.
/// Stats snapshots are taken under the core lock, so this holds exactly
/// at any instant — not just at quiescence.
fn ledger_reconciles(pairs: &[(String, f64)]) -> bool {
    let get = |n| metric(pairs, n).unwrap_or(f64::NAN);
    let accounted = get("serve.frames_decoded")
        + get("serve.backlog_frames")
        + get("serve.frames_inflight")
        + get("serve.frames_dropped");
    get("serve.frames_accepted") == accounted
}

fn fetch_stats(
    rd: &mut BufReader<TcpStream>,
    wr: &mut BufWriter<TcpStream>,
) -> io::Result<Vec<(String, f64)>> {
    write_client(wr, &ClientMsg::Stats)?;
    match read_server(rd)? {
        Some(ServerMsg::Stats { jsonl }) => match ObsRecord::parse_line(jsonl.trim()) {
            Ok(ObsRecord::Run(pairs)) => Ok(pairs),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stats reply is not a run record",
            )),
        },
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected reply to Stats",
        )),
    }
}

/// Polls `Stats` on a dedicated connection until `done`, verifying each
/// snapshot against the previous one. Returns `(scrapes, failures)`.
fn scrape_loop(addr: SocketAddr, every_ms: u64, done: &AtomicBool) -> (u64, u64) {
    let Ok((mut rd, mut wr)) = conn(addr) else {
        return (0, 1);
    };
    let (mut scrapes, mut failures) = (0u64, 0u64);
    let mut prev: Vec<(String, f64)> = Vec::new();
    while !done.load(Ordering::Relaxed) {
        // Sleep in short slices so the scraper exits promptly.
        let mut slept = 0u64;
        while slept < every_ms && !done.load(Ordering::Relaxed) {
            let step = (every_ms - slept).min(10);
            std::thread::sleep(Duration::from_millis(step));
            slept += step;
        }
        if done.load(Ordering::Relaxed) {
            break;
        }
        let cur = match fetch_stats(&mut rd, &mut wr) {
            Ok(pairs) => pairs,
            Err(_) => {
                failures += 1;
                break;
            }
        };
        scrapes += 1;
        let monotone = MONOTONIC
            .iter()
            .all(|n| match (metric(&prev, n), metric(&cur, n)) {
                (Some(before), Some(now)) => now >= before,
                (None, Some(_)) => true, // first scrape
                _ => false,              // counter vanished
            });
        if !monotone || !ledger_reconciles(&cur) {
            failures += 1;
        }
        prev = cur;
    }
    (scrapes, failures)
}

/// Runs one session over an existing connection, optionally opened
/// with a named biasing model.
fn run_session(
    rd: &mut BufReader<TcpStream>,
    wr: &mut BufWriter<TcpStream>,
    utt: &[Vec<f32>],
    chunk_frames: usize,
    bias: Option<&str>,
) -> io::Result<SessionOutcome> {
    let mut out = SessionOutcome::default();
    let opened_at = Instant::now();
    write_client(
        wr,
        &ClientMsg::Open {
            lm: None,
            bias: bias.map(str::to_string),
        },
    )?;
    match read_server(rd)? {
        Some(ServerMsg::Opened { .. }) => {}
        Some(ServerMsg::Rejected { .. }) => {
            out.rejected = true;
            return Ok(out);
        }
        _ => {
            out.errored = true;
            return Ok(out);
        }
    }
    for chunk in utt.chunks(chunk_frames.max(1)) {
        write_client(wr, &ClientMsg::Frames(chunk.to_vec()))?;
        match read_server(rd)? {
            Some(ServerMsg::Partial { words }) => {
                if out.first_partial_us.is_none() && !words.is_empty() {
                    out.first_partial_us = Some(opened_at.elapsed().as_micros() as u64);
                }
            }
            _ => {
                out.errored = true;
                return Ok(out);
            }
        }
    }
    let finish_at = Instant::now();
    write_client(wr, &ClientMsg::Finish)?;
    match read_server(rd)? {
        Some(ServerMsg::Final { .. }) => {
            out.final_us = Some(finish_at.elapsed().as_micros() as u64);
            out.completed = true;
        }
        _ => out.errored = true,
    }
    Ok(out)
}

/// Drives a closed-loop load test against a serve front end at `addr`.
/// Session `i` streams `utts[i % utts.len()]` (each utterance a list
/// of score rows).
///
/// # Errors
/// Connection failures; per-session protocol errors are *counted*, not
/// returned.
///
/// # Panics
/// Panics if `utts` is empty.
pub fn run_loadgen(
    addr: SocketAddr,
    utts: &[Vec<Vec<f32>>],
    cfg: &LoadgenConfig,
) -> io::Result<LoadgenReport> {
    assert!(!utts.is_empty(), "loadgen needs at least one utterance");
    // Register the per-user biasing models up front, over their own
    // connection, so the run proper measures only decode traffic. Each
    // user's phrase list is minted from its own seed — distinct users
    // get distinct models, and re-running is deterministic.
    if cfg.bias_users > 0 {
        let (mut rd, mut wr) = conn(addr)?;
        for u in 0..cfg.bias_users {
            let fst = unfold_bias::BiasingFst::mint(
                0xB1A5 ^ (u as u64).wrapping_mul(0x9E37_79B9),
                cfg.bias_vocab,
                5,
            );
            write_client(
                &mut wr,
                &ClientMsg::AddBias {
                    name: bias_user_name(u),
                    phrases: fst.phrases().to_vec(),
                },
            )?;
            match read_server(&mut rd)? {
                Some(ServerMsg::Ack) => {}
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("registering biasing user {u} failed: {other:?}"),
                    ))
                }
            }
        }
    }
    let started = Instant::now();
    let concurrency = cfg.concurrency.max(1);
    let first_partial = LogHistogram::new();
    let final_lat = LogHistogram::new();
    let done = AtomicBool::new(false);
    let (outcomes, scrapes, scrape_failures) = std::thread::scope(|scope| {
        let scraper = (cfg.scrape_every_ms > 0)
            .then(|| scope.spawn(|| scrape_loop(addr, cfg.scrape_every_ms, &done)));
        // Each client thread records latencies (in µs) into its own
        // lock-free histograms; the exact-count merge below folds them
        // into the run totals independent of join order.
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                scope.spawn(
                    move || -> io::Result<(Vec<SessionOutcome>, LogHistogram, LogHistogram)> {
                        let (mut rd, mut wr) = conn(addr)?;
                        let (fp, fl) = (LogHistogram::new(), LogHistogram::new());
                        let mut outs = Vec::new();
                        let mut i = worker;
                        while i < cfg.sessions {
                            let utt = &utts[i % utts.len()];
                            let bias_name =
                                (cfg.bias_users > 0).then(|| bias_user_name(i % cfg.bias_users));
                            let o = run_session(
                                &mut rd,
                                &mut wr,
                                utt,
                                cfg.chunk_frames,
                                bias_name.as_deref(),
                            )?;
                            if let Some(us) = o.first_partial_us {
                                fp.record(us);
                            }
                            if let Some(us) = o.final_us {
                                fl.record(us);
                            }
                            outs.push(o);
                            i += concurrency;
                        }
                        Ok((outs, fp, fl))
                    },
                )
            })
            .collect();
        let mut outcomes = Vec::new();
        for h in handles {
            if let Ok((outs, fp, fl)) = h.join().expect("loadgen thread") {
                outcomes.extend(outs);
                first_partial.merge_from(&fp);
                final_lat.merge_from(&fl);
            }
        }
        done.store(true, Ordering::Relaxed);
        let (scrapes, failures) = scraper.map_or((0, 0), |h| h.join().expect("scrape thread"));
        (outcomes, scrapes, failures)
    });

    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    for o in &outcomes {
        completed += u64::from(o.completed);
        rejected += u64::from(o.rejected);
        errors += u64::from(o.errored);
    }
    // Sessions lost to connection-level failures count as errors too.
    errors += (cfg.sessions.saturating_sub(outcomes.len())) as u64;

    // Fetch the server's own counters plus the span/flight dump, and
    // optionally stop it.
    let (mut rd, mut wr) = conn(addr)?;
    let server = fetch_stats(&mut rd, &mut wr).unwrap_or_default();
    write_client(&mut wr, &ClientMsg::Dump)?;
    let (flight_jsonl, spans) = match read_server(&mut rd)? {
        Some(ServerMsg::Dump { flight, spans }) => (flight, spans),
        _ => (String::new(), String::new()),
    };
    let server_session_spans = spans
        .lines()
        .filter(|l| l.contains("\"stage\":\"session\""))
        .count() as u64;
    if cfg.shutdown_after {
        write_client(&mut wr, &ClientMsg::Shutdown)?;
    }

    let reconciled = scrape_failures == 0 && ledger_reconciles(&server);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(LoadgenReport {
        sessions_requested: cfg.sessions,
        sessions_completed: completed,
        sessions_rejected: rejected,
        errors,
        first_partial_ms: LatencyMs::from_us(&first_partial.summary()),
        final_ms: LatencyMs::from_us(&final_lat.summary()),
        elapsed_ms,
        sessions_per_sec: if elapsed_ms <= 0.0 {
            completed as f64
        } else {
            completed as f64 / (elapsed_ms / 1e3)
        },
        scrapes,
        scrape_failures,
        reconciled,
        server_session_spans,
        flight_jsonl,
        server,
    })
}

/// One rung of a saturation sweep: the offered load and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationPoint {
    /// Sessions offered at this rung.
    pub sessions: usize,
    /// Concurrent client connections at this rung.
    pub concurrency: usize,
    /// Sessions that received a `Final`.
    pub completed: u64,
    /// Sessions refused admission.
    pub rejected: u64,
    /// Protocol or connection errors.
    pub errors: u64,
    /// Completed sessions per wall-clock second (the throughput axis).
    pub sessions_per_sec: f64,
    /// p99 open → first non-empty stable partial, ms.
    pub p99_first_partial_ms: f64,
    /// p99 `Finish` sent → `Final` received, ms (the latency axis).
    pub p99_final_ms: f64,
    /// Deadline misses the server accrued *during this rung* — the
    /// delta of the cumulative `serve.deadline_misses` counter across
    /// the rung, so the curve shows where misses start, not a running
    /// total.
    pub deadline_miss_delta: f64,
    /// The server process's resident set size (KiB) scraped at the end
    /// of the rung (`serve.vm_rss_kb`; NaN → `null` when unavailable,
    /// e.g. off Linux). The memory axis of the saturation curve.
    pub vm_rss_kb: f64,
}

/// Doubling concurrency ladder for a saturation sweep: 1, 2, 4, …
/// capped at `max`, with `max` itself appended when it is not a power
/// of two. `max == 0` yields just `[1]`.
pub fn saturation_ladder(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut ladder = Vec::new();
    let mut c = 1;
    while c <= max {
        ladder.push(c);
        c *= 2;
    }
    if *ladder.last().unwrap() != max {
        ladder.push(max);
    }
    ladder
}

/// Fetches the server's cumulative deadline-miss counter over a fresh
/// connection (0.0 when the counter is absent).
fn fetch_deadline_misses(addr: SocketAddr) -> io::Result<f64> {
    let (mut rd, mut wr) = conn(addr)?;
    let pairs = fetch_stats(&mut rd, &mut wr)?;
    Ok(metric(&pairs, "serve.deadline_misses").unwrap_or(0.0))
}

/// Runs the closed-loop loadgen once per rung of `ladder` (each entry
/// a client-concurrency level) against the same server, holding
/// sessions-per-client fixed at `base.sessions / base.concurrency` so
/// offered load scales with the rung. The resulting
/// sessions-vs-p99/deadline-miss columns are the saturation curve
/// `BENCH_serve.json` stores (see
/// [`LoadgenReport::to_json_with_saturation`]).
///
/// Mid-run scraping is disabled per rung (it would perturb the very
/// tail latencies the sweep measures). When `base.shutdown_after` is
/// set, `Shutdown` is sent only after the final rung.
///
/// # Errors
/// Connection failures; per-session errors are counted in each rung.
///
/// # Panics
/// Panics if `utts` is empty (same contract as [`run_loadgen`]).
pub fn run_saturation_sweep(
    addr: SocketAddr,
    utts: &[Vec<Vec<f32>>],
    base: &LoadgenConfig,
    ladder: &[usize],
) -> io::Result<Vec<SaturationPoint>> {
    let per_client = (base.sessions / base.concurrency.max(1)).max(1);
    // The server counter is cumulative (and may be nonzero before the
    // sweep if other traffic ran), so every rung reports a delta.
    let mut prev_misses = fetch_deadline_misses(addr).unwrap_or(0.0);
    let mut points = Vec::with_capacity(ladder.len());
    for (i, &rung) in ladder.iter().enumerate() {
        let concurrency = rung.max(1);
        let cfg = LoadgenConfig {
            sessions: concurrency * per_client,
            concurrency,
            chunk_frames: base.chunk_frames,
            scrape_every_ms: 0,
            shutdown_after: base.shutdown_after && i + 1 == ladder.len(),
            // Re-registering per rung is a cheap idempotent hot swap;
            // sessions at every rung see the same per-user models.
            bias_users: base.bias_users,
            bias_vocab: base.bias_vocab,
        };
        let rep = run_loadgen(addr, utts, &cfg)?;
        let misses = rep
            .server_total("serve.deadline_misses")
            .unwrap_or(prev_misses);
        points.push(SaturationPoint {
            sessions: cfg.sessions,
            concurrency,
            completed: rep.sessions_completed,
            rejected: rep.sessions_rejected,
            errors: rep.errors,
            sessions_per_sec: rep.sessions_per_sec,
            p99_first_partial_ms: rep.first_partial_ms.p99,
            p99_final_ms: rep.final_ms.p99,
            deadline_miss_delta: (misses - prev_misses).max(0.0),
            vm_rss_kb: rep.server_total("serve.vm_rss_kb").unwrap_or(f64::NAN),
        });
        prev_misses = misses;
    }
    Ok(points)
}

/// One saturation rung as a JSON object (shared by the main
/// `"saturation"` array and the pipeline-comparison sweeps).
fn point_json(p: &SaturationPoint) -> String {
    format!(
        "{{\"sessions\": {}, \"concurrency\": {}, \"completed\": {}, \"rejected\": {}, \"errors\": {}, \"sessions_per_sec\": {}, \"p99_first_partial_ms\": {}, \"p99_final_ms\": {}, \"deadline_miss_delta\": {}, \"vm_rss_kb\": {}}}",
        p.sessions,
        p.concurrency,
        p.completed,
        p.rejected,
        p.errors,
        num(p.sessions_per_sec),
        num(p.p99_first_partial_ms),
        num(p.p99_final_ms),
        num(p.deadline_miss_delta),
        num(p.vm_rss_kb),
    )
}

/// The knee of a saturation curve: the rung where completed-session
/// throughput peaks. Past it, added concurrency buys latency and
/// deadline misses, not throughput — so "sessions per core at the knee"
/// is the capacity number the lockstep/pipelined comparison reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KneePoint {
    /// Client concurrency at the peak rung.
    pub concurrency: usize,
    /// Peak completed-session throughput, sessions/s.
    pub sessions_per_sec: f64,
    /// The same throughput normalized by server threads (search +
    /// scoring), the capacity axis of the comparison.
    pub sessions_per_core_sec: f64,
}

/// Finds the throughput knee of a sweep: the rung with the highest
/// `sessions_per_sec`, normalized by `cores` server threads. `None` for
/// an empty sweep or `cores == 0`.
pub fn sweep_knee(sweep: &[SaturationPoint], cores: usize) -> Option<KneePoint> {
    if cores == 0 {
        return None;
    }
    sweep
        .iter()
        .max_by(|a, b| {
            a.sessions_per_sec
                .partial_cmp(&b.sessions_per_sec)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|p| KneePoint {
            concurrency: p.concurrency,
            sessions_per_sec: p.sessions_per_sec,
            sessions_per_core_sec: p.sessions_per_sec / cores as f64,
        })
}

/// The lockstep-vs-pipelined block of `BENCH_serve.json`: the same
/// saturation ladder run against two servers — one with the two-stage
/// pipeline off (`scoring_workers == 0`, frames scored inline at
/// ingest) and one with it on — plus the analytic batched-scoring
/// amortization curve from `unfold-sim` for context. The headline
/// comparison is sessions-per-core at each curve's knee: the pipelined
/// server spends extra threads on scoring, so it only wins where
/// batching actually amortizes.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCompare {
    /// Sweep against the lockstep server.
    pub lockstep: Vec<SaturationPoint>,
    /// Sweep against the pipelined server (same ladder, same load).
    pub pipelined: Vec<SaturationPoint>,
    /// Lockstep server threads (search workers).
    pub lockstep_cores: usize,
    /// Pipelined server threads (search + scoring workers).
    pub pipelined_cores: usize,
    /// Modeled scoring cost per frame at increasing batch sizes:
    /// `(batch, µs/frame)` pairs from
    /// `unfold_sim::modeled_us_per_frame`. Empty when the caller has no
    /// model to offer.
    pub modeled_scoring: Vec<(usize, f64)>,
}

impl PipelineCompare {
    /// Knee of the lockstep sweep (per lockstep core).
    pub fn lockstep_knee(&self) -> Option<KneePoint> {
        sweep_knee(&self.lockstep, self.lockstep_cores)
    }

    /// Knee of the pipelined sweep (per pipelined core).
    pub fn pipelined_knee(&self) -> Option<KneePoint> {
        sweep_knee(&self.pipelined, self.pipelined_cores)
    }

    /// The `"pipeline": {...},` JSON block `to_json_full` embeds.
    fn to_json_block(&self) -> String {
        let mut out = String::from("  \"pipeline\": {\n");
        out.push_str(&format!(
            "    \"lockstep_cores\": {},\n    \"pipelined_cores\": {},\n",
            self.lockstep_cores, self.pipelined_cores
        ));
        for (key, sweep) in [("lockstep", &self.lockstep), ("pipelined", &self.pipelined)] {
            out.push_str(&format!("    \"{key}\": [\n"));
            for (i, p) in sweep.iter().enumerate() {
                out.push_str(&format!(
                    "      {}{}\n",
                    point_json(p),
                    if i + 1 < sweep.len() { "," } else { "" }
                ));
            }
            out.push_str("    ],\n");
        }
        for (key, knee) in [
            ("lockstep_knee", self.lockstep_knee()),
            ("pipelined_knee", self.pipelined_knee()),
        ] {
            if let Some(k) = knee {
                out.push_str(&format!(
                    "    \"{key}\": {{\"concurrency\": {}, \"sessions_per_sec\": {}, \"sessions_per_core_sec\": {}}},\n",
                    k.concurrency,
                    num(k.sessions_per_sec),
                    num(k.sessions_per_core_sec)
                ));
            }
        }
        out.push_str("    \"modeled_scoring_us_per_frame\": [");
        for (i, (batch, us)) in self.modeled_scoring.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"batch\": {batch}, \"us_per_frame\": {}}}",
                num(*us)
            ));
        }
        out.push_str("]\n  },\n");
        out
    }
}

/// The personalized-bias A/B block of `BENCH_serve.json`: an unbiased
/// pass and a biased pass at identical offered load, plus the memory
/// cost of carrying the per-user models.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasCompare {
    /// Distinct biasing models registered (and round-robined across
    /// the biased pass's sessions).
    pub users: usize,
    /// Sessions per pass.
    pub sessions: usize,
    /// Biased-pass sessions that received a `Final`.
    pub completed: u64,
    /// Biased-pass protocol or connection errors.
    pub errors: u64,
    /// p99 `Finish` → `Final` of the unbiased reference pass, ms.
    pub unbiased_p99_final_ms: f64,
    /// p99 `Finish` → `Final` of the biased pass, ms.
    pub biased_p99_final_ms: f64,
    /// Deadline misses the server accrued during the biased pass.
    pub deadline_miss_delta: f64,
    /// Server RSS (KiB) at the end of the unbiased pass — before any
    /// biasing model was registered.
    pub unbiased_vm_rss_kb: f64,
    /// Server RSS (KiB) at the end of the biased pass.
    pub biased_vm_rss_kb: f64,
    /// RSS growth across registration + biased traffic, amortized per
    /// user (KiB). The per-user cost of personalization at rest.
    pub marginal_rss_kb_per_user: f64,
}

/// Runs the personalization A/B: one unbiased pass, then one biased
/// pass with `cfg.bias_users` distinct per-user models, at the same
/// sessions/concurrency. The unbiased pass goes first on purpose — it
/// warms the worker pool, the shared OLT, and the allocator, so the
/// RSS delta across the biased pass isolates what the per-user models
/// and their sessions actually cost. Returns the biased pass's full
/// report (it becomes the main `BENCH_serve.json` document) plus the
/// comparison block.
///
/// # Errors
/// Connection failures; per-session errors are counted per pass.
///
/// # Panics
/// Panics if `utts` is empty or `cfg.bias_users` is 0.
pub fn run_bias_compare(
    addr: SocketAddr,
    utts: &[Vec<Vec<f32>>],
    cfg: &LoadgenConfig,
) -> io::Result<(LoadgenReport, BiasCompare)> {
    assert!(cfg.bias_users > 0, "bias compare needs --bias-users > 0");
    let unbiased_cfg = LoadgenConfig {
        bias_users: 0,
        scrape_every_ms: 0,
        shutdown_after: false,
        ..cfg.clone()
    };
    let unbiased = run_loadgen(addr, utts, &unbiased_cfg)?;
    let biased = run_loadgen(addr, utts, cfg)?;
    let misses = |r: &LoadgenReport| r.server_total("serve.deadline_misses").unwrap_or(0.0);
    let rss = |r: &LoadgenReport| r.server_total("serve.vm_rss_kb").unwrap_or(f64::NAN);
    let (rss_u, rss_b) = (rss(&unbiased), rss(&biased));
    let compare = BiasCompare {
        users: cfg.bias_users,
        sessions: cfg.sessions,
        completed: biased.sessions_completed,
        errors: biased.errors,
        unbiased_p99_final_ms: unbiased.final_ms.p99,
        biased_p99_final_ms: biased.final_ms.p99,
        deadline_miss_delta: (misses(&biased) - misses(&unbiased)).max(0.0),
        unbiased_vm_rss_kb: rss_u,
        biased_vm_rss_kb: rss_b,
        marginal_rss_kb_per_user: (rss_b - rss_u) / cfg.bias_users as f64,
    };
    Ok((biased, compare))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::tcp::TcpFront;
    use crate::ServeConfig;
    use std::net::TcpListener;
    use std::sync::Arc;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

    #[test]
    fn loadgen_end_to_end_produces_a_report_and_shuts_the_server_down() {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        let lm = Arc::new(lm_to_wfst(&model));
        let am = Arc::new(am.fst);
        let utts: Vec<Vec<Vec<f32>>> = [[3u32, 9, 17], [7, 11, 4]]
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let u = synthesize_utterance(
                    w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    60 + i as u64,
                );
                (0..u.scores.num_frames())
                    .map(|t| u.scores.frame(t).to_vec())
                    .collect()
            })
            .collect();

        let server = Server::start(
            ServeConfig {
                workers: 2,
                ..Default::default()
            },
            am,
            lm,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = TcpFront::start(listener, server.handle()).unwrap();
        let cfg = LoadgenConfig {
            sessions: 4,
            concurrency: 2,
            chunk_frames: 8,
            scrape_every_ms: 5,
            shutdown_after: true,
            ..Default::default()
        };
        let report = run_loadgen(front.local_addr(), &utts, &cfg).unwrap();
        assert_eq!(report.sessions_requested, 4);
        assert_eq!(report.sessions_completed, 4);
        assert_eq!(report.sessions_rejected, 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.final_ms.count, 4);
        assert!(report.first_partial_ms.count >= 1, "some words decoded");
        assert_eq!(report.server_total("serve.finals"), Some(4.0));
        assert_eq!(report.server_total("serve.evictions_idle"), Some(0.0));
        // µs capture: a real network roundtrip is never exactly 0 ms,
        // which the old millisecond truncation routinely reported.
        assert!(
            report.final_ms.min > 0.0,
            "final latency truncated to zero: {:?}",
            report.final_ms
        );
        // Live scrapes reconciled against the server mid-run, and the
        // server's closed session spans match the client's tally.
        assert_eq!(report.scrape_failures, 0);
        assert!(report.reconciled, "frame ledger must balance");
        assert_eq!(report.server_session_spans, report.sessions_completed);
        assert!(
            report.flight_jsonl.contains("\"event\":\"final\""),
            "flight ring should hold the finals:\n{}",
            report.flight_jsonl
        );
        let json = report.to_json();
        for key in [
            "\"sessions_per_sec\"",
            "\"first_partial_ms\"",
            "\"p99\"",
            "\"scrapes\"",
            "\"scrape_failures\": 0",
            "\"reconciled\": true",
            "\"server_session_spans\": 4",
            "\"serve.deadline_misses\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // shutdown_after stops the whole stack: the accept loop sees
        // the flag and exits, and the worker pool joins cleanly.
        front.join();
        server.shutdown();
    }

    #[test]
    fn bias_compare_runs_both_passes_and_serializes() {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        let lm = Arc::new(lm_to_wfst(&model));
        let am = Arc::new(am.fst);
        let u = synthesize_utterance(
            &[3u32, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            60,
        );
        let utts: Vec<Vec<Vec<f32>>> = vec![(0..u.scores.num_frames())
            .map(|t| u.scores.frame(t).to_vec())
            .collect()];

        let server = Server::start(
            ServeConfig {
                workers: 2,
                ..Default::default()
            },
            am,
            lm,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = TcpFront::start(listener, server.handle()).unwrap();
        let cfg = LoadgenConfig {
            sessions: 6,
            concurrency: 2,
            chunk_frames: 8,
            shutdown_after: true,
            bias_users: 3,
            bias_vocab: 50,
            ..Default::default()
        };
        let (report, bias) = run_bias_compare(front.local_addr(), &utts, &cfg).unwrap();
        assert_eq!(bias.users, 3);
        assert_eq!(bias.sessions, 6);
        assert_eq!(bias.completed, 6);
        assert_eq!(bias.errors, 0);
        assert_eq!(report.sessions_completed, 6);
        assert!(bias.biased_p99_final_ms > 0.0);
        assert!(bias.unbiased_p99_final_ms > 0.0);
        assert_eq!(bias.deadline_miss_delta, 0.0);
        // /proc-backed RSS is available on Linux CI and dev machines;
        // elsewhere the fields serialize as null and the marginal cost
        // is unmeasurable rather than wrong. At 3 users the per-user
        // figure is allocator noise, so only pin that it was computed
        // from the two finite samples — the 64 KiB/user budget is
        // asserted by CI's 1000-user run, where it is meaningful.
        if bias.unbiased_vm_rss_kb.is_finite() {
            assert!(bias.biased_vm_rss_kb.is_finite());
            assert!(bias.marginal_rss_kb_per_user.is_finite(), "{bias:?}");
        }
        let json = report.to_json_document(&[], Some(&bias));
        for key in [
            "\"bias\": {\"users\": 3",
            "\"unbiased_p99_final_ms\"",
            "\"marginal_rss_kb_per_user\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!report.to_json().contains("\"bias\""));
        front.join();
        server.shutdown();
    }

    #[test]
    fn saturation_ladder_doubles_and_caps() {
        assert_eq!(saturation_ladder(0), vec![1]);
        assert_eq!(saturation_ladder(1), vec![1]);
        assert_eq!(saturation_ladder(4), vec![1, 2, 4]);
        assert_eq!(saturation_ladder(6), vec![1, 2, 4, 6]);
        assert_eq!(saturation_ladder(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn saturation_sweep_walks_the_ladder_and_serializes() {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        let lm = Arc::new(lm_to_wfst(&model));
        let am = Arc::new(am.fst);
        let u = synthesize_utterance(
            &[3u32, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            60,
        );
        let utts: Vec<Vec<Vec<f32>>> = vec![(0..u.scores.num_frames())
            .map(|t| u.scores.frame(t).to_vec())
            .collect()];

        let server = Server::start(
            ServeConfig {
                workers: 2,
                ..Default::default()
            },
            am,
            lm,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = TcpFront::start(listener, server.handle()).unwrap();
        let base = LoadgenConfig {
            sessions: 4,
            concurrency: 2,
            chunk_frames: 8,
            scrape_every_ms: 0,
            shutdown_after: true,
            ..Default::default()
        };
        let points = run_saturation_sweep(front.local_addr(), &utts, &base, &[1, 2]).unwrap();
        assert_eq!(points.len(), 2);
        // sessions-per-client is 4/2 = 2, so rung c offers 2*c sessions.
        assert_eq!(points[0].concurrency, 1);
        assert_eq!(points[0].sessions, 2);
        assert_eq!(points[1].concurrency, 2);
        assert_eq!(points[1].sessions, 4);
        for p in &points {
            assert_eq!(p.completed, p.sessions as u64, "rung completed: {p:?}");
            assert_eq!(p.errors, 0);
            assert!(p.deadline_miss_delta >= 0.0);
            assert!(p.p99_final_ms > 0.0);
        }

        // The sweep rides into the report JSON under "saturation"; an
        // empty sweep leaves the plain document untouched.
        let report = LoadgenReport {
            sessions_requested: 6,
            sessions_completed: points.iter().map(|p| p.completed).sum(),
            sessions_rejected: 0,
            errors: 0,
            first_partial_ms: LatencyMs::from_us(&unfold_obs::LogHistogram::new().summary()),
            final_ms: LatencyMs::from_us(&unfold_obs::LogHistogram::new().summary()),
            elapsed_ms: 1.0,
            sessions_per_sec: 1.0,
            scrapes: 0,
            scrape_failures: 0,
            reconciled: true,
            server_session_spans: 6,
            flight_jsonl: String::new(),
            server: vec![("serve.deadline_misses".into(), 0.0)],
        };
        let json = report.to_json_with_saturation(&points);
        for key in [
            "\"saturation\": [",
            "\"p99_final_ms\"",
            "\"deadline_miss_delta\"",
            "\"concurrency\": 2",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!report.to_json().contains("\"saturation\""));

        // shutdown_after on the base config stops the server after the
        // last rung.
        front.join();
        server.shutdown();
    }

    fn rung(concurrency: usize, sessions_per_sec: f64) -> SaturationPoint {
        SaturationPoint {
            sessions: concurrency * 2,
            concurrency,
            completed: (concurrency * 2) as u64,
            rejected: 0,
            errors: 0,
            sessions_per_sec,
            p99_first_partial_ms: 1.0,
            p99_final_ms: 2.0,
            deadline_miss_delta: 0.0,
            vm_rss_kb: f64::NAN,
        }
    }

    #[test]
    fn sweep_knee_picks_the_throughput_peak_per_core() {
        // Throughput rises then falls: the knee is the peak rung, not
        // the last one.
        let sweep = vec![rung(1, 4.0), rung(2, 9.0), rung(4, 7.5)];
        let knee = sweep_knee(&sweep, 3).expect("non-empty sweep");
        assert_eq!(knee.concurrency, 2);
        assert_eq!(knee.sessions_per_sec, 9.0);
        assert_eq!(knee.sessions_per_core_sec, 3.0);
        assert_eq!(sweep_knee(&[], 3), None);
        assert_eq!(sweep_knee(&sweep, 0), None);
    }

    #[test]
    fn pipeline_compare_block_serializes_with_knees() {
        let compare = PipelineCompare {
            lockstep: vec![rung(1, 4.0), rung(2, 6.0)],
            pipelined: vec![rung(1, 4.5), rung(2, 9.0)],
            lockstep_cores: 3,
            pipelined_cores: 3,
            modeled_scoring: vec![(1, 40.0), (8, 10.0)],
        };
        let report = LoadgenReport {
            sessions_requested: 0,
            sessions_completed: 0,
            sessions_rejected: 0,
            errors: 0,
            first_partial_ms: LatencyMs::from_us(&unfold_obs::LogHistogram::new().summary()),
            final_ms: LatencyMs::from_us(&unfold_obs::LogHistogram::new().summary()),
            elapsed_ms: 1.0,
            sessions_per_sec: 0.0,
            scrapes: 0,
            scrape_failures: 0,
            reconciled: true,
            server_session_spans: 0,
            flight_jsonl: String::new(),
            server: Vec::new(),
        };
        let json = report.to_json_full(&[], None, Some(&compare));
        for key in [
            "\"pipeline\": {",
            "\"lockstep_cores\": 3",
            "\"lockstep_knee\": {\"concurrency\": 2, \"sessions_per_sec\": 6",
            "\"pipelined_knee\": {\"concurrency\": 2, \"sessions_per_sec\": 9",
            "\"sessions_per_core_sec\": 3",
            "\"modeled_scoring_us_per_frame\": [{\"batch\": 1, \"us_per_frame\": 40}",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // The narrower serializers are untouched by the new block.
        assert!(!report.to_json_document(&[], None).contains("\"pipeline\""));
    }
}
