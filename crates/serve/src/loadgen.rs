//! Closed-loop load generator for the TCP front end.
//!
//! `concurrency` client threads each stream their share of `sessions`
//! sequentially: open, send frame chunks (waiting for each `Partial`
//! before sending the next chunk — closed loop, so offered load adapts
//! to the server), finish, wait for `Final`. Two latencies are
//! measured per session:
//!
//! * **first partial** — open until the first *non-empty* stable
//!   partial, the "time to first word" a captioning UI cares about;
//! * **final** — `Finish` sent until `Final` received, the tail
//!   flush cost.
//!
//! The report carries p50/p95/p99 summaries of both plus the server's
//! own metrics record (admissions, evictions, deadline misses), and
//! serializes to the JSON shape `BENCH_serve.json` stores.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use unfold_obs::{Histogram, ObsRecord, Summary};

use crate::wire::{read_server, write_client, ClientMsg, ServerMsg};

/// Load-generator knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Total sessions to run.
    pub sessions: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Frames per `Frames` message.
    pub chunk_frames: usize,
    /// Send `Shutdown` to the server after the run (for smoke tests
    /// that own the server's lifetime).
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            sessions: 16,
            concurrency: 4,
            chunk_frames: 10,
            shutdown_after: false,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct SessionOutcome {
    first_partial_ms: Option<u64>,
    final_ms: Option<u64>,
    completed: bool,
    rejected: bool,
    errored: bool,
}

/// What a load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Sessions attempted.
    pub sessions_requested: usize,
    /// Sessions that received a `Final`.
    pub sessions_completed: u64,
    /// Sessions refused admission.
    pub sessions_rejected: u64,
    /// Sessions that hit a protocol or server error.
    pub errors: u64,
    /// Open → first non-empty stable partial.
    pub first_partial_ms: Summary,
    /// `Finish` sent → `Final` received.
    pub final_ms: Summary,
    /// Wall time of the whole run.
    pub elapsed_ms: u64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// The server's own metrics totals (`serve.*`), fetched over the
    /// wire at the end of the run.
    pub server: Vec<(String, f64)>,
}

impl LoadgenReport {
    /// Looks up one server metric by name (e.g.
    /// `"serve.deadline_misses"`).
    pub fn server_total(&self, name: &str) -> Option<f64> {
        self.server.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Serializes the report as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        fn summary(s: &Summary) -> String {
            format!(
                "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"min\": {}, \"max\": {}}}",
                s.count,
                num(s.mean),
                num(s.p50),
                num(s.p95),
                num(s.p99),
                s.min,
                s.max
            )
        }
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"sessions_requested\": {},\n",
            self.sessions_requested
        ));
        out.push_str(&format!(
            "  \"sessions_completed\": {},\n",
            self.sessions_completed
        ));
        out.push_str(&format!(
            "  \"sessions_rejected\": {},\n",
            self.sessions_rejected
        ));
        out.push_str(&format!("  \"errors\": {},\n", self.errors));
        out.push_str(&format!("  \"elapsed_ms\": {},\n", self.elapsed_ms));
        out.push_str(&format!(
            "  \"sessions_per_sec\": {},\n",
            num(self.sessions_per_sec)
        ));
        out.push_str(&format!(
            "  \"first_partial_ms\": {},\n",
            summary(&self.first_partial_ms)
        ));
        out.push_str(&format!("  \"final_ms\": {},\n", summary(&self.final_ms)));
        out.push_str("  \"server\": {");
        for (i, (name, v)) in self.server.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {}", num(*v)));
        }
        if !self.server.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn conn(addr: SocketAddr) -> io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    Ok((BufReader::new(stream.try_clone()?), BufWriter::new(stream)))
}

/// Runs one session over an existing connection.
fn run_session(
    rd: &mut BufReader<TcpStream>,
    wr: &mut BufWriter<TcpStream>,
    utt: &[Vec<f32>],
    chunk_frames: usize,
) -> io::Result<SessionOutcome> {
    let mut out = SessionOutcome::default();
    let opened_at = Instant::now();
    write_client(wr, &ClientMsg::Open { lm: None })?;
    match read_server(rd)? {
        Some(ServerMsg::Opened { .. }) => {}
        Some(ServerMsg::Rejected { .. }) => {
            out.rejected = true;
            return Ok(out);
        }
        _ => {
            out.errored = true;
            return Ok(out);
        }
    }
    for chunk in utt.chunks(chunk_frames.max(1)) {
        write_client(wr, &ClientMsg::Frames(chunk.to_vec()))?;
        match read_server(rd)? {
            Some(ServerMsg::Partial { words }) => {
                if out.first_partial_ms.is_none() && !words.is_empty() {
                    out.first_partial_ms = Some(opened_at.elapsed().as_millis() as u64);
                }
            }
            _ => {
                out.errored = true;
                return Ok(out);
            }
        }
    }
    let finish_at = Instant::now();
    write_client(wr, &ClientMsg::Finish)?;
    match read_server(rd)? {
        Some(ServerMsg::Final { .. }) => {
            out.final_ms = Some(finish_at.elapsed().as_millis() as u64);
            out.completed = true;
        }
        _ => out.errored = true,
    }
    Ok(out)
}

/// Drives a closed-loop load test against a serve front end at `addr`.
/// Session `i` streams `utts[i % utts.len()]` (each utterance a list
/// of score rows).
///
/// # Errors
/// Connection failures; per-session protocol errors are *counted*, not
/// returned.
///
/// # Panics
/// Panics if `utts` is empty.
pub fn run_loadgen(
    addr: SocketAddr,
    utts: &[Vec<Vec<f32>>],
    cfg: &LoadgenConfig,
) -> io::Result<LoadgenReport> {
    assert!(!utts.is_empty(), "loadgen needs at least one utterance");
    let started = Instant::now();
    let concurrency = cfg.concurrency.max(1);
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                scope.spawn(move || -> io::Result<Vec<SessionOutcome>> {
                    let (mut rd, mut wr) = conn(addr)?;
                    let mut outs = Vec::new();
                    let mut i = worker;
                    while i < cfg.sessions {
                        let utt = &utts[i % utts.len()];
                        outs.push(run_session(&mut rd, &mut wr, utt, cfg.chunk_frames)?);
                        i += concurrency;
                    }
                    Ok(outs)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("loadgen thread").unwrap_or_default())
            .collect()
    });

    let mut first_partial = Histogram::new();
    let mut final_lat = Histogram::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    for o in &outcomes {
        if let Some(ms) = o.first_partial_ms {
            first_partial.record(ms);
        }
        if let Some(ms) = o.final_ms {
            final_lat.record(ms);
        }
        completed += u64::from(o.completed);
        rejected += u64::from(o.rejected);
        errors += u64::from(o.errored);
    }
    // Sessions lost to connection-level failures count as errors too.
    errors += (cfg.sessions.saturating_sub(outcomes.len())) as u64;

    // Fetch the server's own counters, and optionally stop it.
    let (mut rd, mut wr) = conn(addr)?;
    write_client(&mut wr, &ClientMsg::Stats)?;
    let server = match read_server(&mut rd)? {
        Some(ServerMsg::Stats { jsonl }) => match ObsRecord::parse_line(jsonl.trim()) {
            Ok(ObsRecord::Run(pairs)) => pairs,
            _ => Vec::new(),
        },
        _ => Vec::new(),
    };
    if cfg.shutdown_after {
        write_client(&mut wr, &ClientMsg::Shutdown)?;
    }

    let elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(LoadgenReport {
        sessions_requested: cfg.sessions,
        sessions_completed: completed,
        sessions_rejected: rejected,
        errors,
        first_partial_ms: first_partial.summary(),
        final_ms: final_lat.summary(),
        elapsed_ms,
        sessions_per_sec: if elapsed_ms == 0 {
            completed as f64
        } else {
            completed as f64 / (elapsed_ms as f64 / 1e3)
        },
        server,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::tcp::TcpFront;
    use crate::ServeConfig;
    use std::net::TcpListener;
    use std::sync::Arc;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

    #[test]
    fn loadgen_end_to_end_produces_a_report_and_shuts_the_server_down() {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        let lm = Arc::new(lm_to_wfst(&model));
        let am = Arc::new(am.fst);
        let utts: Vec<Vec<Vec<f32>>> = [[3u32, 9, 17], [7, 11, 4]]
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let u = synthesize_utterance(
                    w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    60 + i as u64,
                );
                (0..u.scores.num_frames())
                    .map(|t| u.scores.frame(t).to_vec())
                    .collect()
            })
            .collect();

        let server = Server::start(
            ServeConfig {
                workers: 2,
                ..Default::default()
            },
            am,
            lm,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = TcpFront::start(listener, server.handle()).unwrap();
        let cfg = LoadgenConfig {
            sessions: 4,
            concurrency: 2,
            chunk_frames: 8,
            shutdown_after: true,
        };
        let report = run_loadgen(front.local_addr(), &utts, &cfg).unwrap();
        assert_eq!(report.sessions_requested, 4);
        assert_eq!(report.sessions_completed, 4);
        assert_eq!(report.sessions_rejected, 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.final_ms.count, 4);
        assert!(report.first_partial_ms.count >= 1, "some words decoded");
        assert_eq!(report.server_total("serve.finals"), Some(4.0));
        assert_eq!(report.server_total("serve.evictions_idle"), Some(0.0));
        let json = report.to_json();
        for key in [
            "\"sessions_per_sec\"",
            "\"first_partial_ms\"",
            "\"p99\"",
            "\"serve.deadline_misses\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // shutdown_after stops the whole stack: the accept loop sees
        // the flag and exits, and the worker pool joins cleanly.
        front.join();
        server.shutdown();
    }
}
