//! Length-prefixed wire protocol for the TCP front end.
//!
//! Every message is `[u32 length (LE)] [u8 tag] [payload]`, where
//! `length` counts the tag plus payload. Integers and floats are
//! little-endian. The protocol is deliberately dumb — no negotiation,
//! no compression — because its job is to exercise the serving layer,
//! not to be a product API.
//!
//! One session per connection: `Open` binds the connection to a fresh
//! session; each `Frames` batch is answered with a `Partial` (the
//! stable prefix so far); `Finish` is answered with `Final`. `Stats`
//! and `Shutdown` work on any connection.

use std::io::{self, Read, Write};

use unfold_decoder::FrameInput;

use crate::RejectReason;

/// Hard bound on one message's payload (tag + body), to fail fast on
/// corrupt length prefixes instead of attempting a huge allocation.
pub const MAX_MESSAGE: usize = 64 << 20;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Open a session on this connection, optionally naming the LM to
    /// decode against and a registered biasing model to personalize it
    /// with. A bare `Open` payload (no names — what older clients
    /// send) selects the server's default model, unbiased.
    Open {
        /// Registered LM name; `None` = default.
        lm: Option<String>,
        /// Registered biasing-model name; `None` = unbiased. On the
        /// wire the bias name trails the LM name, with an empty LM
        /// string standing in for "default" — older frames simply
        /// stop earlier.
        bias: Option<String>,
    },
    /// A batch of score rows (all the same width). The legacy frame
    /// message — kept byte-identical so pre-pipeline clients still
    /// work; new clients send [`ClientMsg::FramesV2`].
    Frames(Vec<Vec<f32>>),
    /// A versioned batch of [`FrameInput`]s (all the same kind and
    /// width): precomputed score rows *or* raw feature vectors for the
    /// server's acoustic scorer. Wire layout:
    /// `[u8 version=1] [u8 kind (0 = scores, 1 = features)]
    /// [u32 n] [u32 width] [n × width f32]`. Unknown versions are
    /// rejected loudly rather than misparsed, so the payload can grow.
    FramesV2(Vec<FrameInput>),
    /// No more audio; finalize and return the transcript.
    Finish,
    /// Request the server's metrics record.
    Stats,
    /// Ask the whole server to shut down.
    Shutdown,
    /// Request the flight-recorder dump and closed session spans.
    Dump,
    /// Register (or hot-swap) a biasing model under a name. Phrases
    /// are `(word ids, bonus)` pairs; the server builds the acceptor.
    AddBias {
        /// Registry name.
        name: String,
        /// The phrase list.
        phrases: Vec<(Vec<u32>, f32)>,
    },
    /// Remove a biasing model from the registry (sessions already
    /// pinned to it are untouched).
    RetireBias {
        /// Registry name.
        name: String,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Session admitted.
    Opened {
        /// Its id (diagnostic — the connection itself addresses it).
        session: u64,
    },
    /// Admission refused.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Stable partial transcript after a `Frames` batch.
    Partial {
        /// Words every live hypothesis agrees on so far.
        words: Vec<u32>,
    },
    /// Final transcript after `Finish`.
    Final {
        /// Best-path word sequence.
        words: Vec<u32>,
        /// Best complete-hypothesis cost.
        cost: f32,
        /// Frames decoded.
        frames: u64,
    },
    /// Protocol or session error (connection stays usable).
    Error {
        /// Human-readable cause.
        msg: String,
    },
    /// Metrics record (`unfold-obs` run JSONL).
    Stats {
        /// The JSONL text.
        jsonl: String,
    },
    /// Flight-recorder events plus closed session spans.
    Dump {
        /// Flight events as JSONL (`flight` records) — the pinned
        /// incident snapshot if one froze, else a live ring snapshot.
        flight: String,
        /// Closed session spans as JSONL (`sspan` records).
        spans: String,
    },
    /// Generic success acknowledgement (`AddBias` / `RetireBias`).
    Ack,
}

const T_OPEN: u8 = 0x01;
const T_FRAMES: u8 = 0x02;
const T_FINISH: u8 = 0x03;
const T_STATS: u8 = 0x04;
const T_SHUTDOWN: u8 = 0x05;
const T_DUMP: u8 = 0x06;
const T_ADD_BIAS: u8 = 0x07;
const T_RETIRE_BIAS: u8 = 0x08;
const T_FRAMES_V2: u8 = 0x09;

/// Current `FramesV2` payload version.
const FRAMES_V2_VERSION: u8 = 1;
const KIND_SCORES: u8 = 0;
const KIND_FEATURES: u8 = 1;

const T_OPENED: u8 = 0x81;
const T_REJECTED: u8 = 0x82;
const T_PARTIAL: u8 = 0x83;
const T_FINAL: u8 = 0x84;
const T_ERROR: u8 = 0x85;
const T_STATS_REPLY: u8 = 0x86;
const T_DUMP_REPLY: u8 = 0x87;
const T_ACK: u8 = 0x88;

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("wire: {what}"))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated message"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn words(&mut self) -> io::Result<Vec<u32>> {
        let n = self.u32()? as usize;
        if n > MAX_MESSAGE / 4 {
            return Err(bad("word list too long"));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn string(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid utf-8"))
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes"))
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_words(buf: &mut Vec<u8>, words: &[u32]) {
    put_u32(buf, words.len() as u32);
    for &w in words {
        put_u32(buf, w);
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

impl ClientMsg {
    /// Serializes tag + payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ClientMsg::Open { lm, bias } => {
                buf.push(T_OPEN);
                match (lm, bias) {
                    (None, None) => {} // legacy bare frame
                    (Some(name), None) => put_string(&mut buf, name),
                    // A bias name needs the LM slot filled; "" stands
                    // in for the default model.
                    (lm, Some(b)) => {
                        put_string(&mut buf, lm.as_deref().unwrap_or(""));
                        put_string(&mut buf, b);
                    }
                }
            }
            ClientMsg::Frames(rows) => {
                buf.push(T_FRAMES);
                let width = rows.first().map_or(0, Vec::len);
                put_u32(&mut buf, rows.len() as u32);
                put_u32(&mut buf, width as u32);
                for row in rows {
                    assert_eq!(row.len(), width, "ragged frame batch");
                    for &v in row {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            ClientMsg::FramesV2(frames) => {
                buf.push(T_FRAMES_V2);
                buf.push(FRAMES_V2_VERSION);
                let kind = match frames.first() {
                    None | Some(FrameInput::Scores(_)) => KIND_SCORES,
                    Some(FrameInput::Features(_)) => KIND_FEATURES,
                };
                buf.push(kind);
                let width = frames.first().map_or(0, |f| f.values().len());
                put_u32(&mut buf, frames.len() as u32);
                put_u32(&mut buf, width as u32);
                for f in frames {
                    assert_eq!(
                        match f {
                            FrameInput::Scores(_) => KIND_SCORES,
                            FrameInput::Features(_) => KIND_FEATURES,
                        },
                        kind,
                        "mixed-kind frame batch"
                    );
                    assert_eq!(f.values().len(), width, "ragged frame batch");
                    for &v in f.values() {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            ClientMsg::Finish => buf.push(T_FINISH),
            ClientMsg::Stats => buf.push(T_STATS),
            ClientMsg::Shutdown => buf.push(T_SHUTDOWN),
            ClientMsg::Dump => buf.push(T_DUMP),
            ClientMsg::AddBias { name, phrases } => {
                buf.push(T_ADD_BIAS);
                put_string(&mut buf, name);
                put_u32(&mut buf, phrases.len() as u32);
                for (words, bonus) in phrases {
                    put_words(&mut buf, words);
                    buf.extend_from_slice(&bonus.to_le_bytes());
                }
            }
            ClientMsg::RetireBias { name } => {
                buf.push(T_RETIRE_BIAS);
                put_string(&mut buf, name);
            }
        }
        buf
    }

    /// Parses tag + payload.
    ///
    /// # Errors
    /// `InvalidData` on unknown tags or malformed payloads.
    pub fn decode(buf: &[u8]) -> io::Result<ClientMsg> {
        let mut c = Cursor::new(buf);
        let msg = match c.u8()? {
            T_OPEN => {
                if c.pos == buf.len() {
                    // Legacy bare Open: default model, unbiased.
                    ClientMsg::Open {
                        lm: None,
                        bias: None,
                    }
                } else {
                    let lm = c.string()?;
                    let bias = if c.pos == buf.len() {
                        None
                    } else {
                        Some(c.string()?)
                    };
                    // An empty LM slot only appears as the placeholder
                    // in front of a bias name.
                    let lm = if lm.is_empty() { None } else { Some(lm) };
                    ClientMsg::Open { lm, bias }
                }
            }
            T_FRAMES => {
                let n = c.u32()? as usize;
                let width = c.u32()? as usize;
                if n.checked_mul(width)
                    .and_then(|cells| cells.checked_mul(4))
                    .is_none_or(|bytes| bytes > MAX_MESSAGE)
                {
                    return Err(bad("frame batch too large"));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut row = Vec::with_capacity(width);
                    for _ in 0..width {
                        row.push(c.f32()?);
                    }
                    rows.push(row);
                }
                ClientMsg::Frames(rows)
            }
            T_FRAMES_V2 => {
                let version = c.u8()?;
                if version != FRAMES_V2_VERSION {
                    return Err(bad(&format!("unsupported frames-v2 version {version}")));
                }
                let kind = c.u8()?;
                let n = c.u32()? as usize;
                let width = c.u32()? as usize;
                if n.checked_mul(width)
                    .and_then(|cells| cells.checked_mul(4))
                    .is_none_or(|bytes| bytes > MAX_MESSAGE)
                {
                    return Err(bad("frame batch too large"));
                }
                let mut frames = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut row = Vec::with_capacity(width);
                    for _ in 0..width {
                        row.push(c.f32()?);
                    }
                    frames.push(match kind {
                        KIND_SCORES => FrameInput::Scores(row),
                        KIND_FEATURES => FrameInput::Features(row),
                        k => return Err(bad(&format!("unknown frame kind {k}"))),
                    });
                }
                ClientMsg::FramesV2(frames)
            }
            T_FINISH => ClientMsg::Finish,
            T_STATS => ClientMsg::Stats,
            T_SHUTDOWN => ClientMsg::Shutdown,
            T_DUMP => ClientMsg::Dump,
            T_ADD_BIAS => {
                let name = c.string()?;
                let n = c.u32()? as usize;
                if n > MAX_MESSAGE / 8 {
                    return Err(bad("phrase list too long"));
                }
                let mut phrases = Vec::with_capacity(n);
                for _ in 0..n {
                    let words = c.words()?;
                    let bonus = c.f32()?;
                    phrases.push((words, bonus));
                }
                ClientMsg::AddBias { name, phrases }
            }
            T_RETIRE_BIAS => ClientMsg::RetireBias { name: c.string()? },
            t => return Err(bad(&format!("unknown client tag {t:#04x}"))),
        };
        c.done()?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Serializes tag + payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ServerMsg::Opened { session } => {
                buf.push(T_OPENED);
                put_u64(&mut buf, *session);
            }
            ServerMsg::Rejected { reason } => {
                buf.push(T_REJECTED);
                buf.push(match reason {
                    RejectReason::AtCapacity => 0,
                    RejectReason::Overloaded => 1,
                });
            }
            ServerMsg::Partial { words } => {
                buf.push(T_PARTIAL);
                put_words(&mut buf, words);
            }
            ServerMsg::Final {
                words,
                cost,
                frames,
            } => {
                buf.push(T_FINAL);
                put_words(&mut buf, words);
                buf.extend_from_slice(&cost.to_le_bytes());
                put_u64(&mut buf, *frames);
            }
            ServerMsg::Error { msg } => {
                buf.push(T_ERROR);
                put_string(&mut buf, msg);
            }
            ServerMsg::Stats { jsonl } => {
                buf.push(T_STATS_REPLY);
                put_string(&mut buf, jsonl);
            }
            ServerMsg::Dump { flight, spans } => {
                buf.push(T_DUMP_REPLY);
                put_string(&mut buf, flight);
                put_string(&mut buf, spans);
            }
            ServerMsg::Ack => buf.push(T_ACK),
        }
        buf
    }

    /// Parses tag + payload.
    ///
    /// # Errors
    /// `InvalidData` on unknown tags or malformed payloads.
    pub fn decode(buf: &[u8]) -> io::Result<ServerMsg> {
        let mut c = Cursor::new(buf);
        let msg = match c.u8()? {
            T_OPENED => ServerMsg::Opened { session: c.u64()? },
            T_REJECTED => ServerMsg::Rejected {
                reason: match c.u8()? {
                    0 => RejectReason::AtCapacity,
                    1 => RejectReason::Overloaded,
                    r => return Err(bad(&format!("unknown reject reason {r}"))),
                },
            },
            T_PARTIAL => ServerMsg::Partial { words: c.words()? },
            T_FINAL => ServerMsg::Final {
                words: c.words()?,
                cost: c.f32()?,
                frames: c.u64()?,
            },
            T_ERROR => ServerMsg::Error { msg: c.string()? },
            T_STATS_REPLY => ServerMsg::Stats { jsonl: c.string()? },
            T_DUMP_REPLY => ServerMsg::Dump {
                flight: c.string()?,
                spans: c.string()?,
            },
            T_ACK => ServerMsg::Ack,
            t => return Err(bad(&format!("unknown server tag {t:#04x}"))),
        };
        c.done()?;
        Ok(msg)
    }
}

fn write_framed(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed message body. `Ok(None)` on clean EOF at
/// a message boundary.
///
/// # Errors
/// I/O errors, EOF mid-message, or a length beyond [`MAX_MESSAGE`].
fn read_framed(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_MESSAGE {
        return Err(bad("bad message length"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes one client message, length-prefixed.
///
/// # Errors
/// Underlying I/O errors.
pub fn write_client(w: &mut impl Write, msg: &ClientMsg) -> io::Result<()> {
    write_framed(w, &msg.encode())
}

/// Reads one client message; `Ok(None)` on clean EOF.
///
/// # Errors
/// I/O errors or malformed messages.
pub fn read_client(r: &mut impl Read) -> io::Result<Option<ClientMsg>> {
    read_framed(r)?.map(|b| ClientMsg::decode(&b)).transpose()
}

/// Writes one server message, length-prefixed.
///
/// # Errors
/// Underlying I/O errors.
pub fn write_server(w: &mut impl Write, msg: &ServerMsg) -> io::Result<()> {
    write_framed(w, &msg.encode())
}

/// Reads one server message; `Ok(None)` on clean EOF.
///
/// # Errors
/// I/O errors or malformed messages.
pub fn read_server(r: &mut impl Read) -> io::Result<Option<ServerMsg>> {
    read_framed(r)?.map(|b| ServerMsg::decode(&b)).transpose()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: ClientMsg) {
        let mut buf = Vec::new();
        write_client(&mut buf, &msg).unwrap();
        let back = read_client(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let mut buf = Vec::new();
        write_server(&mut buf, &msg).unwrap();
        let back = read_server(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMsg::Open {
            lm: None,
            bias: None,
        });
        roundtrip_client(ClientMsg::Open {
            lm: Some("tedlium-variant-7".into()),
            bias: None,
        });
        roundtrip_client(ClientMsg::Open {
            lm: None,
            bias: Some("contacts-42".into()),
        });
        roundtrip_client(ClientMsg::Open {
            lm: Some("variant-3".into()),
            bias: Some("hotwords".into()),
        });
        roundtrip_client(ClientMsg::Frames(vec![vec![1.0, -2.5], vec![0.0, 3.25]]));
        roundtrip_client(ClientMsg::Frames(Vec::new()));
        roundtrip_client(ClientMsg::FramesV2(vec![
            FrameInput::Scores(vec![1.0, -2.5]),
            FrameInput::Scores(vec![0.0, 3.25]),
        ]));
        roundtrip_client(ClientMsg::FramesV2(vec![
            FrameInput::Features(vec![0.5, -1.5, 2.0]),
            FrameInput::Features(vec![1.25, 0.0, -3.0]),
        ]));
        roundtrip_client(ClientMsg::FramesV2(Vec::new()));
        roundtrip_client(ClientMsg::Finish);
        roundtrip_client(ClientMsg::Stats);
        roundtrip_client(ClientMsg::Shutdown);
        roundtrip_client(ClientMsg::Dump);
        roundtrip_client(ClientMsg::AddBias {
            name: "contacts-42".into(),
            phrases: vec![(vec![3, 5, 7], 2.5), (vec![9], 1.0)],
        });
        roundtrip_client(ClientMsg::AddBias {
            name: "empty".into(),
            phrases: Vec::new(),
        });
        roundtrip_client(ClientMsg::RetireBias {
            name: "contacts-42".into(),
        });
    }

    /// A bare `T_OPEN` — the entire pre-registry protocol — must still
    /// parse, as the default-model open.
    #[test]
    fn legacy_bare_open_still_parses_as_default() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(T_OPEN);
        assert_eq!(
            read_client(&mut buf.as_slice()).unwrap(),
            Some(ClientMsg::Open {
                lm: None,
                bias: None
            })
        );
        // And the `lm: None` encoding is exactly that legacy frame.
        let mut out = Vec::new();
        write_client(
            &mut out,
            &ClientMsg::Open {
                lm: None,
                bias: None,
            },
        )
        .unwrap();
        assert_eq!(out, buf);
    }

    /// An LM-only `Open` (the pre-biasing registry protocol) must keep
    /// its exact frame bytes: one trailing string, no bias slot.
    #[test]
    fn lm_only_open_keeps_the_single_string_frame() {
        let msg = ClientMsg::Open {
            lm: Some("alt".into()),
            bias: None,
        };
        let body = msg.encode();
        assert_eq!(body.len(), 1 + 4 + 3, "tag + len + name only");
        assert_eq!(ClientMsg::decode(&body).unwrap(), msg);
    }

    /// The legacy `T_FRAMES` message must keep its exact byte layout —
    /// no version byte, no kind byte — so score-row clients built
    /// before the pipelined protocol still parse.
    #[test]
    fn legacy_score_row_frames_keep_their_byte_layout() {
        let msg = ClientMsg::Frames(vec![vec![1.0, -2.5]]);
        let body = msg.encode();
        assert_eq!(body.len(), 1 + 4 + 4 + 2 * 4, "tag + n + width + cells");
        assert_eq!(body[0], T_FRAMES);
        assert_eq!(ClientMsg::decode(&body).unwrap(), msg);
        // And the v2 framing of the same rows is the versioned layout,
        // two bytes longer, decoding to the same frame contents.
        let v2 = ClientMsg::FramesV2(vec![FrameInput::Scores(vec![1.0, -2.5])]);
        let v2_body = v2.encode();
        assert_eq!(v2_body.len(), body.len() + 2, "version + kind bytes");
        assert_eq!(
            &v2_body[..3],
            &[T_FRAMES_V2, FRAMES_V2_VERSION, KIND_SCORES]
        );
        assert_eq!(ClientMsg::decode(&v2_body).unwrap(), v2);
    }

    /// Unknown v2 versions and frame kinds are loud `InvalidData`
    /// errors, never misparses.
    #[test]
    fn frames_v2_rejects_unknown_version_and_kind() {
        let good = ClientMsg::FramesV2(vec![FrameInput::Features(vec![1.0])]).encode();
        let mut bad_version = good.clone();
        bad_version[1] = FRAMES_V2_VERSION + 1;
        let err = ClientMsg::decode(&bad_version).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
        let mut bad_kind = good;
        bad_kind[2] = 9;
        let err = ClientMsg::decode(&bad_kind).unwrap_err();
        assert!(err.to_string().contains("kind"), "got: {err}");
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::Opened { session: 7 });
        roundtrip_server(ServerMsg::Rejected {
            reason: RejectReason::AtCapacity,
        });
        roundtrip_server(ServerMsg::Rejected {
            reason: RejectReason::Overloaded,
        });
        roundtrip_server(ServerMsg::Partial { words: vec![1, 2] });
        roundtrip_server(ServerMsg::Final {
            words: vec![3, 9, 17],
            cost: 42.5,
            frames: 120,
        });
        roundtrip_server(ServerMsg::Error {
            msg: "queue full".into(),
        });
        roundtrip_server(ServerMsg::Stats {
            jsonl: "{\"record\":\"run\"}".into(),
        });
        roundtrip_server(ServerMsg::Dump {
            flight: "{\"record\":\"flight\"}\n".into(),
            spans: "{\"record\":\"sspan\"}\n".into(),
        });
        roundtrip_server(ServerMsg::Dump {
            flight: String::new(),
            spans: String::new(),
        });
        roundtrip_server(ServerMsg::Ack);
    }

    #[test]
    fn several_messages_stream_back_to_back() {
        let open = ClientMsg::Open {
            lm: None,
            bias: None,
        };
        let mut buf = Vec::new();
        write_client(&mut buf, &open).unwrap();
        write_client(&mut buf, &ClientMsg::Frames(vec![vec![1.0]])).unwrap();
        write_client(&mut buf, &ClientMsg::Finish).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_client(&mut r).unwrap(), Some(open));
        assert!(matches!(
            read_client(&mut r).unwrap(),
            Some(ClientMsg::Frames(_))
        ));
        assert_eq!(read_client(&mut r).unwrap(), Some(ClientMsg::Finish));
        assert_eq!(read_client(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn malformed_input_is_invalid_data_not_panic() {
        // Zero length.
        let z = 0u32.to_le_bytes();
        assert!(read_client(&mut z.as_slice()).is_err());
        // Absurd length.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_client(&mut huge.as_slice()).is_err());
        // Unknown tag.
        let mut bad_tag = Vec::new();
        bad_tag.extend_from_slice(&1u32.to_le_bytes());
        bad_tag.push(0x7F);
        assert!(read_client(&mut bad_tag.as_slice()).is_err());
        // Truncated payload (EOF mid-message).
        let mut trunc = Vec::new();
        trunc.extend_from_slice(&100u32.to_le_bytes());
        trunc.push(T_FRAMES);
        assert!(read_client(&mut trunc.as_slice()).is_err());
        // Trailing bytes after a complete payload.
        let mut trailing = Vec::new();
        trailing.extend_from_slice(&2u32.to_le_bytes());
        trailing.push(T_OPEN);
        trailing.push(0xAA);
        assert!(read_client(&mut trailing.as_slice()).is_err());
        // Frame batch whose declared size overflows.
        let mut overflow = Vec::new();
        let body = [
            &[T_FRAMES][..],
            &u32::MAX.to_le_bytes(),
            &u32::MAX.to_le_bytes(),
        ]
        .concat();
        overflow.extend_from_slice(&(body.len() as u32).to_le_bytes());
        overflow.extend_from_slice(&body);
        assert!(read_client(&mut overflow.as_slice()).is_err());
        // Dump reply missing its second string.
        let mut short_dump = Vec::new();
        let body = [&[T_DUMP_REPLY][..], &0u32.to_le_bytes()].concat();
        short_dump.extend_from_slice(&(body.len() as u32).to_le_bytes());
        short_dump.extend_from_slice(&body);
        assert!(read_server(&mut short_dump.as_slice()).is_err());
    }
}
