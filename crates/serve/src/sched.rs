//! The deterministic scheduler core: session table, deadline-ordered
//! ready queue, admission control, and the lease protocol workers use
//! to decode outside the lock.
//!
//! [`ServeCore`] never reads a wall clock — every method takes a
//! logical `now_ms`, so tests drive overload, idle eviction, and
//! deadline misses with plain arithmetic instead of sleeps. The
//! threaded [`crate::Server`] wraps it with a real clock.
//!
//! # Scheduling
//!
//! Ready sessions sit in a min-heap keyed by `(deadline, seq)` —
//! earliest deadline first, with an arm-order sequence number breaking
//! ties. A session is *armed* (given a deadline `now + deadline_ms` and
//! pushed) when work first arrives, and re-armed after each quantum
//! while work remains, so equal-deadline sessions round-robin in FIFO
//! order: 8 sessions with queued audio each get one quantum before any
//! gets its second. Heap entries are never removed eagerly; an entry
//! whose `(deadline, seq)` no longer matches the session's `armed`
//! field is stale and skipped on pop.
//!
//! # Leases
//!
//! [`ServeCore::lease_next`] *moves* a session's decode state and up to
//! `quantum_frames` queued rows out of the table; the caller runs
//! [`Lease::run`] with its own per-worker [`WorkScratch`] (no lock
//! held), then returns everything with [`ServeCore::complete_lease`].
//! Because a [`StreamSession`] carries no worker-local state, which
//! worker runs which quantum cannot affect transcripts.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use unfold_bias::{BiasedLm, BiasingFst};
use unfold_decoder::{
    AcousticScorer, AmSource, CountingSink, DecodeResult, FrameInput, LmSource, ScoreError,
    StreamSession, TraceSink, WorkScratch,
};
use unfold_lm::WordId;
use unfold_obs::{FlightKind, FlightRecorder, LogHistogram, MetricsRegistry, ObsRecord, SpanLog};

use crate::session::{Session, SessionId, SessionPhase, SessionView};
use crate::{RejectReason, ServeConfig, ServeError};

/// Counters the server accumulates over its lifetime. Latency and
/// population *distributions* live in the core's metrics registry
/// (exported via [`ServeCore::obs_jsonl`]); these scalars are cheap to
/// copy out for tests and status lines.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions admitted.
    pub opened: u64,
    /// Admissions refused: no free session slot.
    pub rejected_capacity: u64,
    /// Admissions refused: backlog bound exhausted.
    pub rejected_overload: u64,
    /// Sessions admitted with degraded (tightened) beams.
    pub degraded_admissions: u64,
    /// Sessions evicted by the idle timeout.
    pub evicted_idle: u64,
    /// Frames accepted into session queues.
    pub frames_accepted: u64,
    /// Frames refused (per-session queue full or server overloaded).
    pub frames_rejected: u64,
    /// Frames decoded.
    pub frames_decoded: u64,
    /// Quanta whose completion overran the service deadline.
    pub deadline_misses: u64,
    /// Decode quanta served.
    pub quanta: u64,
    /// Sessions finalized.
    pub finals: u64,
    /// Accepted frames discarded undecoded (eviction of a session with
    /// queued audio, a lease lost to a worker panic, or a scoring
    /// batch refused by the acoustic scorer).
    pub frames_dropped: u64,
    /// Leases lost to a panicking worker.
    pub worker_panics: u64,
    /// Frames that passed through the acoustic scoring stage (every
    /// frame, in pipelined mode; scorer-evaluated frames only, in
    /// lockstep mode — precomputed rows skip the scorer there).
    pub frames_scored: u64,
    /// Scoring-stage leases served (each one batches frames across
    /// sessions into a single scorer call).
    pub score_batches: u64,
    /// Times the scoring stage found a session's scored queue full and
    /// parked it until search drained a slot — the bounded-lag
    /// backpressure actually engaging.
    pub scoring_stalls: u64,
}

/// Name under which a single-LM server registers its model; also the
/// model new sessions decode against when `open` names none.
pub const DEFAULT_LM: &str = "default";

/// A claim on one session's next decode quantum: the decode state, the
/// session's own LM handle, the frames to feed it, and whether to
/// finalize afterwards. Obtained from [`ServeCore::lease_next`]; must
/// be returned via [`ServeCore::complete_lease`] (session stays
/// parked-as-leased until then).
#[derive(Debug)]
pub struct Lease<L: LmSource + ?Sized> {
    id: SessionId,
    decode: StreamSession,
    lm: Arc<L>,
    /// Registry generation of `lm` — the stable identity the worker's
    /// OLT memo is keyed by (an `Arc` address is not one: a retired
    /// model's allocation can be reused by a later `add_lm`).
    lm_gen: u64,
    frames: Vec<Vec<f32>>,
    finalize: bool,
    deadline_ms: u64,
    result: Option<DecodeResult>,
    /// The open `lease` span covering this quantum (0 = none).
    span: u64,
    /// The session's biasing model, if any — wrapped around `lm` as a
    /// fresh on-the-fly `BiasedLm` each quantum. Rebuilding per
    /// quantum is sound: the composite packing derives purely from the
    /// two pinned models' sizes, so token keys stay stable across
    /// quanta and workers.
    bias: Option<Arc<BiasingFst>>,
    /// Registry generation of `bias` (0 = unbiased; stamps share the
    /// LM counter, so 0 is never a bias stamp).
    bias_gen: u64,
    /// Per-quantum decode telemetry captured by
    /// [`Lease::run_traced`], attached to the lease span at
    /// completion.
    olt_probes: u64,
    olt_hits: u64,
}

impl<L: LmSource + ?Sized> Lease<L> {
    /// The session this lease advances.
    pub fn session(&self) -> SessionId {
        self.id
    }

    /// Frames this quantum will decode.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Whether this quantum finalizes the session.
    pub fn is_final(&self) -> bool {
        self.finalize
    }

    /// The open lease-span id (for [`ServeCore::abort_lease`] if the
    /// lease itself is lost to a panic).
    pub fn span_id(&self) -> u64 {
        self.span
    }

    /// Runs the quantum: seeds the session if this is its first slice,
    /// pushes the leased frames, and finalizes if the session is
    /// draining. The lease carries the session's own LM (selected at
    /// `open`), so a worker serving sessions bound to different models
    /// needs no per-model dispatch. Call with the worker's own `work`
    /// scratch — no lock needs to be held.
    pub fn run<A: AmSource + ?Sized>(
        &mut self,
        am: &A,
        work: &mut WorkScratch,
        sink: &mut dyn TraceSink,
    ) {
        // Entries memoized against another session's LM are invalid for
        // this one; binding by the registry's generation stamp resets
        // the OLT only on an actual model switch, and is immune to the
        // allocator reusing a retired model's address. Biased sessions
        // bind the *base* LM's stamp: the worker OLT caches base-LM
        // expansions (pre-bonus), so biased and unbiased sessions of
        // the same LM generation share it safely.
        work.bind_olt_model(self.lm_gen);
        if let Some(bias) = &self.bias {
            let biased = BiasedLm::new(&*self.lm, bias);
            Self::drive(
                &mut self.decode,
                &mut self.result,
                &self.frames,
                self.finalize,
                am,
                &biased,
                work,
                sink,
            );
        } else {
            Self::drive(
                &mut self.decode,
                &mut self.result,
                &self.frames,
                self.finalize,
                am,
                &*self.lm,
                work,
                sink,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn drive<A: AmSource + ?Sized, M: LmSource + ?Sized>(
        decode: &mut StreamSession,
        result: &mut Option<DecodeResult>,
        frames: &[Vec<f32>],
        finalize: bool,
        am: &A,
        lm: &M,
        work: &mut WorkScratch,
        sink: &mut dyn TraceSink,
    ) {
        if !decode.is_seeded() {
            decode.seed(am, lm, work, sink);
        }
        for row in frames {
            decode.push_frame(am, lm, work, row, sink);
        }
        if finalize && result.is_none() {
            *result = Some(decode.finalize(am, sink));
        }
    }

    /// [`Lease::run`] with per-quantum telemetry: resets `counts`,
    /// decodes through it, and keeps the quantum's OLT probe/hit
    /// counts on the lease so [`ServeCore::complete_lease`] can attach
    /// them (as a hit rate) to the lease span. Workers keep one
    /// [`CountingSink`] per thread and pass it to every quantum.
    pub fn run_traced<A: AmSource + ?Sized>(
        &mut self,
        am: &A,
        work: &mut WorkScratch,
        counts: &mut CountingSink,
    ) {
        counts.reset();
        self.run(am, work, counts);
        self.olt_probes = counts.olt_probes;
        self.olt_hits = counts.olt_hits;
    }
}

/// A claim on one scoring-stage batch: raw frames drained from one or
/// more sessions' raw queues, in drain order, to be pushed through the
/// server's [`AcousticScorer`] as a single batched call. Obtained from
/// [`ServeCore::lease_score_batch`]; must be returned via
/// [`ServeCore::complete_score_batch`] (each contributing session stays
/// score-leased until then — the SPSC discipline that keeps scored rows
/// landing in push order).
#[derive(Debug)]
pub struct ScoreLease {
    /// `(session, frames contributed)`, in drain order.
    parts: Vec<(SessionId, usize)>,
    /// The drained frames, concatenated part by part.
    frames: Vec<FrameInput>,
}

impl ScoreLease {
    /// Total frames in the batch.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Sessions contributing to the batch, in drain order.
    pub fn sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.parts.iter().map(|&(id, _)| id)
    }

    /// The batched frames, in drain order.
    pub fn frames(&self) -> &[FrameInput] {
        &self.frames
    }

    /// Scores the batch: one `score_batch` call when a scorer is bound,
    /// a verbatim passthrough of precomputed rows when none is
    /// (`scorer = None`; feature frames are then refused). Call with no
    /// lock held — this is the scoring stage's decode-equivalent.
    ///
    /// # Errors
    /// The first [`ScoreError`] the scorer returns.
    pub fn run(&self, scorer: Option<&dyn AcousticScorer>) -> Result<Vec<Vec<f32>>, ScoreError> {
        match scorer {
            Some(s) => s.score_batch(&self.frames),
            None => self
                .frames
                .iter()
                .map(|f| match f {
                    FrameInput::Scores(v) => Ok(v.clone()),
                    FrameInput::Features(_) => Err(ScoreError::FeaturesUnsupported),
                })
                .collect(),
        }
    }
}

/// One model-registry entry: a named LM plus its generation stamp —
/// unique for the core's whole lifetime, never reused. Workers key
/// their per-LM OLT memo by the stamp, so a model added after a retire
/// can never be mistaken for the one it replaced, even if the
/// allocator hands it the retired model's heap address.
#[derive(Debug)]
struct LmEntry<L: LmSource + ?Sized> {
    name: String,
    gen: u64,
    lm: Arc<L>,
}

/// One biasing-registry entry: a named per-user biasing model plus its
/// generation stamp. Stamps are drawn from the *same* monotonic counter
/// as LM stamps, so a (lm_gen, bias_gen) pair uniquely identifies the
/// composed model a session decodes against for the core's lifetime.
#[derive(Debug)]
struct BiasEntry {
    name: String,
    gen: u64,
    bias: Arc<BiasingFst>,
}

/// The deterministic multi-session scheduler. See the module docs for
/// the scheduling and lease protocols.
///
/// # Model registry
///
/// The core serves one shared AM against a *registry* of named LMs.
/// The first entry is the default; [`ServeCore::open_with_lm`] lets a
/// client pick any registered model, and [`ServeCore::add_lm`] /
/// [`ServeCore::retire_lm`] mutate the registry live. Each session pins
/// its own `Arc` to the LM it was admitted with, so retiring a model
/// never disturbs in-flight sessions — their decodes stay bit-identical
/// to a standalone decode against that model.
#[derive(Debug)]
pub struct ServeCore<A: AmSource + ?Sized, L: LmSource + ?Sized> {
    config: ServeConfig,
    am: Arc<A>,
    /// Registered LMs; the first entry is the default for sessions
    /// that name no model. Never empty.
    lms: Vec<LmEntry<L>>,
    /// Registered per-user biasing models. Unlike `lms`, may be empty:
    /// a session that names no biasing model decodes unbiased.
    biases: Vec<BiasEntry>,
    /// Next generation stamp to hand out (monotonic; shared between
    /// [`LmEntry`] and [`BiasEntry`]).
    next_lm_gen: u64,
    sessions: HashMap<SessionId, Session<L>>,
    /// Min-heap of `(deadline_ms, seq, session)`; stale entries are
    /// skipped on pop (see module docs).
    ready: BinaryHeap<Reverse<(u64, u64, SessionId)>>,
    /// FIFO of sessions with raw frames awaiting the scoring stage.
    /// Entries can go stale (evicted, drained, leased meanwhile) and
    /// are skipped on pop, like the search ready-heap's.
    score_ready: VecDeque<SessionId>,
    /// The acoustic scorer the scoring stage (or lockstep ingest of
    /// feature frames) runs. `None` = passthrough: precomputed score
    /// rows are forwarded verbatim and feature frames are refused.
    scorer: Option<Arc<dyn AcousticScorer>>,
    /// Stage-occupancy gauges `(scoring, search)`, set by the threaded
    /// server from its workers' busy clocks; NaN (the deterministic
    /// core has no wall time) renders as `-` in the stats table.
    stage_occupancy: (f64, f64),
    next_id: SessionId,
    next_seq: u64,
    /// Total queued frames across sessions (the backlog bound).
    backlog: usize,
    /// Frames currently out with running leases: accepted, no longer
    /// queued, not yet counted decoded. Part of the scrape-time
    /// reconciliation `accepted = decoded + backlog + inflight +
    /// dropped`.
    inflight: u64,
    /// Recycled score-row buffers: steady-state frame ingest allocates
    /// only when the pool is dry, and the pool is bounded by the
    /// backlog bound, so queue memory cannot grow without limit.
    row_pool: Vec<Vec<f32>>,
    stats: ServeStats,
    obs: MetricsRegistry,
    /// Session-lifecycle spans (`session → sched-wait / lease`).
    spans: SpanLog,
    /// Recent-scheduler-event ring with first-anomaly auto-freeze.
    flight: FlightRecorder,
    /// Worker-side decode wall time per quantum (µs), bumped lock-free
    /// by the threaded server's workers; also registered in `obs`.
    lease_decode_us: Arc<LogHistogram>,
    /// Lifetime worker-OLT probe/hit totals, accumulated from each
    /// completed lease's per-quantum counts. Exported as the
    /// `serve.olt_hit_rate` gauge (NaN until the first probe).
    olt_probes_total: u64,
    olt_hits_total: u64,
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> ServeCore<A, L> {
    /// A core serving `config` against one shared model pair; the LM is
    /// registered under [`DEFAULT_LM`].
    pub fn new(config: ServeConfig, am: Arc<A>, lm: Arc<L>) -> Self {
        Self::new_multi(config, am, vec![(DEFAULT_LM.to_string(), lm)])
    }

    /// A core serving one AM against several named LMs. The first entry
    /// is the default model for sessions that name none.
    ///
    /// # Panics
    /// When `lms` is empty or contains a duplicate name.
    pub fn new_multi(config: ServeConfig, am: Arc<A>, lms: Vec<(String, Arc<L>)>) -> Self {
        let mut obs = MetricsRegistry::new();
        // Touch every metric once so registration order (and thus
        // export order) is fixed regardless of which events fire first.
        for name in [
            "serve.sessions_opened",
            "serve.rejects_capacity",
            "serve.rejects_overload",
            "serve.admissions_degraded",
            "serve.evictions_idle",
            "serve.frames_accepted",
            "serve.frames_rejected",
            "serve.frames_decoded",
            "serve.deadline_misses",
            "serve.quanta",
            "serve.finals",
            "serve.frames_dropped",
            "serve.worker_panics",
            "serve.frames_scored",
            "serve.score_batches",
            "serve.scoring_stalls",
        ] {
            obs.counter(name);
        }
        for name in [
            "serve.backlog_frames",
            "serve.frames_inflight",
            "serve.olt_hit_rate",
            "serve.vm_rss_kb",
            "serve.queue_raw_frames",
            "serve.queue_scored_frames",
            "serve.stage_scoring_occupancy",
            "serve.stage_search_occupancy",
        ] {
            obs.gauge(name);
        }
        // `active_sessions` and `pressure` are *distributions over the
        // run* (sampled at each scheduling event), not shutdown-time
        // gauges — a loaded server reports the load it actually
        // carried. Pressure is scaled ×1000 into integer millis.
        for name in [
            "serve.lease_frames",
            "serve.session_frames",
            "serve.session_words",
            "serve.active_sessions",
            "serve.pressure_milli",
            "serve.score_batch_frames",
        ] {
            obs.histogram(name);
        }
        let lease_decode_us = obs.log_histogram("serve.lease_decode_us");
        assert!(!lms.is_empty(), "a server needs at least one LM");
        for (i, (name, _)) in lms.iter().enumerate() {
            assert!(
                lms[..i].iter().all(|(n, _)| n != name),
                "duplicate LM name '{name}'"
            );
        }
        let next_lm_gen = lms.len() as u64;
        let lms = lms
            .into_iter()
            .enumerate()
            .map(|(i, (name, lm))| LmEntry {
                name,
                gen: i as u64,
                lm,
            })
            .collect();
        ServeCore {
            config,
            am,
            lms,
            biases: Vec::new(),
            next_lm_gen,
            sessions: HashMap::new(),
            ready: BinaryHeap::new(),
            score_ready: VecDeque::new(),
            scorer: None,
            stage_occupancy: (f64::NAN, f64::NAN),
            next_id: 1,
            next_seq: 0,
            backlog: 0,
            inflight: 0,
            row_pool: Vec::new(),
            stats: ServeStats::default(),
            obs,
            spans: SpanLog::new(),
            flight: FlightRecorder::new(),
            lease_decode_us,
            olt_probes_total: 0,
            olt_hits_total: 0,
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Whether the two-stage scoring → search pipeline is enabled
    /// (`scoring_workers > 0`). Lockstep cores score at ingest and
    /// never populate the raw queues.
    pub fn pipelined(&self) -> bool {
        self.config.scoring_workers > 0
    }

    /// Binds the acoustic scorer frames are scored through — the
    /// scoring stage's model in pipelined mode, the inline ingest
    /// scorer in lockstep mode. Unset (the default), precomputed score
    /// rows pass through verbatim and feature frames are refused.
    pub fn set_scorer(&mut self, scorer: Arc<dyn AcousticScorer>) {
        self.scorer = Some(scorer);
    }

    /// A clone of the bound acoustic scorer handle, if any — what a
    /// scoring worker captures once at spawn so [`ScoreLease::run`]
    /// needs no lock.
    pub fn scorer(&self) -> Option<Arc<dyn AcousticScorer>> {
        self.scorer.clone()
    }

    /// Sets the stage-occupancy gauges (busy fraction in `[0, 1]` per
    /// stage over the scrape interval). The threaded server computes
    /// these from its workers' busy clocks; the deterministic core has
    /// no wall time, so they stay NaN until set.
    pub fn set_stage_occupancy(&mut self, scoring: f64, search: f64) {
        self.stage_occupancy = (scoring, search);
    }

    /// Clones of the shared AM and *default* LM handles (for decoding
    /// outside the core's lock).
    pub fn models(&self) -> (Arc<A>, Arc<L>) {
        (Arc::clone(&self.am), Arc::clone(&self.lms[0].lm))
    }

    /// A clone of the shared AM handle.
    pub fn am(&self) -> Arc<A> {
        Arc::clone(&self.am)
    }

    /// The registered LM names, default first.
    pub fn lm_names(&self) -> Vec<String> {
        self.lms.iter().map(|e| e.name.clone()).collect()
    }

    /// Resolves a model name to its registry entry (`None` = default).
    fn lm_entry(&self, name: Option<&str>) -> Result<&LmEntry<L>, ServeError> {
        match name {
            None => Ok(&self.lms[0]),
            Some(n) => self
                .lms
                .iter()
                .find(|e| e.name == n)
                .ok_or_else(|| ServeError::UnknownModel(n.to_string())),
        }
    }

    /// Resolves a model name against the registry (`None` = default).
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when no LM is registered under the
    /// name.
    pub fn lm(&self, name: Option<&str>) -> Result<Arc<L>, ServeError> {
        self.lm_entry(name).map(|e| Arc::clone(&e.lm))
    }

    /// Registers `lm` under `name`, replacing any existing model with
    /// that name (a hot swap). Sessions already pinned to the replaced
    /// model keep it; only *new* admissions see the update. Either way
    /// the entry gets a fresh generation stamp, so workers' per-LM OLT
    /// memos can never carry over from the replaced model. Returns the
    /// replaced handle, if any.
    pub fn add_lm(&mut self, name: &str, lm: Arc<L>) -> Option<Arc<L>> {
        let gen = self.next_lm_gen;
        self.next_lm_gen += 1;
        match self.lms.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.gen = gen;
                Some(std::mem::replace(&mut entry.lm, lm))
            }
            None => {
                self.lms.push(LmEntry {
                    name: name.to_string(),
                    gen,
                    lm,
                });
                None
            }
        }
    }

    /// Removes `name` from the registry. Live sessions pinned to the
    /// model are untouched — they hold their own `Arc` — but no new
    /// session can select it.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when the name is not registered,
    /// [`ServeError::LastModel`] when it is the only remaining LM (a
    /// server always has a default).
    pub fn retire_lm(&mut self, name: &str) -> Result<Arc<L>, ServeError> {
        let idx = self
            .lms
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        if self.lms.len() == 1 {
            return Err(ServeError::LastModel(name.to_string()));
        }
        Ok(self.lms.remove(idx).lm)
    }

    /// The registered biasing-model names, in registration order.
    pub fn bias_names(&self) -> Vec<String> {
        self.biases.iter().map(|e| e.name.clone()).collect()
    }

    /// Resolves a biasing-model name against the registry.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when no biasing model is registered
    /// under the name.
    pub fn bias(&self, name: &str) -> Result<Arc<BiasingFst>, ServeError> {
        self.biases
            .iter()
            .find(|e| e.name == name)
            .map(|e| Arc::clone(&e.bias))
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Registers `bias` under `name`, replacing any existing biasing
    /// model with that name (a hot swap). As with [`ServeCore::add_lm`],
    /// sessions already pinned to the replaced model keep it, and the
    /// entry gets a fresh generation stamp from the shared counter.
    /// Returns the replaced handle, if any.
    pub fn add_bias(&mut self, name: &str, bias: Arc<BiasingFst>) -> Option<Arc<BiasingFst>> {
        let gen = self.next_lm_gen;
        self.next_lm_gen += 1;
        match self.biases.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.gen = gen;
                Some(std::mem::replace(&mut entry.bias, bias))
            }
            None => {
                self.biases.push(BiasEntry {
                    name: name.to_string(),
                    gen,
                    bias,
                });
                None
            }
        }
    }

    /// Removes `name` from the biasing registry. Live sessions pinned
    /// to the model are untouched. Unlike [`ServeCore::retire_lm`]
    /// there is no last-model constraint: a server with no biasing
    /// models simply serves every session unbiased.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when the name is not registered.
    pub fn retire_bias(&mut self, name: &str) -> Result<Arc<BiasingFst>, ServeError> {
        let idx = self
            .biases
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        Ok(self.biases.remove(idx).bias)
    }

    /// Sessions currently occupying slots (all phases — a closed
    /// session holds its slot until its result is collected).
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Total queued frames across sessions.
    pub fn backlog_frames(&self) -> usize {
        self.backlog
    }

    /// The current load signal (see [`ServeConfig::pressure`]).
    pub fn pressure(&self) -> f64 {
        self.config.pressure(self.sessions.len(), self.backlog)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Admission control: opens a session against the default LM,
    /// applying the degradation ladder to its beams at the current
    /// pressure, or refuses it.
    ///
    /// # Errors
    /// [`RejectReason::AtCapacity`] when every slot is taken,
    /// [`RejectReason::Overloaded`] when the backlog bound is
    /// exhausted.
    pub fn open(&mut self, now_ms: u64) -> Result<SessionId, RejectReason> {
        match self.open_with_lm(None, now_ms) {
            Ok(id) => Ok(id),
            Err(ServeError::Rejected(r)) => Err(r),
            Err(e) => unreachable!("default LM always resolves: {e}"),
        }
    }

    /// [`ServeCore::open`] with per-session model selection: the new
    /// session decodes against the named LM (`None` = default), pinned
    /// for its whole lifetime.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when the name is not registered,
    /// [`ServeError::Rejected`] when admission control refuses the
    /// session.
    pub fn open_with_lm(&mut self, lm: Option<&str>, now_ms: u64) -> Result<SessionId, ServeError> {
        self.open_with_models(lm, None, now_ms)
    }

    /// [`ServeCore::open_with_lm`] with per-session personalization: the
    /// new session additionally composes the named biasing model
    /// (`None` = unbiased) on the fly over its LM, pinned for its whole
    /// lifetime.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when either name is not registered,
    /// [`ServeError::Rejected`] when admission control refuses the
    /// session.
    pub fn open_with_models(
        &mut self,
        lm: Option<&str>,
        bias: Option<&str>,
        now_ms: u64,
    ) -> Result<SessionId, ServeError> {
        let (lm, lm_gen) = {
            let entry = self.lm_entry(lm)?;
            (Arc::clone(&entry.lm), entry.gen)
        };
        let bias = match bias {
            None => None,
            Some(n) => {
                let entry = self
                    .biases
                    .iter()
                    .find(|e| e.name == n)
                    .ok_or_else(|| ServeError::UnknownModel(n.to_string()))?;
                Some((Arc::clone(&entry.bias), entry.gen))
            }
        };
        if self.sessions.len() >= self.config.capacity {
            self.stats.rejected_capacity += 1;
            self.flight
                .record(FlightKind::RejectCapacity, now_ms, 0, 0.0, 0.0);
            return Err(ServeError::Rejected(RejectReason::AtCapacity));
        }
        if self.backlog >= self.config.max_backlog_frames {
            self.stats.rejected_overload += 1;
            self.flight
                .record(FlightKind::RejectOverload, now_ms, 0, 0.0, 0.0);
            return Err(ServeError::Rejected(RejectReason::Overloaded));
        }
        let (cfg, level) = self.config.admission_config(self.pressure());
        if level > 0 {
            self.stats.degraded_admissions += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut s = Session::new(StreamSession::new(cfg), lm, lm_gen, bias, now_ms, level);
        s.root_span = self.spans.open("session", id, 0, now_ms);
        self.sessions.insert(id, s);
        self.stats.opened += 1;
        self.flight
            .record(FlightKind::Admit, now_ms, id, 0.0, f64::from(level));
        self.sample_load();
        Ok(id)
    }

    /// Queues one score row (`row[pdf - 1]` = acoustic cost) for `id`.
    /// Equivalent to [`ServeCore::ingest_frame`] with
    /// [`FrameInput::Scores`] — the legacy ingest surface, kept for
    /// wire compatibility; both route through the same admission path.
    ///
    /// # Errors
    /// [`ServeError::Rejected`] when the server-wide backlog bound is
    /// exhausted, [`ServeError::QueueFull`] when this session's queue
    /// is, [`ServeError::Finished`] after `finish`, and
    /// [`ServeError::UnknownSession`] otherwise.
    pub fn push_frame(
        &mut self,
        id: SessionId,
        row: &[f32],
        now_ms: u64,
    ) -> Result<(), ServeError> {
        if self.backlog >= self.config.max_backlog_frames {
            self.stats.frames_rejected += 1;
            self.flight
                .record(FlightKind::RejectOverload, now_ms, id, 0.0, 1.0);
            return Err(ServeError::Rejected(RejectReason::Overloaded));
        }
        let mut buf = self.row_pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(row);
        if self.pipelined() {
            self.admit_raw(id, FrameInput::Scores(buf), now_ms)
        } else if self.scorer.is_none() {
            // Passthrough lockstep: the row IS the scored row.
            self.admit_row(id, buf, now_ms)
        } else {
            self.ingest_scored_inline(id, &FrameInput::Scores(buf), now_ms)
        }
    }

    /// The unified frame-ingest surface: accepts either precomputed
    /// score rows or raw feature frames. In lockstep mode
    /// (`scoring_workers == 0`) the frame is scored inline — through
    /// the bound [`AcousticScorer`], or verbatim passthrough for score
    /// rows when none is bound — and lands directly in the session's
    /// scored queue, exactly like [`ServeCore::push_frame`]. In
    /// pipelined mode it lands in the session's raw queue and the
    /// scoring stage picks it up asynchronously.
    ///
    /// # Errors
    /// Everything [`ServeCore::push_frame`] returns, plus
    /// [`ServeError::Score`] when inline scoring refuses the frame
    /// (feature frames with no scorer bound, or a width mismatch).
    pub fn ingest_frame(
        &mut self,
        id: SessionId,
        frame: FrameInput,
        now_ms: u64,
    ) -> Result<(), ServeError> {
        if self.backlog >= self.config.max_backlog_frames {
            self.stats.frames_rejected += 1;
            self.flight
                .record(FlightKind::RejectOverload, now_ms, id, 0.0, 1.0);
            return Err(ServeError::Rejected(RejectReason::Overloaded));
        }
        if self.pipelined() {
            self.admit_raw(id, frame, now_ms)
        } else {
            self.ingest_scored_inline(id, &frame, now_ms)
        }
    }

    /// Lockstep ingest: score `frame` now (scorer or passthrough) and
    /// admit the row to the scored queue.
    fn ingest_scored_inline(
        &mut self,
        id: SessionId,
        frame: &FrameInput,
        now_ms: u64,
    ) -> Result<(), ServeError> {
        let mut row = self.row_pool.pop().unwrap_or_default();
        row.clear();
        match &self.scorer {
            Some(scorer) => {
                if let Err(e) = scorer.score_into(frame, &mut row) {
                    self.recycle(std::iter::once(row));
                    return Err(ServeError::Score(id, e));
                }
                self.stats.frames_scored += 1;
            }
            None => match frame {
                FrameInput::Scores(v) => row.extend_from_slice(v),
                FrameInput::Features(_) => {
                    self.recycle(std::iter::once(row));
                    return Err(ServeError::Score(id, ScoreError::FeaturesUnsupported));
                }
            },
        }
        self.admit_row(id, row, now_ms)
    }

    /// Admission tail shared by every ingest surface: phase and
    /// queue-bound checks, then the scored queue. `buf` is an owned,
    /// already-scored row (recycled on refusal).
    fn admit_row(&mut self, id: SessionId, buf: Vec<f32>, now_ms: u64) -> Result<(), ServeError> {
        let queue_cap = self.config.session_queue_frames;
        let Some(s) = self.sessions.get_mut(&id) else {
            self.recycle(std::iter::once(buf));
            return Err(ServeError::UnknownSession(id));
        };
        s.last_activity_ms = now_ms;
        if s.phase != SessionPhase::Open {
            self.recycle(std::iter::once(buf));
            return Err(ServeError::Finished(id));
        }
        if s.queue.len() + s.raw.len() >= queue_cap {
            self.stats.frames_rejected += 1;
            self.recycle(std::iter::once(buf));
            return Err(ServeError::QueueFull(id));
        }
        s.queue.push_back(buf);
        s.frames_accepted += 1;
        self.stats.frames_accepted += 1;
        self.backlog += 1;
        self.arm(id, now_ms);
        Ok(())
    }

    /// Pipelined admission: same checks as [`ServeCore::admit_row`]
    /// (the per-session bound covers raw + scored together, so
    /// backpressure is independent of where frames sit in the
    /// pipeline), landing in the raw queue and arming the scoring
    /// stage instead of search.
    fn admit_raw(
        &mut self,
        id: SessionId,
        frame: FrameInput,
        now_ms: u64,
    ) -> Result<(), ServeError> {
        let queue_cap = self.config.session_queue_frames;
        let Some(s) = self.sessions.get_mut(&id) else {
            return Err(ServeError::UnknownSession(id));
        };
        s.last_activity_ms = now_ms;
        if s.phase != SessionPhase::Open {
            return Err(ServeError::Finished(id));
        }
        if s.queue.len() + s.raw.len() >= queue_cap {
            self.stats.frames_rejected += 1;
            return Err(ServeError::QueueFull(id));
        }
        s.raw.push_back(frame);
        s.frames_accepted += 1;
        self.stats.frames_accepted += 1;
        self.backlog += 1;
        self.score_arm(id);
        Ok(())
    }

    /// Marks `id` as finishing: queued frames drain, then the session
    /// finalizes and its result becomes collectable. Idempotent.
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] when `id` does not exist.
    pub fn finish(&mut self, id: SessionId, now_ms: u64) -> Result<(), ServeError> {
        let s = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession(id))?;
        s.last_activity_ms = now_ms;
        if s.phase == SessionPhase::Open {
            s.phase = SessionPhase::Finishing;
        }
        self.arm(id, now_ms);
        Ok(())
    }

    /// Evicts every non-leased session with no client activity for
    /// `idle_timeout_ms` (0 disables eviction), returning the evicted
    /// ids in ascending order. Uncollected results are dropped —
    /// eviction is how abandoned sessions stop holding slots and
    /// lattice memory.
    pub fn evict_idle(&mut self, now_ms: u64) -> Vec<SessionId> {
        if self.config.idle_timeout_ms == 0 {
            return Vec::new();
        }
        let mut expired: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| {
                !s.leased
                    && !s.score_leased
                    && now_ms.saturating_sub(s.last_activity_ms) >= self.config.idle_timeout_ms
            })
            .map(|(&id, _)| id)
            .collect();
        expired.sort_unstable();
        for &id in &expired {
            if let Some(s) = self.sessions.remove(&id) {
                let dropped = (s.queue.len() + s.raw.len()) as u64;
                self.backlog -= s.queue.len() + s.raw.len();
                self.stats.frames_dropped += dropped;
                self.recycle(s.queue);
                self.recycle(recyclable_raw(s.raw));
                self.stats.evicted_idle += 1;
                if s.wait_span != 0 {
                    self.spans.close(s.wait_span, now_ms);
                }
                self.spans.close_with(
                    s.root_span,
                    now_ms,
                    &[
                        ("frames_decoded", s.frames_decoded as f64),
                        ("evicted", 1.0),
                    ],
                );
                self.flight
                    .record(FlightKind::Evict, now_ms, id, 0.0, dropped as f64);
            }
        }
        if !expired.is_empty() {
            self.sample_load();
        }
        expired
    }

    /// Claims the ready session with the earliest deadline, moving its
    /// decode state and up to `quantum_frames` rows out of the table.
    /// Returns `None` when no session has pending work. `now_ms` also
    /// stamps the lease's deadline slack at dispatch (`deadline − now`)
    /// into the flight recorder.
    pub fn lease_next(&mut self, now_ms: u64) -> Option<Lease<L>> {
        let quantum = self.config.quantum_frames.max(1);
        while let Some(Reverse((deadline, seq, id))) = self.ready.pop() {
            let Some(s) = self.sessions.get_mut(&id) else {
                continue; // evicted; stale entry
            };
            if s.leased || s.armed != Some((deadline, seq)) {
                continue; // re-armed since; stale entry
            }
            s.armed = None;
            if !s.runnable() {
                continue;
            }
            s.leased = true;
            let take = quantum.min(s.queue.len());
            let frames: Vec<Vec<f32>> = s.queue.drain(..take).collect();
            // Never finalize while frames still sit in (or are out
            // with) the scoring stage — they are part of the utterance.
            let finalize = s.phase == SessionPhase::Finishing
                && s.queue.is_empty()
                && s.raw.is_empty()
                && !s.score_leased;
            // Search just freed scored-queue slots: a session the
            // scoring stage parked on a full queue can score again.
            let unstall = s.score_stalled;
            if unstall {
                s.score_stalled = false;
            }
            let decode = s.decode.take().expect("unleased session owns its state");
            let lm = Arc::clone(&s.lm);
            let lm_gen = s.lm_gen;
            let bias = s.bias.clone();
            let bias_gen = s.bias_gen;
            let root = s.root_span;
            let wait = std::mem::take(&mut s.wait_span);
            if wait != 0 {
                self.spans.close(wait, now_ms);
            }
            if unstall {
                self.score_arm(id);
            }
            self.backlog -= take;
            self.inflight += take as u64;
            self.stats.quanta += 1;
            self.obs.histogram("serve.lease_frames").record(take as u64);
            let slack = deadline as f64 - now_ms as f64;
            self.flight
                .record(FlightKind::Lease, now_ms, id, slack, take as f64);
            self.sample_load();
            let span = self.spans.open("lease", id, root, now_ms);
            return Some(Lease {
                id,
                decode,
                lm,
                lm_gen,
                frames,
                finalize,
                deadline_ms: deadline,
                result: None,
                span,
                bias,
                bias_gen,
                olt_probes: 0,
                olt_hits: 0,
            });
        }
        None
    }

    /// Returns a ran lease: re-parks the decode state, caches the
    /// stable partial, recycles the frame rows, records a deadline miss
    /// if the quantum completed late, and either stores the final
    /// result or re-arms the session for its next quantum.
    pub fn complete_lease(&mut self, lease: Lease<L>, now_ms: u64) {
        let Lease {
            id,
            decode,
            lm: _,
            lm_gen,
            frames,
            finalize: _,
            deadline_ms,
            result,
            span,
            bias: _,
            bias_gen,
            olt_probes,
            olt_hits,
        } = lease;
        let n = frames.len() as u64;
        self.stats.frames_decoded += n;
        self.inflight -= n;
        let slack = deadline_ms as f64 - now_ms as f64;
        if now_ms > deadline_ms {
            self.stats.deadline_misses += 1;
            self.flight
                .record(FlightKind::DeadlineMiss, now_ms, id, slack, n as f64);
        }
        self.olt_probes_total += olt_probes;
        self.olt_hits_total += olt_hits;
        let olt_hit_rate = if olt_probes == 0 {
            0.0
        } else {
            olt_hits as f64 / olt_probes as f64
        };
        self.spans.close_with(
            span,
            now_ms,
            &[
                ("frames", n as f64),
                ("olt_hit_rate", olt_hit_rate),
                ("olt_probes", olt_probes as f64),
                ("lm_gen", lm_gen as f64),
                ("bias_gen", bias_gen as f64),
                ("slack_ms", slack),
            ],
        );
        self.recycle(frames);
        let finished = result.is_some();
        let (session_frames, session_words) = {
            let Some(s) = self.sessions.get_mut(&id) else {
                return; // evicted mid-lease (cannot happen today; be safe)
            };
            s.frames_decoded += n;
            s.last_partial = decode.partial_stable_prefix();
            s.decode = Some(decode);
            s.leased = false;
            s.last_progress_ms = s.last_progress_ms.max(now_ms);
            match result {
                Some(res) => {
                    let words = res.words.len() as u64;
                    s.result = Some(res);
                    s.phase = SessionPhase::Closed;
                    (s.frames_decoded, words)
                }
                None => (0, 0),
            }
        };
        if finished {
            self.stats.finals += 1;
            self.obs
                .histogram("serve.session_frames")
                .record(session_frames);
            self.obs
                .histogram("serve.session_words")
                .record(session_words);
            self.flight
                .record(FlightKind::Final, now_ms, id, slack, session_frames as f64);
        } else {
            self.arm(id, now_ms);
        }
    }

    /// Claims a scoring-stage batch: drains raw frames from score-ready
    /// sessions (FIFO) into one [`ScoreLease`], up to
    /// [`DecodeConfig::scorer_batch`](unfold_decoder::DecodeConfig)
    /// frames across sessions. Per session, at most
    /// `max(max_search_lag, 1)` minus the scored-queue depth frames are
    /// taken — the bounded lag; a session whose scored queue is full is
    /// parked stalled (a `scoring_stalls` tick) until search drains a
    /// slot. Returns `None` when nothing is scoreable (or in lockstep
    /// mode, where the scoring stage does not exist).
    pub fn lease_score_batch(&mut self, now_ms: u64) -> Option<ScoreLease> {
        if !self.pipelined() {
            return None;
        }
        let budget = self.config.base.scorer_batch.max(1);
        let lag_cap = self.config.base.max_search_lag.max(1);
        let mut parts: Vec<(SessionId, usize)> = Vec::new();
        let mut frames: Vec<FrameInput> = Vec::new();
        while frames.len() < budget {
            let Some(id) = self.score_ready.pop_front() else {
                break;
            };
            let Some(s) = self.sessions.get_mut(&id) else {
                continue; // evicted; stale entry
            };
            if !s.scoreable() {
                continue; // drained, leased, or stalled since; stale
            }
            let free = lag_cap.saturating_sub(s.queue.len());
            if free == 0 {
                s.score_stalled = true;
                self.stats.scoring_stalls += 1;
                continue;
            }
            let take = free.min(s.raw.len()).min(budget - frames.len());
            s.score_leased = true;
            frames.extend(s.raw.drain(..take));
            parts.push((id, take));
        }
        if frames.is_empty() {
            return None;
        }
        let n = frames.len();
        self.backlog -= n;
        self.inflight += n as u64;
        self.stats.score_batches += 1;
        self.obs
            .histogram("serve.score_batch_frames")
            .record(n as u64);
        self.flight.record(
            FlightKind::ScoreBatch,
            now_ms,
            parts[0].0,
            parts.len() as f64,
            n as f64,
        );
        Some(ScoreLease { parts, frames })
    }

    /// Returns a ran scoring lease: lands the scored rows at the tail
    /// of each contributing session's scored queue — in drain order,
    /// which with the one-outstanding-lease-per-session rule keeps
    /// every session's rows in push order — clears the score leases,
    /// re-arms scoring where raw frames remain, and arms search. On
    /// `Err` the whole batch's frames are dropped (with
    /// `frames_dropped` accounting); the sessions survive, minus those
    /// frames.
    pub fn complete_score_batch(
        &mut self,
        lease: ScoreLease,
        rows: Result<Vec<Vec<f32>>, ScoreError>,
        now_ms: u64,
    ) {
        let ScoreLease { parts, frames } = lease;
        let total = frames.len() as u64;
        self.inflight -= total;
        // Recycle the raw frames' row buffers — in steady state the
        // pipeline cycles buffers instead of allocating.
        self.recycle(frames.into_iter().filter_map(|f| match f {
            FrameInput::Scores(v) => Some(v),
            FrameInput::Features(_) => None,
        }));
        match rows {
            Ok(rows) => {
                assert_eq!(
                    rows.len() as u64,
                    total,
                    "scorer must return one row per frame"
                );
                self.stats.frames_scored += total;
                let mut rows = rows.into_iter();
                for (id, n) in parts {
                    let landed = {
                        let Some(s) = self.sessions.get_mut(&id) else {
                            // Evicted mid-lease: its rows are lost.
                            for _ in 0..n {
                                drop(rows.next());
                            }
                            self.stats.frames_dropped += n as u64;
                            continue;
                        };
                        s.score_leased = false;
                        for row in rows.by_ref().take(n) {
                            s.queue.push_back(row);
                        }
                        n
                    };
                    self.backlog += landed;
                    self.score_arm(id);
                    self.arm(id, now_ms);
                }
            }
            Err(_) => {
                // The scorer refused the batch; every frame in it is
                // gone. Release the leases so the sessions (and any
                // later, well-formed frames) keep moving.
                self.stats.frames_dropped += total;
                for (id, _) in parts {
                    if let Some(s) = self.sessions.get_mut(&id) {
                        s.score_leased = false;
                    }
                    self.score_arm(id);
                    self.arm(id, now_ms);
                }
            }
        }
    }

    /// One deterministic pipeline turn: at most one scoring batch
    /// (leased, run, completed inline), then one search quantum via
    /// [`ServeCore::step`]. Returns the session the *search* stage
    /// advanced; `while core.step_pipelined(..).is_some()` drains a
    /// pipelined core completely, since every scored batch arms search.
    pub fn step_pipelined(&mut self, work: &mut WorkScratch, now_ms: u64) -> Option<SessionId> {
        if let Some(lease) = self.lease_score_batch(now_ms) {
            let scorer = self.scorer.clone();
            let rows = lease.run(scorer.as_deref());
            self.complete_score_batch(lease, rows, now_ms);
        }
        self.step(work, now_ms)
    }

    /// Arms `id` in the scoring stage's ready FIFO if it is scoreable
    /// and not already queued (the FIFO is short — bounded by the
    /// session table — so the linear dedup scan is cheap).
    fn score_arm(&mut self, id: SessionId) {
        let Some(s) = self.sessions.get(&id) else {
            return;
        };
        if s.scoreable() && !self.score_ready.contains(&id) {
            self.score_ready.push_back(id);
        }
    }

    /// Abandons a lease whose worker panicked mid-quantum: the decode
    /// state and the leased frames went down with the worker's stack,
    /// so the session cannot continue — record the panic (a flight
    /// trigger), close its spans, and free the slot. `lost_frames` is
    /// the lease's frame count, captured before the decode started.
    pub fn abort_lease(&mut self, id: SessionId, lease_span: u64, lost_frames: u64, now_ms: u64) {
        self.stats.worker_panics += 1;
        self.stats.frames_dropped += lost_frames;
        self.inflight -= lost_frames;
        self.spans
            .close_with(lease_span, now_ms, &[("panicked", 1.0)]);
        if let Some(s) = self.sessions.remove(&id) {
            let queued = (s.queue.len() + s.raw.len()) as u64;
            self.stats.frames_dropped += queued;
            self.backlog -= s.queue.len() + s.raw.len();
            self.recycle(s.queue);
            self.recycle(recyclable_raw(s.raw));
            if s.wait_span != 0 {
                self.spans.close(s.wait_span, now_ms);
            }
            self.spans
                .close_with(s.root_span, now_ms, &[("panicked", 1.0)]);
        }
        self.flight
            .record(FlightKind::WorkerPanic, now_ms, id, 0.0, lost_frames as f64);
        self.sample_load();
    }

    /// One scheduler turn: lease, decode, complete. The deterministic
    /// single-threaded driver (and the tests' way of pumping the
    /// server by hand). Returns the session advanced, or `None` when
    /// nothing was runnable.
    pub fn step(&mut self, work: &mut WorkScratch, now_ms: u64) -> Option<SessionId> {
        let mut lease = self.lease_next(now_ms)?;
        let am = self.am();
        let mut counts = CountingSink::default();
        lease.run_traced(&*am, work, &mut counts);
        let id = lease.session();
        self.complete_lease(lease, now_ms);
        Some(id)
    }

    /// The longest word prefix all of `id`'s live hypotheses agree on —
    /// the non-flickering partial transcript. While the session is
    /// leased out, returns the prefix cached at its last quantum.
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] when `id` does not exist.
    pub fn stable_partial(&self, id: SessionId) -> Result<Vec<WordId>, ServeError> {
        let s = self
            .sessions
            .get(&id)
            .ok_or(ServeError::UnknownSession(id))?;
        Ok(match &s.decode {
            Some(d) => d.partial_stable_prefix(),
            None => s.last_partial.clone(),
        })
    }

    /// A snapshot of `id`'s scheduling state.
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] when `id` does not exist.
    pub fn view(&self, id: SessionId) -> Result<SessionView, ServeError> {
        self.sessions
            .get(&id)
            .map(Session::view)
            .ok_or(ServeError::UnknownSession(id))
    }

    /// Collects a finished session's result, freeing its slot. Returns
    /// `Ok(None)` while the session is still decoding.
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] when `id` does not exist (or was
    /// already collected).
    pub fn take_result(&mut self, id: SessionId) -> Result<Option<DecodeResult>, ServeError> {
        match self.sessions.get(&id) {
            None => Err(ServeError::UnknownSession(id)),
            Some(s) if s.phase == SessionPhase::Closed => {
                let s = self.sessions.remove(&id).expect("present");
                self.backlog -= s.queue.len() + s.raw.len();
                self.stats.frames_dropped += (s.queue.len() + s.raw.len()) as u64;
                self.recycle(s.queue);
                self.recycle(recyclable_raw(s.raw));
                // Collection has no logical timestamp of its own: the
                // root span ends at the session's latest client or
                // scheduler activity, so it never closes before its
                // child lease spans.
                let end = s.last_activity_ms.max(s.last_progress_ms);
                if s.wait_span != 0 {
                    self.spans.close(s.wait_span, end);
                }
                let words = s.result.as_ref().map_or(0, |r| r.words.len()) as f64;
                self.spans.close_with(
                    s.root_span,
                    end,
                    &[
                        ("frames_decoded", s.frames_decoded as f64),
                        ("words", words),
                    ],
                );
                self.sample_load();
                Ok(s.result)
            }
            Some(_) => Ok(None),
        }
    }

    /// Exports server metrics as one `run` JSONL record (the
    /// `unfold-obs` format every other tool in this repo emits).
    pub fn obs_jsonl(&mut self) -> String {
        self.sync_obs();
        let mut out = ObsRecord::Run(self.obs.totals()).to_json();
        out.push('\n');
        out
    }

    /// Renders server metrics as a markdown table.
    pub fn obs_markdown(&mut self) -> String {
        self.sync_obs();
        self.obs.markdown()
    }

    /// Closed session-lifecycle spans as JSONL (one `sspan` record per
    /// line, in close order).
    pub fn spans_jsonl(&self) -> String {
        self.spans.to_jsonl()
    }

    /// Closed spans as a Chrome `trace_event` JSON array for
    /// about://tracing (one track per session).
    pub fn spans_chrome_trace(&self) -> String {
        self.spans.to_chrome_trace()
    }

    /// `(opened, closed, still_open)` span counts over the core's
    /// lifetime — the reconciliation surface for scrape tests.
    pub fn span_counts(&self) -> (u64, u64, usize) {
        (
            self.spans.opened_total(),
            self.spans.closed_total(),
            self.spans.open_count(),
        )
    }

    /// The flight recorder's current ring as JSONL, oldest first.
    pub fn flight_jsonl(&self) -> String {
        self.flight.snapshot_jsonl()
    }

    /// The dump pinned at the first anomaly (deadline miss, overload
    /// reject, worker panic), with the trigger's tag — `None` while the
    /// run has been clean.
    pub fn flight_frozen(&self) -> Option<(&'static str, &str)> {
        Some((self.flight.frozen_reason()?, self.flight.frozen_dump()?))
    }

    /// The shared worker-side decode-time histogram (µs per quantum);
    /// the threaded server's workers record into clones of this `Arc`
    /// with no lock held.
    pub fn lease_decode_us(&self) -> Arc<LogHistogram> {
        Arc::clone(&self.lease_decode_us)
    }

    /// Samples the load distributions (`serve.active_sessions`,
    /// `serve.pressure_milli`) at a scheduling event, so the exported
    /// report reflects load *over the run*, not at shutdown.
    fn sample_load(&mut self) {
        let sessions = self.sessions.len() as u64;
        let pressure_milli = (self.pressure() * 1000.0).round() as u64;
        self.obs.histogram("serve.active_sessions").record(sessions);
        self.obs
            .histogram("serve.pressure_milli")
            .record(pressure_milli);
    }

    /// Arms `id` in the ready queue if it has work and no live entry,
    /// opening its `sched-wait` span (armed → leased is exactly the
    /// time the session spent waiting for a worker).
    fn arm(&mut self, id: SessionId, now_ms: u64) {
        let deadline = now_ms + self.config.deadline_ms;
        let seq = self.next_seq;
        let Some(s) = self.sessions.get_mut(&id) else {
            return;
        };
        if s.leased || s.armed.is_some() || !s.runnable() {
            return;
        }
        s.armed = Some((deadline, seq));
        let root = s.root_span;
        self.next_seq += 1;
        self.ready.push(Reverse((deadline, seq, id)));
        let wait = self.spans.open("sched-wait", id, root, now_ms);
        if let Some(s) = self.sessions.get_mut(&id) {
            s.wait_span = wait;
        }
    }

    /// Returns row buffers to the pool (bounded by the backlog bound).
    fn recycle(&mut self, rows: impl IntoIterator<Item = Vec<f32>>) {
        for mut row in rows {
            if self.row_pool.len() >= self.config.max_backlog_frames {
                break;
            }
            row.clear();
            self.row_pool.push(row);
        }
    }

    /// Brings the registry's counters/gauges up to date with the
    /// scalar stats (histograms record at event time).
    fn sync_obs(&mut self) {
        let counters = [
            ("serve.sessions_opened", self.stats.opened),
            ("serve.rejects_capacity", self.stats.rejected_capacity),
            ("serve.rejects_overload", self.stats.rejected_overload),
            ("serve.admissions_degraded", self.stats.degraded_admissions),
            ("serve.evictions_idle", self.stats.evicted_idle),
            ("serve.frames_accepted", self.stats.frames_accepted),
            ("serve.frames_rejected", self.stats.frames_rejected),
            ("serve.frames_decoded", self.stats.frames_decoded),
            ("serve.deadline_misses", self.stats.deadline_misses),
            ("serve.quanta", self.stats.quanta),
            ("serve.finals", self.stats.finals),
            ("serve.frames_dropped", self.stats.frames_dropped),
            ("serve.worker_panics", self.stats.worker_panics),
            ("serve.frames_scored", self.stats.frames_scored),
            ("serve.score_batches", self.stats.score_batches),
            ("serve.scoring_stalls", self.stats.scoring_stalls),
        ];
        for (name, v) in counters {
            let c = self.obs.counter(name);
            let cur = c.get();
            if v > cur {
                c.add(v - cur);
            }
        }
        self.obs
            .gauge("serve.backlog_frames")
            .set(self.backlog as f64);
        self.obs
            .gauge("serve.frames_inflight")
            .set(self.inflight as f64);
        // NaN — not 0.0 — until the first probe: "no traffic yet" and
        // "every probe missed" are different answers, and the stats
        // table renders the former as `-`.
        let hit_rate = if self.olt_probes_total == 0 {
            f64::NAN
        } else {
            self.olt_hits_total as f64 / self.olt_probes_total as f64
        };
        self.obs.gauge("serve.olt_hit_rate").set(hit_rate);
        self.obs
            .gauge("serve.vm_rss_kb")
            .set(read_vm_rss_kb().map_or(f64::NAN, |kb| kb as f64));
        let raw: usize = self.sessions.values().map(|s| s.raw.len()).sum();
        self.obs.gauge("serve.queue_raw_frames").set(raw as f64);
        self.obs
            .gauge("serve.queue_scored_frames")
            .set((self.backlog - raw) as f64);
        self.obs
            .gauge("serve.stage_scoring_occupancy")
            .set(self.stage_occupancy.0);
        self.obs
            .gauge("serve.stage_search_occupancy")
            .set(self.stage_occupancy.1);
    }
}

/// The reusable row buffers inside a drained raw queue (feature frames
/// carry no score row to recycle).
fn recyclable_raw(raw: VecDeque<FrameInput>) -> impl Iterator<Item = Vec<f32>> {
    raw.into_iter().filter_map(|f| match f {
        FrameInput::Scores(v) => Some(v),
        FrameInput::Features(_) => None,
    })
}

/// This process's resident set size in KiB, from `/proc/self/status`
/// (`None` off Linux or if the field is missing).
pub fn read_vm_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel, Utterance};
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Arc<Wfst>, Arc<Wfst>) {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        (lex, Arc::new(am.fst), Arc::new(lm_to_wfst(&model)))
    }

    fn utt(lex: &Lexicon, words: &[u32], seed: u64) -> Utterance {
        synthesize_utterance(
            words,
            lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            seed,
        )
    }

    fn core_with(am: &Arc<Wfst>, lm: &Arc<Wfst>, config: ServeConfig) -> ServeCore<Wfst, Wfst> {
        ServeCore::new(config, Arc::clone(am), Arc::clone(lm))
    }

    fn push_all(core: &mut ServeCore<Wfst, Wfst>, id: SessionId, u: &Utterance, now: u64) {
        for t in 0..u.scores.num_frames() {
            core.push_frame(id, u.scores.frame(t), now).expect("push");
        }
    }

    /// The tentpole acceptance test: 8 sessions interleaved through the
    /// scheduler, each transcript bit-identical (words, cost bits, and
    /// — with the OLT off — full search statistics) to the same
    /// utterance decoded standalone through `OtfDecoder::decode`.
    #[test]
    fn eight_interleaved_sessions_match_standalone_decode() {
        let (lex, am, lm) = setup();
        let word_seqs: [&[u32]; 8] = [
            &[3, 9, 17],
            &[7, 11, 4],
            &[1, 2, 3],
            &[22, 5],
            &[14, 30, 8, 2],
            &[40, 6, 19],
            &[9, 9, 27],
            &[33, 12],
        ];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| utt(&lex, w, 5 + i as u64))
            .collect();
        // OLT off so even the fetch statistics must match standalone.
        let base = DecodeConfig::default();
        assert_eq!(base.olt_entries, 0);
        let standalone: Vec<_> = utts
            .iter()
            .map(|u| OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink))
            .collect();

        let config = ServeConfig {
            capacity: 32, // 8/32 < DEGRADE_SOFT: everyone gets full beams
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let ids: Vec<SessionId> = (0..8).map(|_| core.open(0).expect("admit")).collect();
        for (id, u) in ids.iter().zip(&utts) {
            push_all(&mut core, *id, u, 0);
            core.finish(*id, 0).expect("finish");
        }

        let mut work = WorkScratch::new();
        work.configure_olt(core.config().olt_entries);
        let mut order = Vec::new();
        while let Some(id) = core.step(&mut work, 0) {
            order.push(id);
        }
        // Equal deadlines round-robin in arm order: the first 8 quanta
        // touch 8 distinct sessions — genuinely interleaved, not
        // run-to-completion.
        let mut first8 = order[..8].to_vec();
        first8.sort_unstable();
        first8.dedup();
        assert_eq!(first8.len(), 8, "first quanta must cover all sessions");

        for ((id, u), alone) in ids.iter().zip(&utts).zip(&standalone) {
            let served = core
                .take_result(*id)
                .expect("known")
                .expect("closed after drain");
            assert_eq!(served.words, alone.words, "utt {:?}", u.words);
            assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(served.stats, alone.stats);
        }
        assert_eq!(core.active_sessions(), 0);
        assert_eq!(core.backlog_frames(), 0);
        let stats = core.stats();
        assert_eq!(stats.finals, 8);
        assert_eq!(stats.deadline_misses, 0);
    }

    /// Same interleaving with a shared warm worker OLT: the memo never
    /// changes transcripts, only fetch counts.
    #[test]
    fn shared_worker_olt_does_not_change_transcripts() {
        let (lex, am, lm) = setup();
        let ua = utt(&lex, &[3, 9, 17], 5);
        let ub = utt(&lex, &[7, 11, 4], 8);
        let base = DecodeConfig::builder()
            .olt_entries(512)
            .build()
            .expect("valid config");
        let dec = OtfDecoder::new(base);
        let alone_a = dec.decode(&*am, &*lm, &ua.scores, &mut NullSink);
        let alone_b = dec.decode(&*am, &*lm, &ub.scores, &mut NullSink);

        let config = ServeConfig {
            quantum_frames: 4,
            olt_entries: 512,
            base,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let a = core.open(0).unwrap();
        let b = core.open(0).unwrap();
        push_all(&mut core, a, &ua, 0);
        push_all(&mut core, b, &ub, 0);
        core.finish(a, 0).unwrap();
        core.finish(b, 0).unwrap();
        let mut work = WorkScratch::new();
        work.configure_olt(512);
        while core.step(&mut work, 0).is_some() {}
        let ra = core.take_result(a).unwrap().unwrap();
        let rb = core.take_result(b).unwrap().unwrap();
        assert_eq!(ra.words, alone_a.words);
        assert_eq!(ra.cost.to_bits(), alone_a.cost.to_bits());
        assert_eq!(rb.words, alone_b.words);
        assert_eq!(rb.cost.to_bits(), alone_b.cost.to_bits());
    }

    #[test]
    fn admission_degrades_then_rejects_and_admitted_sessions_complete() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9], 1);
        let config = ServeConfig {
            capacity: 4,
            quantum_frames: 16,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        // Slots fill: pressure at each open is slots-already-taken / 4.
        let s1 = core.open(0).unwrap(); // 0.00 -> full beams
        let s2 = core.open(0).unwrap(); // 0.25 -> full beams
        let s3 = core.open(0).unwrap(); // 0.50 -> full beams
        let s4 = core.open(0).unwrap(); // 0.75 -> degraded
        assert_eq!(core.view(s1).unwrap().degrade_level, 0);
        assert_eq!(core.view(s3).unwrap().degrade_level, 0);
        assert!(core.view(s4).unwrap().degrade_level >= 1, "degrades first");
        // Then sheds: the table is full.
        assert_eq!(core.open(0), Err(RejectReason::AtCapacity));
        let stats = core.stats();
        assert_eq!(stats.degraded_admissions, 1);
        assert_eq!(stats.rejected_capacity, 1);

        // Every admitted session still completes.
        for id in [s1, s2, s3, s4] {
            push_all(&mut core, id, &u, 0);
            core.finish(id, 0).unwrap();
        }
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        while core.step(&mut work, 0).is_some() {}
        for id in [s1, s2, s3, s4] {
            let res = core.take_result(id).unwrap().expect("completed");
            assert!(!res.words.is_empty());
        }
    }

    #[test]
    fn backlog_bound_rejects_frames_and_new_sessions_memory_stays_bounded() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9, 17], 2);
        let frames = u.scores.num_frames();
        let config = ServeConfig {
            capacity: 8,
            max_backlog_frames: frames + 3,
            session_queue_frames: usize::MAX,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let a = core.open(0).unwrap();
        push_all(&mut core, a, &u, 0);
        // 3 more rows fit, then the overload bound bites.
        for _ in 0..3 {
            core.push_frame(a, u.scores.frame(0), 0).unwrap();
        }
        assert_eq!(
            core.push_frame(a, u.scores.frame(0), 0),
            Err(ServeError::Rejected(RejectReason::Overloaded))
        );
        // New sessions are shed under the same signal.
        assert_eq!(core.open(0), Err(RejectReason::Overloaded));
        assert!(core.pressure() >= 1.0);
        let stats = core.stats();
        assert_eq!(stats.frames_rejected, 1);
        assert_eq!(stats.rejected_overload, 1);
        assert_eq!(core.backlog_frames(), frames + 3);

        // Draining frees the backlog; the admitted session completes.
        core.finish(a, 0).unwrap();
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        while core.step(&mut work, 0).is_some() {}
        assert_eq!(core.backlog_frames(), 0);
        assert!(core.take_result(a).unwrap().is_some());
        assert!(core.open(1).is_ok(), "admits again once drained");
    }

    #[test]
    fn per_session_queue_bound_rejects_excess_frames() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3], 1);
        let config = ServeConfig {
            session_queue_frames: 2,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        core.push_frame(id, u.scores.frame(0), 0).unwrap();
        core.push_frame(id, u.scores.frame(1), 0).unwrap();
        assert_eq!(
            core.push_frame(id, u.scores.frame(2), 0),
            Err(ServeError::QueueFull(id))
        );
        assert_eq!(core.stats().frames_rejected, 1);
    }

    /// Satellite: an abandoned session is evicted mid-utterance — the
    /// client pushed audio, the server decoded it, the client vanished.
    #[test]
    fn idle_session_is_evicted_mid_utterance() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9, 17], 5);
        let config = ServeConfig {
            idle_timeout_ms: 1_000,
            quantum_frames: 64,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        for t in 0..u.scores.num_frames() / 2 {
            core.push_frame(id, u.scores.frame(t), 0).unwrap();
        }
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        while core.step(&mut work, 0).is_some() {}
        assert!(core.view(id).unwrap().frames_decoded > 0, "mid-utterance");

        // Decode progress does not count as client activity.
        assert!(core.evict_idle(999).is_empty());
        assert_eq!(core.evict_idle(1_000), vec![id]);
        assert_eq!(core.stats().evicted_idle, 1);
        assert_eq!(core.active_sessions(), 0);
        assert_eq!(core.backlog_frames(), 0);
        assert_eq!(
            core.push_frame(id, u.scores.frame(0), 1_001),
            Err(ServeError::UnknownSession(id))
        );
        assert_eq!(core.take_result(id), Err(ServeError::UnknownSession(id)));
        // A session with *queued* audio but a silent client is shed too.
        let id2 = core.open(2_000).unwrap();
        core.push_frame(id2, u.scores.frame(0), 2_000).unwrap();
        assert_eq!(core.evict_idle(3_000), vec![id2]);
        assert_eq!(core.backlog_frames(), 0);
    }

    /// Satellite: `finish()` after zero frames still produces a result
    /// (the seed-then-finalize path), not a hang or a panic.
    #[test]
    fn finish_after_zero_frames_closes_cleanly() {
        let (_lex, am, lm) = setup();
        let config = ServeConfig {
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        core.finish(id, 0).unwrap();
        assert_eq!(core.view(id).unwrap().phase, SessionPhase::Finishing);
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        assert_eq!(core.step(&mut work, 0), Some(id));
        assert_eq!(core.view(id).unwrap().phase, SessionPhase::Closed);
        let res = core.take_result(id).unwrap().expect("result ready");
        assert!(res.words.is_empty());
        assert_eq!(res.stats.frames, 0);
        // Frames after finish are refused.
        let id2 = core.open(0).unwrap();
        core.finish(id2, 0).unwrap();
        assert_eq!(
            core.push_frame(id2, &[0.0; 4], 0),
            Err(ServeError::Finished(id2))
        );
    }

    #[test]
    fn late_quantum_counts_a_deadline_miss() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3], 1);
        let config = ServeConfig {
            deadline_ms: 10,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        core.push_frame(id, u.scores.frame(0), 0).unwrap();
        let a = core.am();
        let mut work = WorkScratch::new();
        work.configure_olt(0);

        // On time: armed at t=0, completed at t=10 exactly.
        let mut lease = core.lease_next(5).expect("ready");
        lease.run(&*a, &mut work, &mut NullSink);
        core.complete_lease(lease, 10);
        assert_eq!(core.stats().deadline_misses, 0);

        // Late: completed past deadline.
        core.push_frame(id, u.scores.frame(1), 20).unwrap();
        let mut lease = core.lease_next(20).expect("ready");
        lease.run(&*a, &mut work, &mut NullSink);
        core.complete_lease(lease, 31);
        assert_eq!(core.stats().deadline_misses, 1);
    }

    #[test]
    fn collecting_a_result_frees_the_slot() {
        let (_lex, am, lm) = setup();
        let config = ServeConfig {
            capacity: 1,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        core.finish(id, 0).unwrap();
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        core.step(&mut work, 0);
        // Closed-but-uncollected still occupies the slot...
        assert_eq!(core.open(0), Err(RejectReason::AtCapacity));
        // ...until collected.
        core.take_result(id).unwrap().unwrap();
        assert!(core.open(0).is_ok());
    }

    #[test]
    fn stable_partial_is_served_while_leased() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9, 17], 5);
        let config = ServeConfig {
            quantum_frames: 8,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        push_all(&mut core, id, &u, 0);
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        core.step(&mut work, 0);
        let parked = core.stable_partial(id).unwrap();
        let lease = core.lease_next(0).expect("more quanta pending");
        // While the state is out with a "worker", the cached prefix is
        // served rather than panicking or blocking.
        assert_eq!(core.stable_partial(id).unwrap(), parked);
        core.complete_lease(lease, 0);
    }

    /// A second LM over the same 50-word vocabulary, trained on a
    /// differently-seeded corpus — a realistic "domain variant".
    fn alt_lm() -> Arc<Wfst> {
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(17), 50, DiscountConfig::default());
        Arc::new(lm_to_wfst(&model))
    }

    /// The registry acceptance test: sessions pinned to *different* LMs
    /// interleave through one scheduler (and one worker scratch) and
    /// each stays bit-identical — words, cost bits, and full search
    /// statistics — to a standalone decode against its own LM.
    #[test]
    fn interleaved_sessions_on_two_lms_match_standalone_per_lm_decodes() {
        let (lex, am, lm_a) = setup();
        let lm_b = alt_lm();
        assert_ne!(Arc::as_ptr(&lm_a), Arc::as_ptr(&lm_b));
        let word_seqs: [&[u32]; 4] = [&[3, 9, 17], &[7, 11, 4], &[22, 5], &[14, 30, 8]];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| utt(&lex, w, 5 + i as u64))
            .collect();
        let base = DecodeConfig::default();
        assert_eq!(base.olt_entries, 0); // full-stats identity
        let pick = |i: usize| if i.is_multiple_of(2) { &lm_a } else { &lm_b };
        let standalone: Vec<_> = utts
            .iter()
            .enumerate()
            .map(|(i, u)| OtfDecoder::new(base).decode(&*am, &**pick(i), &u.scores, &mut NullSink))
            .collect();

        let config = ServeConfig {
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let mut core = ServeCore::new_multi(
            config,
            Arc::clone(&am),
            vec![
                ("default".to_string(), Arc::clone(&lm_a)),
                ("alt".to_string(), Arc::clone(&lm_b)),
            ],
        );
        assert_eq!(core.lm_names(), vec!["default", "alt"]);
        let ids: Vec<SessionId> = (0..4)
            .map(|i| {
                let name = if i % 2 == 0 { None } else { Some("alt") };
                core.open_with_lm(name, 0).expect("admit")
            })
            .collect();
        for (id, u) in ids.iter().zip(&utts) {
            push_all(&mut core, *id, u, 0);
            core.finish(*id, 0).expect("finish");
        }
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        let mut order = Vec::new();
        while let Some(id) = core.step(&mut work, 0) {
            order.push(id);
        }
        let mut first4 = order[..4].to_vec();
        first4.sort_unstable();
        first4.dedup();
        assert_eq!(first4.len(), 4, "sessions genuinely interleave");
        for ((id, u), alone) in ids.iter().zip(&utts).zip(&standalone) {
            let served = core.take_result(*id).expect("known").expect("closed");
            assert_eq!(served.words, alone.words, "utt {:?}", u.words);
            assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(served.stats, alone.stats);
        }
        // The two models really disagree somewhere, or the test proves
        // nothing about per-session selection.
        let a_alone = OtfDecoder::new(base).decode(&*am, &*lm_a, &utts[1].scores, &mut NullSink);
        let b_alone = OtfDecoder::new(base).decode(&*am, &*lm_b, &utts[1].scores, &mut NullSink);
        assert_ne!(
            a_alone.cost.to_bits(),
            b_alone.cost.to_bits(),
            "variant LM must actually change the search"
        );
    }

    /// A worker OLT shared across sessions on different LMs: the memo
    /// resets on each model switch (offsets are per-LM), so transcripts
    /// still match standalone decodes.
    #[test]
    fn shared_olt_across_different_lms_does_not_corrupt_transcripts() {
        let (lex, am, lm_a) = setup();
        let lm_b = alt_lm();
        let ua = utt(&lex, &[3, 9, 17], 5);
        let ub = utt(&lex, &[7, 11, 4], 8);
        let base = DecodeConfig::builder()
            .olt_entries(512)
            .build()
            .expect("valid config");
        let alone_a = OtfDecoder::new(base).decode(&*am, &*lm_a, &ua.scores, &mut NullSink);
        let alone_b = OtfDecoder::new(base).decode(&*am, &*lm_b, &ub.scores, &mut NullSink);

        let config = ServeConfig {
            quantum_frames: 4,
            olt_entries: 512,
            base,
            ..Default::default()
        };
        let mut core = ServeCore::new_multi(
            config,
            Arc::clone(&am),
            vec![
                ("default".to_string(), Arc::clone(&lm_a)),
                ("alt".to_string(), Arc::clone(&lm_b)),
            ],
        );
        let a = core.open_with_lm(None, 0).unwrap();
        let b = core.open_with_lm(Some("alt"), 0).unwrap();
        push_all(&mut core, a, &ua, 0);
        push_all(&mut core, b, &ub, 0);
        core.finish(a, 0).unwrap();
        core.finish(b, 0).unwrap();
        let mut work = WorkScratch::new();
        work.configure_olt(512);
        while core.step(&mut work, 0).is_some() {}
        let ra = core.take_result(a).unwrap().unwrap();
        let rb = core.take_result(b).unwrap().unwrap();
        assert_eq!(ra.words, alone_a.words);
        assert_eq!(ra.cost.to_bits(), alone_a.cost.to_bits());
        assert_eq!(rb.words, alone_b.words);
        assert_eq!(rb.cost.to_bits(), alone_b.cost.to_bits());
    }

    /// Hot registry mutation: models are added and retired while a
    /// session pinned to the retired model is mid-utterance, and that
    /// session still completes bit-identically.
    #[test]
    fn hot_add_and_retire_never_disturb_live_sessions() {
        let (lex, am, lm_a) = setup();
        let lm_b = alt_lm();
        let u = utt(&lex, &[3, 9, 17], 5);
        let base = DecodeConfig::default();
        let alone = OtfDecoder::new(base).decode(&*am, &*lm_a, &u.scores, &mut NullSink);

        let config = ServeConfig {
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm_a, config);
        assert_eq!(core.lm_names(), vec![DEFAULT_LM]);
        // Retiring the only LM is refused.
        assert_eq!(
            core.retire_lm(DEFAULT_LM).err(),
            Some(ServeError::LastModel(DEFAULT_LM.to_string()))
        );

        // Session opens against "default", streams half its audio...
        let id = core.open(0).unwrap();
        let half = u.scores.num_frames() / 2;
        for t in 0..half {
            core.push_frame(id, u.scores.frame(t), 0).unwrap();
        }
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        while core.step(&mut work, 0).is_some() {}

        // ...then the registry churns underneath it.
        assert!(core.add_lm("alt", Arc::clone(&lm_b)).is_none());
        let retired = core.retire_lm(DEFAULT_LM).expect("two models now");
        assert!(Arc::ptr_eq(&retired, &lm_a));
        assert_eq!(core.lm_names(), vec!["alt"]);
        assert_eq!(
            core.open_with_lm(Some(DEFAULT_LM), 1),
            Err(ServeError::UnknownModel(DEFAULT_LM.to_string()))
        );
        // `open` now admits against the new default ("alt").
        let id2 = core.open(1).unwrap();
        assert!(Arc::ptr_eq(&core.sessions[&id2].lm, &lm_b));

        // The live session finishes the utterance on its pinned model.
        for t in half..u.scores.num_frames() {
            core.push_frame(id, u.scores.frame(t), 1).unwrap();
        }
        core.finish(id, 1).unwrap();
        while core.step(&mut work, 1).is_some() {}
        let served = core.take_result(id).unwrap().expect("closed");
        assert_eq!(served.words, alone.words);
        assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
        assert_eq!(served.stats, alone.stats);

        // Replacing an entry hands back the old handle (hot swap).
        let swapped = core.add_lm("alt", Arc::clone(&lm_a)).expect("replaced");
        assert!(Arc::ptr_eq(&swapped, &lm_b));
        assert_eq!(core.lm_names(), vec!["alt"]);
    }

    /// Registry generation stamps are never reused: a model added
    /// after a retire — even under the same name, even if the
    /// allocator hands it the retired model's heap address — carries a
    /// fresh stamp, so a worker scratch's OLT memo keyed by the old
    /// stamp can never be revived for the new model (the ABA that a
    /// pointer-keyed binding is vulnerable to).
    #[test]
    fn registry_generations_are_unique_across_retire_and_add() {
        let (_lex, am, lm_a) = setup();
        let lm_b = alt_lm();
        let mut core = core_with(&am, &lm_a, ServeConfig::default());
        let gen0 = core.lm_entry(None).unwrap().gen;

        // Hot swap under the same name: new stamp.
        core.add_lm(DEFAULT_LM, Arc::clone(&lm_b));
        let gen1 = core.lm_entry(None).unwrap().gen;
        assert_ne!(gen0, gen1, "hot swap must change the generation");

        // Retire, then re-add under the same name: yet another stamp,
        // and sessions opened before/after the swap carry the stamp of
        // the model they were admitted with.
        let before = core.open(0).unwrap();
        core.add_lm("tmp", Arc::clone(&lm_a));
        core.retire_lm(DEFAULT_LM).unwrap();
        core.add_lm(DEFAULT_LM, Arc::clone(&lm_a));
        let gen2 = core.lm_entry(Some(DEFAULT_LM)).unwrap().gen;
        assert!(gen2 > gen1);
        let after = core.open_with_lm(Some(DEFAULT_LM), 0).unwrap();
        assert_eq!(core.sessions[&before].lm_gen, gen1);
        assert_eq!(core.sessions[&after].lm_gen, gen2);
        assert_ne!(core.sessions[&before].lm_gen, core.sessions[&after].lm_gen);
    }

    #[test]
    fn open_with_unknown_model_consumes_nothing() {
        let (_lex, am, lm) = setup();
        let mut core = core_with(&am, &lm, ServeConfig::default());
        assert_eq!(
            core.open_with_lm(Some("nope"), 0),
            Err(ServeError::UnknownModel("nope".to_string()))
        );
        assert_eq!(core.active_sessions(), 0);
        assert_eq!(core.stats().opened, 0);
        assert_eq!(core.stats().rejected_capacity, 0);
    }

    #[test]
    fn obs_export_is_a_parseable_run_record() {
        let (_lex, am, lm) = setup();
        let mut core = core_with(&am, &lm, ServeConfig::default());
        let id = core.open(0).unwrap();
        core.finish(id, 0).unwrap();
        let mut work = WorkScratch::new();
        work.configure_olt(core.config().olt_entries);
        while core.step(&mut work, 0).is_some() {}
        let jsonl = core.obs_jsonl();
        let rec = ObsRecord::parse_line(jsonl.trim()).expect("valid obs record");
        let ObsRecord::Run(pairs) = rec else {
            panic!("expected a run record");
        };
        let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("serve.sessions_opened"), Some(1.0));
        assert_eq!(get("serve.finals"), Some(1.0));
        // Load is a distribution over the run now, not a shutdown-time
        // gauge: this run peaked at one live session.
        assert_eq!(get("serve.active_sessions.max"), Some(1.0));
        assert!(get("serve.active_sessions.count").unwrap() >= 2.0);
        assert!(get("serve.pressure_milli.count").is_some());
        assert_eq!(get("serve.frames_inflight"), Some(0.0));
        assert!(get("serve.lease_frames.count").is_some());
        assert!(get("serve.lease_decode_us.count").is_some());
        assert!(core.obs_markdown().contains("serve.quanta"));
    }

    /// Acceptance: a forced deadline miss pins a flight-recorder dump
    /// whose *last* event is the missed lease with negative slack.
    #[test]
    fn deadline_miss_freezes_a_flight_dump_ending_with_negative_slack() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9], 1);
        let config = ServeConfig {
            deadline_ms: 10,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        core.push_frame(id, u.scores.frame(0), 0).unwrap();
        let a = core.am();
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        assert!(core.flight_frozen().is_none(), "clean so far");

        // The quantum dispatches at t=5 but completes at t=25, 15 ms
        // past its t=10 deadline.
        let mut lease = core.lease_next(5).expect("ready");
        lease.run(&*a, &mut work, &mut NullSink);
        core.complete_lease(lease, 25);

        let (reason, dump) = core.flight_frozen().expect("miss pinned a dump");
        assert_eq!(reason, "deadline_miss");
        let events: Vec<unfold_obs::FlightEvent> = dump
            .lines()
            .map(|l| match ObsRecord::parse_line(l).unwrap() {
                ObsRecord::Flight(e) => e,
                other => panic!("expected flight events, got {other:?}"),
            })
            .collect();
        // The run up to the anomaly is all there: admit → lease → miss.
        assert!(events.iter().any(|e| e.kind == FlightKind::Admit));
        assert!(events.iter().any(|e| e.kind == FlightKind::Lease));
        let last = events.last().unwrap();
        assert_eq!(last.kind, FlightKind::DeadlineMiss);
        assert_eq!(last.session, id);
        assert_eq!(last.slack_ms, -15.0, "deadline 10, completed 25");
        // The lease-grant event carried its dispatch slack.
        let grant = events.iter().find(|e| e.kind == FlightKind::Lease).unwrap();
        assert_eq!(grant.slack_ms, 5.0, "deadline 10, dispatched 5");
    }

    /// Satellite: span lifecycle. Every opened span closes exactly
    /// once, parents close after (or with) their children, and the
    /// whole span log is byte-identical across two identical runs on
    /// the logical clock.
    #[test]
    fn session_spans_close_once_nest_and_are_deterministic() {
        let run = || {
            let (lex, am, lm) = setup();
            let config = ServeConfig {
                quantum_frames: 8,
                olt_entries: 0,
                ..Default::default()
            };
            let mut core = core_with(&am, &lm, config);
            let utts = [utt(&lex, &[3, 9, 17], 5), utt(&lex, &[7, 11], 8)];
            let ids: Vec<SessionId> = utts.iter().map(|_| core.open(0).unwrap()).collect();
            for (id, u) in ids.iter().zip(&utts) {
                push_all(&mut core, *id, u, 1);
                core.finish(*id, 2).unwrap();
            }
            let mut work = WorkScratch::new();
            work.configure_olt(0);
            let mut t = 3;
            while core.step(&mut work, t).is_some() {
                t += 1;
            }
            for id in &ids {
                core.take_result(*id).unwrap().unwrap();
            }
            let (opened, closed, still_open) = core.span_counts();
            assert_eq!(opened, closed, "every span must close");
            assert_eq!(still_open, 0);
            core.spans_jsonl()
        };
        let jsonl = run();

        let mut seen = std::collections::HashMap::new();
        let mut ids_seen = std::collections::HashSet::new();
        let spans: Vec<unfold_obs::SessionSpan> = jsonl
            .lines()
            .map(|l| match ObsRecord::parse_line(l).unwrap() {
                ObsRecord::SessionSpan(s) => s,
                other => panic!("expected sspan, got {other:?}"),
            })
            .collect();
        for s in &spans {
            assert!(ids_seen.insert(s.id), "span {} closed twice", s.id);
            assert!(s.end_ms >= s.start_ms);
            seen.insert(s.id, (s.start_ms, s.end_ms));
        }
        // Children nest inside their parents: the parent opened no
        // later and (being closed later in the log or carrying a later
        // stamp) ends no earlier.
        for s in &spans {
            if s.parent != 0 {
                let &(p_start, p_end) = seen
                    .get(&s.parent)
                    .expect("parent closed too (and made it into the log)");
                assert!(p_start <= s.start_ms, "parent opens first");
                assert!(p_end >= s.end_ms, "parent closes after children");
            }
        }
        // Stage vocabulary is exactly the documented lifecycle.
        for s in &spans {
            assert!(
                ["session", "sched-wait", "lease"].contains(&s.stage.as_str()),
                "unexpected stage {:?}",
                s.stage
            );
        }
        // Deterministic: an identical run produces an identical log.
        assert_eq!(jsonl, run(), "span export must be deterministic");
    }

    #[test]
    fn abort_lease_frees_the_slot_and_reconciles_frame_accounting() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9, 17], 5);
        let config = ServeConfig {
            quantum_frames: 4,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        let id = core.open(0).unwrap();
        push_all(&mut core, id, &u, 0);
        let accepted = core.stats().frames_accepted;

        // A worker takes a lease and "panics": the lease never comes
        // back, only the abort notification does.
        let lease = core.lease_next(1).expect("ready");
        let (sid, span, lost) = (lease.session(), lease.span_id(), lease.num_frames() as u64);
        drop(lease);
        core.abort_lease(sid, span, lost, 2);

        assert_eq!(core.active_sessions(), 0);
        assert_eq!(core.stats().worker_panics, 1);
        let st = core.stats();
        assert_eq!(
            st.frames_accepted,
            st.frames_decoded + core.backlog_frames() as u64 + st.frames_dropped,
            "accounting reconciles after the panic"
        );
        assert_eq!(st.frames_dropped, accepted, "all queued+leased rows lost");
        let (reason, dump) = core.flight_frozen().expect("panic pinned a dump");
        assert_eq!(reason, "worker_panic");
        assert!(dump.contains("worker_panic"));
        let (opened, closed, still_open) = core.span_counts();
        assert_eq!(opened, closed);
        assert_eq!(still_open, 0);
        // The slot is genuinely free.
        assert!(core.open(3).is_ok());
    }

    #[test]
    fn chrome_trace_export_covers_all_sessions() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9], 5);
        let mut core = core_with(
            &am,
            &lm,
            ServeConfig {
                olt_entries: 0,
                ..Default::default()
            },
        );
        let a = core.open(0).unwrap();
        let b = core.open(0).unwrap();
        for (id, seed) in [(a, &u), (b, &u)] {
            push_all(&mut core, id, seed, 0);
            core.finish(id, 0).unwrap();
        }
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        while core.step(&mut work, 1).is_some() {}
        core.take_result(a).unwrap().unwrap();
        core.take_result(b).unwrap().unwrap();
        let trace = core.spans_chrome_trace();
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        assert!(trace.contains(&format!("\"tid\":{a}")));
        assert!(trace.contains(&format!("\"tid\":{b}")));
        assert!(trace.contains("\"olt_hit_rate\""));
    }

    use unfold_am::GmmModel;
    use unfold_decoder::{DecodeKernel, FrameInput, GmmScorer, PrecomputedScorer, ScoreError};

    fn ingest_all(core: &mut ServeCore<Wfst, Wfst>, id: SessionId, u: &Utterance, now: u64) {
        for t in 0..u.scores.num_frames() {
            core.ingest_frame(id, FrameInput::Scores(u.scores.frame(t).to_vec()), now)
                .expect("ingest");
        }
    }

    /// The tentpole acceptance grid: pipelined decode through the
    /// two-stage core is bit-identical to a standalone lockstep decode
    /// — words, cost bits, and full search statistics — across both
    /// frame kernels, search lags {0, 2, 8}, and {1, 8} concurrent
    /// sessions.
    #[test]
    fn pipelined_core_matches_lockstep_across_kernels_lags_and_sessions() {
        let (lex, am, lm) = setup();
        let word_seqs: [&[u32]; 8] = [
            &[3, 9, 17],
            &[7, 11, 4],
            &[1, 2, 3],
            &[22, 5],
            &[14, 30, 8, 2],
            &[40, 6, 19],
            &[9, 9, 27],
            &[33, 12],
        ];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| utt(&lex, w, 5 + i as u64))
            .collect();
        let width = utts[0].scores.frame(0).len();
        for kernel in [DecodeKernel::Legacy, DecodeKernel::Soa] {
            for lag in [0usize, 2, 8] {
                for sessions in [1usize, 8] {
                    let base = DecodeConfig::builder()
                        .kernel(kernel)
                        .max_search_lag(lag)
                        .scorer_batch(5) // deliberately coprime with the quantum
                        .build()
                        .expect("valid config");
                    let tag = format!("kernel {kernel:?} lag {lag} sessions {sessions}");
                    let standalone: Vec<_> = utts[..sessions]
                        .iter()
                        .map(|u| OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink))
                        .collect();
                    let config = ServeConfig {
                        quantum_frames: 8,
                        scoring_workers: 1,
                        olt_entries: 0,
                        base,
                        ..Default::default()
                    };
                    let mut core = core_with(&am, &lm, config);
                    core.set_scorer(Arc::new(PrecomputedScorer::new(width)));
                    let ids: Vec<SessionId> = (0..sessions)
                        .map(|_| core.open(0).expect("admit"))
                        .collect();
                    for (id, u) in ids.iter().zip(&utts) {
                        ingest_all(&mut core, *id, u, 0);
                        core.finish(*id, 0).expect("finish");
                    }
                    let mut work = WorkScratch::new();
                    work.configure_olt(0);
                    while core.step_pipelined(&mut work, 0).is_some() {}
                    for ((id, u), alone) in ids.iter().zip(&utts).zip(&standalone) {
                        let served = core.take_result(*id).expect("known").expect("closed");
                        assert_eq!(served.words, alone.words, "{tag} utt {:?}", u.words);
                        assert_eq!(served.cost.to_bits(), alone.cost.to_bits(), "{tag}");
                        assert_eq!(served.stats, alone.stats, "{tag}");
                    }
                    let st = core.stats();
                    assert_eq!(st.frames_scored, st.frames_accepted, "{tag}");
                    assert!(st.score_batches > 0, "{tag}");
                    assert_eq!(st.frames_accepted, st.frames_decoded, "{tag}");
                    assert_eq!(core.backlog_frames(), 0, "{tag}");
                }
            }
        }
    }

    /// Satellite: the per-session bound covers raw + scored together,
    /// so backpressure engages no matter where frames sit in the
    /// pipeline — and both ingest surfaces feed the same bound.
    #[test]
    fn pipelined_queue_bound_counts_raw_and_scored_together() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9], 1);
        let width = u.scores.frame(0).len();
        let config = ServeConfig {
            session_queue_frames: 2,
            scoring_workers: 1,
            olt_entries: 0,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        core.set_scorer(Arc::new(PrecomputedScorer::new(width)));
        let id = core.open(0).unwrap();
        core.ingest_frame(id, FrameInput::Scores(u.scores.frame(0).to_vec()), 0)
            .unwrap();
        // The legacy surface routes into the same raw queue.
        core.push_frame(id, u.scores.frame(1), 0).unwrap();
        let v = core.view(id).unwrap();
        assert_eq!((v.queued_raw, v.queued_scored, v.queued), (2, 0, 2));
        assert_eq!(
            core.ingest_frame(id, FrameInput::Scores(u.scores.frame(2).to_vec()), 0),
            Err(ServeError::QueueFull(id))
        );
        // Scoring moves frames across the stage boundary; the combined
        // bound still holds.
        let sl = core.lease_score_batch(0).expect("scoreable");
        let rows = sl.run(core.scorer().as_deref());
        core.complete_score_batch(sl, rows, 0);
        let v = core.view(id).unwrap();
        assert_eq!((v.queued_raw, v.queued_scored), (0, 2));
        assert_eq!(
            core.push_frame(id, u.scores.frame(2), 0),
            Err(ServeError::QueueFull(id))
        );
        assert_eq!(core.stats().frames_rejected, 2);
        // The session still completes cleanly.
        core.finish(id, 0).unwrap();
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        while core.step_pipelined(&mut work, 0).is_some() {}
        assert!(core.take_result(id).unwrap().is_some());
    }

    /// Satellite: a full scored queue parks the session (a
    /// `scoring_stalls` tick) instead of spinning or overfilling, and
    /// search draining a slot resumes scoring — the bounded-lag
    /// backpressure loop.
    #[test]
    fn full_scored_queue_stalls_scoring_until_search_drains() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9, 17], 5);
        let width = u.scores.frame(0).len();
        let base = DecodeConfig::builder()
            .max_search_lag(1)
            .scorer_batch(4)
            .build()
            .expect("valid config");
        let alone = OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink);
        let config = ServeConfig {
            quantum_frames: 1,
            scoring_workers: 1,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        core.set_scorer(Arc::new(PrecomputedScorer::new(width)));
        let id = core.open(0).unwrap();
        ingest_all(&mut core, id, &u, 0);
        core.finish(id, 0).unwrap();

        // Lag 1: the first batch can stage exactly one frame…
        let sl = core.lease_score_batch(0).expect("scoreable");
        assert_eq!(sl.num_frames(), 1, "lag bound caps the batch");
        let rows = sl.run(core.scorer().as_deref());
        core.complete_score_batch(sl, rows, 0);
        // …after which the scored queue is full and scoring stalls.
        assert!(core.lease_score_batch(0).is_none());
        assert_eq!(core.stats().scoring_stalls, 1);
        // One search quantum frees the slot and un-parks the session.
        let mut work = WorkScratch::new();
        work.configure_olt(0);
        assert_eq!(core.step(&mut work, 0), Some(id));
        let resumed = core.lease_score_batch(0).expect("un-parked after drain");
        assert_eq!(resumed.num_frames(), 1);
        let rows = resumed.run(core.scorer().as_deref());
        core.complete_score_batch(resumed, rows, 0);
        // Drain everything and pin bit-identity through the stall.
        while core.step_pipelined(&mut work, 0).is_some() {}
        let served = core.take_result(id).unwrap().expect("closed");
        assert_eq!(served.words, alone.words);
        assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
        assert!(core.stats().scoring_stalls >= 1);
    }

    /// Satellite: a worker panic mid-stream with frames in *both*
    /// stages — an outstanding scoring batch and a search lease — frees
    /// the slot, drains the scoring queue, and the frame ledger still
    /// reconciles exactly.
    #[test]
    fn mid_stream_abort_drains_the_scoring_queue_and_reconciles() {
        let (lex, am, lm) = setup();
        let u = utt(&lex, &[3, 9, 17], 5);
        let width = u.scores.frame(0).len();
        let base = DecodeConfig::builder()
            .max_search_lag(4)
            .scorer_batch(2)
            .build()
            .expect("valid config");
        let config = ServeConfig {
            quantum_frames: 2,
            scoring_workers: 1,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let mut core = core_with(&am, &lm, config);
        core.set_scorer(Arc::new(PrecomputedScorer::new(width)));
        let id = core.open(0).unwrap();
        ingest_all(&mut core, id, &u, 0);
        let accepted = core.stats().frames_accepted;

        // Stage one batch into the scored queue…
        let sl = core.lease_score_batch(0).expect("scoreable");
        let rows = sl.run(core.scorer().as_deref());
        core.complete_score_batch(sl, rows, 0);
        // …leave a second batch *outstanding* with a scoring worker…
        let outstanding = core.lease_score_batch(0).expect("more raw frames");
        // …and lose the search worker mid-quantum.
        let lease = core.lease_next(0).expect("scored rows ready");
        let (sid, span, lost) = (lease.session(), lease.span_id(), lease.num_frames() as u64);
        drop(lease);
        core.abort_lease(sid, span, lost, 1);
        assert_eq!(core.active_sessions(), 0);

        // The in-flight scoring batch comes home to a dead session: its
        // rows are dropped, not leaked and not crashed on.
        let rows = outstanding.run(core.scorer().as_deref());
        core.complete_score_batch(outstanding, rows, 1);
        assert!(core.lease_score_batch(2).is_none(), "nothing left to score");
        assert_eq!(core.backlog_frames(), 0);
        let st = core.stats();
        assert_eq!(st.frames_decoded, 0);
        assert_eq!(
            st.frames_accepted, st.frames_dropped,
            "every accepted frame is accounted dropped"
        );
        assert_eq!(st.frames_accepted, accepted);
        // The slot is genuinely free.
        assert!(core.open(3).is_ok());
    }

    /// Satellite: feature frames flow through the unified ingest in
    /// both modes — scored inline at ingest (lockstep) or by the
    /// scoring stage (pipelined) — and produce bit-identical
    /// transcripts; without a scorer they are refused with a typed
    /// error, not a panic.
    #[test]
    fn feature_frames_decode_identically_in_lockstep_and_pipelined_modes() {
        let (lex, am, lm) = setup();
        let width = utt(&lex, &[3], 1).scores.frame(0).len();
        let model = Arc::new(GmmModel::synthesize(width, 8, 2, 3.0, 41));
        let frames: Vec<FrameInput> = (0..30)
            .map(|t| {
                FrameInput::Features(
                    (0..8)
                        .map(|d| ((t * 31 + d * 7) % 13) as f32 * 0.25 - 1.5)
                        .collect(),
                )
            })
            .collect();
        let mut results = Vec::new();
        for scoring_workers in [0usize, 1] {
            let config = ServeConfig {
                scoring_workers,
                olt_entries: 0,
                ..Default::default()
            };
            let mut core = core_with(&am, &lm, config);
            core.set_scorer(Arc::new(GmmScorer::new(Arc::clone(&model))));
            let id = core.open(0).unwrap();
            for f in &frames {
                core.ingest_frame(id, f.clone(), 0).unwrap();
            }
            core.finish(id, 0).unwrap();
            let mut work = WorkScratch::new();
            work.configure_olt(0);
            while core.step_pipelined(&mut work, 0).is_some() {}
            let st = core.stats();
            assert_eq!(st.frames_scored, frames.len() as u64, "all scorer-scored");
            results.push(core.take_result(id).unwrap().expect("closed"));
        }
        assert_eq!(results[0].words, results[1].words);
        assert_eq!(results[0].cost.to_bits(), results[1].cost.to_bits());
        assert_eq!(results[0].stats, results[1].stats);

        // No scorer bound: features are a typed refusal.
        let mut bare = core_with(&am, &lm, ServeConfig::default());
        let id = bare.open(0).unwrap();
        assert_eq!(
            bare.ingest_frame(id, FrameInput::Features(vec![0.0]), 0),
            Err(ServeError::Score(id, ScoreError::FeaturesUnsupported))
        );
        assert_eq!(bare.view(id).unwrap().queued, 0, "refused frame not queued");
    }
}
