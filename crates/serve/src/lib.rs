#![warn(missing_docs)]

//! Multi-session streaming decode server for the UNFOLD reproduction.
//!
//! The paper's SoC decodes one utterance at a time; a deployed
//! recognizer front-ends *many* concurrent audio streams against one
//! shared AM and a registry of named LMs (clients pick a model per
//! session; models can be added and retired live). This crate supplies
//! that serving layer, pure `std` and thread-based (no async runtime),
//! in layers that peel apart for testing:
//!
//! * [`ServeCore`] — the deterministic heart: a session table plus a
//!   deadline-ordered ready queue, driven manually with an explicit
//!   logical clock (`now_ms`). Every scheduling decision is testable
//!   without threads or sleeps.
//! * [`Server`] / [`ServeHandle`] — a worker pool (`std::thread`)
//!   around the core: each worker owns one [`WorkScratch`] (and thus
//!   one software OLT) for its whole life, leases a session quantum
//!   under the lock, and decodes outside it.
//! * [`tcp`] — a length-prefixed TCP front end over `std::net`, one
//!   session per connection.
//! * [`loadgen`] — a closed-loop load generator measuring
//!   first-partial and final-result latency percentiles (captured in
//!   µs), with an optional live-stats scraper that cross-checks the
//!   server's frame ledger mid-run.
//!
//! The core is also instrumented end to end: every session carries a
//! lifecycle span tree (`session` → `sched-wait`/`lease`) on the
//! logical clock, a bounded flight recorder pins a JSONL dump of the
//! scheduler events leading up to the first deadline miss, overload
//! reject, or worker panic, and workers feed a lock-free decode-latency
//! histogram. All of it is readable live over the wire (`Stats` /
//! `Dump`) and none of it touches the search.
//!
//! Sessions are [`unfold_decoder::StreamSession`]s: they hold *only*
//! per-utterance search state, so any worker can advance any session
//! and transcripts stay **bit-identical** to a standalone
//! [`unfold_decoder::OtfDecoder::decode`] of the same audio — the
//! property the scheduler tests pin down.
//!
//! [`WorkScratch`]: unfold_decoder::WorkScratch

pub mod loadgen;
pub mod sched;
pub mod server;
pub mod session;
pub mod tcp;
pub mod wire;

pub use loadgen::{
    run_bias_compare, run_loadgen, run_saturation_sweep, saturation_ladder, sweep_knee,
    BiasCompare, KneePoint, LatencyMs, LoadgenConfig, LoadgenReport, PipelineCompare,
    SaturationPoint,
};
pub use sched::{Lease, ScoreLease, ServeCore, ServeStats, DEFAULT_LM};
pub use server::{BoundSession, ServeHandle, Server};
pub use session::{SessionId, SessionPhase, SessionView};
pub use tcp::TcpFront;
pub use wire::{ClientMsg, ServerMsg};

// The decoder's unified frame-ingest vocabulary, re-exported so serve
// callers need not depend on `unfold-decoder` directly.
pub use unfold_decoder::{AcousticScorer, FrameInput, ScoreError, SessionIngest};

use unfold_decoder::DecodeConfig;

/// Pressure at which new sessions are admitted with tightened beams
/// (degradation level 1).
pub const DEGRADE_SOFT: f64 = 0.6;

/// Pressure at which new sessions get the tightest beams (degradation
/// level 2). Admission is refused outright only when capacity or the
/// backlog bound is actually exhausted.
pub const DEGRADE_HARD: f64 = 0.85;

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum concurrent sessions (table slots). Admission beyond this
    /// is refused with [`RejectReason::AtCapacity`].
    pub capacity: usize,
    /// Worker threads in the threaded [`Server`] (min 1). With the
    /// pipeline enabled these run the *search* stage only.
    pub workers: usize,
    /// Scoring-stage worker threads. 0 (the default) disables the
    /// two-stage pipeline: frames are scored inline at ingest and the
    /// server behaves exactly as before. Non-zero splits workers into
    /// scoring and search roles: ingest lands frames in per-session
    /// raw queues, scoring workers batch them (across sessions, up to
    /// [`DecodeConfig::scorer_batch`] frames per call) through the
    /// server's [`unfold_decoder::AcousticScorer`], and search
    /// consumes the scored rows at most
    /// [`DecodeConfig::max_search_lag`] frames behind.
    pub scoring_workers: usize,
    /// Frames a worker decodes per lease before requeueing the session
    /// — the scheduling quantum.
    pub quantum_frames: usize,
    /// Service deadline per quantum: a session with pending work should
    /// get a decode slice within this budget; later completions count
    /// as deadline misses.
    pub deadline_ms: u64,
    /// Sessions with no client activity for this long are evicted.
    pub idle_timeout_ms: u64,
    /// Per-session bound on queued (undecoded) frames.
    pub session_queue_frames: usize,
    /// Server-wide bound on queued frames; beyond it both new sessions
    /// and new frames are refused with [`RejectReason::Overloaded`].
    pub max_backlog_frames: usize,
    /// Per-worker software-OLT capacity (entries, 0 disables). The OLT
    /// memoizes LM lookups against the shared LM, so sharing one table
    /// across the sessions a worker serves never changes transcripts.
    pub olt_entries: usize,
    /// Beam configuration for sessions admitted at low pressure; the
    /// degradation ladder tightens it as pressure rises.
    pub base: DecodeConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacity: 32,
            workers: 2,
            scoring_workers: 0,
            quantum_frames: 16,
            deadline_ms: 500,
            idle_timeout_ms: 10_000,
            session_queue_frames: 512,
            max_backlog_frames: 4_096,
            olt_entries: 1_024,
            base: DecodeConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Load signal in `[0, ∞)`: the worse of session-slot utilization
    /// and backlog utilization. `1.0` means a bound is exhausted.
    pub fn pressure(&self, active_sessions: usize, backlog_frames: usize) -> f64 {
        let slots = active_sessions as f64 / self.capacity.max(1) as f64;
        let backlog = backlog_frames as f64 / self.max_backlog_frames.max(1) as f64;
        slots.max(backlog)
    }

    /// The degradation ladder: the [`DecodeConfig`] a session admitted
    /// at `pressure` decodes under, plus the ladder level (0 = full
    /// beams, 1 = tightened, 2 = tightest). Degradation applies to
    /// *new* sessions only — already-admitted sessions keep the beams
    /// they were promised.
    pub fn admission_config(&self, pressure: f64) -> (DecodeConfig, u8) {
        let mut cfg = self.base;
        if pressure >= DEGRADE_HARD {
            cfg.beam = self.base.beam * 0.5;
            cfg.max_active = (self.base.max_active / 4).max(1);
            (cfg, 2)
        } else if pressure >= DEGRADE_SOFT {
            cfg.beam = self.base.beam * 0.75;
            cfg.max_active = (self.base.max_active / 2).max(1);
            (cfg, 1)
        } else {
            (cfg, 0)
        }
    }
}

/// Why a session or frame was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// All session slots are occupied.
    AtCapacity,
    /// The server-wide frame backlog bound is exhausted.
    Overloaded,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::AtCapacity => write!(f, "at capacity"),
            RejectReason::Overloaded => write!(f, "overloaded"),
        }
    }
}

/// Errors surfaced by session operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No such session (never existed, already collected, or evicted).
    UnknownSession(SessionId),
    /// Admission control refused the request.
    Rejected(RejectReason),
    /// The per-session frame queue is full; the frame was dropped.
    QueueFull(SessionId),
    /// The session already finished; it accepts no more frames.
    Finished(SessionId),
    /// No LM is registered under this name.
    UnknownModel(String),
    /// The last registered LM cannot be retired — a server always has a
    /// default model.
    LastModel(String),
    /// The acoustic scorer refused a frame (wrong width, or features
    /// pushed at a server with no acoustic frontend).
    Score(SessionId, unfold_decoder::ScoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::QueueFull(id) => write!(f, "session {id}: frame queue full"),
            ServeError::Finished(id) => write!(f, "session {id}: already finished"),
            ServeError::UnknownModel(name) => write!(f, "unknown model '{name}'"),
            ServeError::LastModel(name) => {
                write!(f, "cannot retire '{name}': it is the last registered LM")
            }
            ServeError::Score(id, e) => write!(f, "session {id}: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_is_the_worse_of_slots_and_backlog() {
        let cfg = ServeConfig {
            capacity: 10,
            max_backlog_frames: 100,
            ..Default::default()
        };
        assert_eq!(cfg.pressure(0, 0), 0.0);
        assert_eq!(cfg.pressure(5, 0), 0.5);
        assert_eq!(cfg.pressure(0, 90), 0.9);
        assert_eq!(cfg.pressure(5, 90), 0.9);
        assert_eq!(cfg.pressure(10, 0), 1.0);
    }

    #[test]
    fn degradation_ladder_tightens_then_holds() {
        let cfg = ServeConfig::default();
        let (full, l0) = cfg.admission_config(0.0);
        assert_eq!(l0, 0);
        assert_eq!(full, cfg.base);

        let (soft, l1) = cfg.admission_config(DEGRADE_SOFT);
        assert_eq!(l1, 1);
        assert!(soft.beam < full.beam);
        assert!(soft.max_active < full.max_active);

        let (hard, l2) = cfg.admission_config(DEGRADE_HARD);
        assert_eq!(l2, 2);
        assert!(hard.beam < soft.beam);
        assert!(hard.max_active < soft.max_active);
    }

    #[test]
    fn degraded_max_active_never_reaches_zero() {
        let cfg = ServeConfig {
            base: DecodeConfig::builder()
                .max_active(1)
                .build()
                .expect("valid config"),
            ..Default::default()
        };
        let (hard, _) = cfg.admission_config(1.0);
        assert!(hard.max_active >= 1);
    }
}
