//! TCP front end: a `std::net` accept loop translating the wire
//! protocol onto a [`ServeHandle`], one session per connection.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use unfold_decoder::{AmSource, LmSource};

use crate::server::ServeHandle;
use crate::wire::{read_client, write_server, ClientMsg, ServerMsg};
use crate::{ServeError, SessionId};

/// How long a connection waits for queued frames to decode before
/// answering `Partial`, and for the final result before giving up.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval of the (non-blocking) accept loop. Accept latency is
/// bounded by this; connection handling itself is blocking I/O.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A running TCP front end. Dropping it (or calling
/// [`TcpFront::stop`]) stops accepting; established connections run to
/// completion on their own threads.
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpFront {
    /// Starts accepting on `listener` (bind with port 0 for an
    /// ephemeral port, then read it back from
    /// [`TcpFront::local_addr`]). The accept loop also exits on the
    /// server's own shutdown flag, so a wire `Shutdown` message stops
    /// the front end too.
    ///
    /// # Errors
    /// Propagates listener setup failures.
    pub fn start<A, L>(listener: TcpListener, handle: ServeHandle<A, L>) -> io::Result<TcpFront>
    where
        A: AmSource + Send + Sync + 'static + ?Sized,
        L: LmSource + Send + Sync + 'static + ?Sized,
    {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("unfold-serve-accept".into())
            .spawn(move || accept_loop(&listener, &handle, &stop2))
            .expect("spawn accept loop");
        Ok(TcpFront {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (i.e. until server shutdown
    /// is requested over the wire or [`TcpFront::stop`] is called from
    /// another thread).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Asks the accept loop to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop<A, L>(listener: &TcpListener, handle: &ServeHandle<A, L>, stop: &AtomicBool)
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    while !stop.load(Ordering::SeqCst) && !handle.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handle = handle.clone();
                let _ = std::thread::Builder::new()
                    .name("unfold-serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &handle);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

fn reject_to_msg(e: ServeError) -> ServerMsg {
    match e {
        ServeError::Rejected(reason) => ServerMsg::Rejected { reason },
        other => ServerMsg::Error {
            msg: other.to_string(),
        },
    }
}

/// Runs one connection to completion. Client disconnection
/// mid-session is fine: the session is left to the idle-timeout sweep.
fn serve_connection<A, L>(stream: TcpStream, handle: &ServeHandle<A, L>) -> io::Result<()>
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut session: Option<SessionId> = None;
    while let Some(msg) = read_client(&mut reader)? {
        let reply = match msg {
            ClientMsg::Open { lm, bias } => {
                match handle.open_with_models(lm.as_deref(), bias.as_deref()) {
                    Ok(id) => {
                        session = Some(id);
                        ServerMsg::Opened { session: id }
                    }
                    Err(e) => reject_to_msg(e),
                }
            }
            ClientMsg::AddBias { name, phrases } => {
                // `BiasingFst::build` asserts on malformed input (it is
                // a library-misuse check); a remote client's payload is
                // validated here so a bad phrase answers `Error` instead
                // of killing the connection thread.
                let bad = phrases.iter().any(|(words, bonus)| {
                    words.is_empty() || words.contains(&0) || !bonus.is_finite() || *bonus <= 0.0
                });
                if bad {
                    ServerMsg::Error {
                        msg: format!(
                            "bad biasing model '{name}': phrases must be non-empty, \
                             epsilon-free, with finite positive bonuses"
                        ),
                    }
                } else {
                    handle.add_bias(&name, Arc::new(unfold_bias::BiasingFst::build(&phrases)));
                    ServerMsg::Ack
                }
            }
            ClientMsg::RetireBias { name } => match handle.retire_bias(&name) {
                Ok(_) => ServerMsg::Ack,
                Err(e) => reject_to_msg(e),
            },
            ClientMsg::Frames(rows) => match session {
                None => ServerMsg::Error {
                    msg: "no open session on this connection".into(),
                },
                Some(id) => {
                    let mut err = None;
                    for row in &rows {
                        if let Err(e) = handle.push_frame(id, row) {
                            err = Some(e);
                            break;
                        }
                    }
                    match err {
                        Some(e) => reject_to_msg(e),
                        None => {
                            // Closed loop: answer once this batch has
                            // actually been decoded, so the partial
                            // reflects it and the client paces itself
                            // to the server.
                            handle.wait_drained(id, DRAIN_TIMEOUT);
                            match handle.stable_partial(id) {
                                Ok(words) => ServerMsg::Partial { words },
                                Err(e) => reject_to_msg(e),
                            }
                        }
                    }
                }
            },
            ClientMsg::FramesV2(frames) => match session {
                None => ServerMsg::Error {
                    msg: "no open session on this connection".into(),
                },
                Some(id) => {
                    let mut err = None;
                    for frame in frames {
                        if let Err(e) = handle.ingest_frame(id, frame) {
                            err = Some(e);
                            break;
                        }
                    }
                    match err {
                        Some(e) => reject_to_msg(e),
                        None => {
                            // Same closed loop as legacy Frames: answer
                            // once the batch has cleared *both* stages,
                            // so the partial reflects it.
                            handle.wait_drained(id, DRAIN_TIMEOUT);
                            match handle.stable_partial(id) {
                                Ok(words) => ServerMsg::Partial { words },
                                Err(e) => reject_to_msg(e),
                            }
                        }
                    }
                }
            },
            ClientMsg::Finish => match session.take() {
                None => ServerMsg::Error {
                    msg: "no open session on this connection".into(),
                },
                Some(id) => match handle.finish(id) {
                    Err(e) => reject_to_msg(e),
                    Ok(()) => match handle.wait_result(id, DRAIN_TIMEOUT) {
                        Ok(Some(res)) => ServerMsg::Final {
                            words: res.words.clone(),
                            cost: res.cost,
                            frames: res.stats.frames as u64,
                        },
                        Ok(None) => ServerMsg::Error {
                            msg: "timed out waiting for the final result".into(),
                        },
                        Err(e) => reject_to_msg(e),
                    },
                },
            },
            ClientMsg::Stats => ServerMsg::Stats {
                jsonl: handle.obs_jsonl(),
            },
            ClientMsg::Dump => ServerMsg::Dump {
                flight: handle.flight_jsonl(),
                spans: handle.spans_jsonl(),
            },
            ClientMsg::Shutdown => {
                handle.request_shutdown();
                break;
            }
        };
        write_server(&mut writer, &reply)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::wire::{read_server, write_client};
    use crate::ServeConfig;
    use std::io::{BufReader as R, BufWriter as W};
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Arc<Wfst>, Arc<Wfst>) {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        (lex, Arc::new(am.fst), Arc::new(lm_to_wfst(&model)))
    }

    #[test]
    fn tcp_session_roundtrip_matches_standalone_decode() {
        let (lex, am, lm) = setup();
        let u = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            5,
        );
        let base = DecodeConfig::default();
        let alone = OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink);

        let server = Server::start(
            ServeConfig {
                workers: 1,
                olt_entries: 0,
                base,
                ..Default::default()
            },
            Arc::clone(&am),
            Arc::clone(&lm),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = TcpFront::start(listener, server.handle()).unwrap();

        let stream = TcpStream::connect(front.local_addr()).unwrap();
        let mut rd = R::new(stream.try_clone().unwrap());
        let mut wr = W::new(stream);
        write_client(
            &mut wr,
            &ClientMsg::Open {
                lm: None,
                bias: None,
            },
        )
        .unwrap();
        assert!(matches!(
            read_server(&mut rd).unwrap(),
            Some(ServerMsg::Opened { .. })
        ));
        let rows: Vec<Vec<f32>> = (0..u.scores.num_frames())
            .map(|t| u.scores.frame(t).to_vec())
            .collect();
        for chunk in rows.chunks(10) {
            write_client(&mut wr, &ClientMsg::Frames(chunk.to_vec())).unwrap();
            let reply = read_server(&mut rd).unwrap().unwrap();
            let ServerMsg::Partial { words } = reply else {
                panic!("expected Partial, got {reply:?}");
            };
            assert!(
                words.len() <= alone.words.len() && alone.words[..words.len()] == words[..],
                "stable partial {words:?} must prefix the final {:?}",
                alone.words
            );
        }
        write_client(&mut wr, &ClientMsg::Finish).unwrap();
        let reply = read_server(&mut rd).unwrap().unwrap();
        let ServerMsg::Final {
            words,
            cost,
            frames,
        } = reply
        else {
            panic!("expected Final, got {reply:?}");
        };
        assert_eq!(words, alone.words);
        assert_eq!(cost.to_bits(), alone.cost.to_bits());
        assert_eq!(frames as usize, u.scores.num_frames());

        write_client(&mut wr, &ClientMsg::Stats).unwrap();
        let ServerMsg::Stats { jsonl } = read_server(&mut rd).unwrap().unwrap() else {
            panic!("expected Stats");
        };
        assert!(jsonl.contains("serve.finals"));

        // A Dump over the same connection carries the flight ring (an
        // Admit at least) and the now-closed session's spans.
        write_client(&mut wr, &ClientMsg::Dump).unwrap();
        let ServerMsg::Dump { flight, spans } = read_server(&mut rd).unwrap().unwrap() else {
            panic!("expected Dump");
        };
        assert!(flight.contains("\"event\":\"admit\""), "{flight}");
        assert!(spans.contains("\"stage\":\"session\""), "{spans}");

        write_client(&mut wr, &ClientMsg::Shutdown).unwrap();
        front.join();
        server.shutdown();
    }

    /// The versioned frame message drives the full two-stage pipeline
    /// over TCP and still lands the standalone transcript bit for bit.
    #[test]
    fn frames_v2_over_tcp_through_pipelined_server_matches_standalone() {
        use unfold_decoder::FrameInput;

        let (lex, am, lm) = setup();
        let u = synthesize_utterance(
            &[7, 11, 4],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            9,
        );
        let base = DecodeConfig::default();
        let alone = OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink);

        let server = Server::start(
            ServeConfig {
                workers: 1,
                scoring_workers: 1,
                olt_entries: 0,
                base,
                ..Default::default()
            },
            Arc::clone(&am),
            Arc::clone(&lm),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = TcpFront::start(listener, server.handle()).unwrap();
        let stream = TcpStream::connect(front.local_addr()).unwrap();
        let mut rd = R::new(stream.try_clone().unwrap());
        let mut wr = W::new(stream);

        write_client(
            &mut wr,
            &ClientMsg::Open {
                lm: None,
                bias: None,
            },
        )
        .unwrap();
        assert!(matches!(
            read_server(&mut rd).unwrap(),
            Some(ServerMsg::Opened { .. })
        ));
        let frames: Vec<FrameInput> = (0..u.scores.num_frames())
            .map(|t| FrameInput::Scores(u.scores.frame(t).to_vec()))
            .collect();
        for chunk in frames.chunks(10) {
            write_client(&mut wr, &ClientMsg::FramesV2(chunk.to_vec())).unwrap();
            assert!(matches!(
                read_server(&mut rd).unwrap(),
                Some(ServerMsg::Partial { .. })
            ));
        }
        write_client(&mut wr, &ClientMsg::Finish).unwrap();
        let reply = read_server(&mut rd).unwrap().unwrap();
        let ServerMsg::Final { words, cost, .. } = reply else {
            panic!("expected Final, got {reply:?}");
        };
        assert_eq!(words, alone.words);
        assert_eq!(cost.to_bits(), alone.cost.to_bits());
        front.stop();
        server.shutdown();
    }

    #[test]
    fn frames_without_open_is_an_error_and_rejection_is_reported() {
        let (_lex, am, lm) = setup();
        let server = Server::start(
            ServeConfig {
                capacity: 0, // every open is refused
                workers: 1,
                ..Default::default()
            },
            am,
            lm,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = TcpFront::start(listener, server.handle()).unwrap();
        let stream = TcpStream::connect(front.local_addr()).unwrap();
        let mut rd = R::new(stream.try_clone().unwrap());
        let mut wr = W::new(stream);

        write_client(&mut wr, &ClientMsg::Frames(vec![vec![0.0]])).unwrap();
        assert!(matches!(
            read_server(&mut rd).unwrap(),
            Some(ServerMsg::Error { .. })
        ));
        write_client(
            &mut wr,
            &ClientMsg::Open {
                lm: None,
                bias: None,
            },
        )
        .unwrap();
        assert!(matches!(
            read_server(&mut rd).unwrap(),
            Some(ServerMsg::Rejected {
                reason: crate::RejectReason::AtCapacity
            })
        ));
        // Naming an unregistered model is an Error, not a Rejected.
        write_client(
            &mut wr,
            &ClientMsg::Open {
                lm: Some("nope".into()),
                bias: None,
            },
        )
        .unwrap();
        assert!(matches!(
            read_server(&mut rd).unwrap(),
            Some(ServerMsg::Error { .. })
        ));
        drop(wr);
        drop(rd);
        front.stop();
        server.shutdown();
    }
}
