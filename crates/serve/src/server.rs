//! The threaded server: a pool of decode workers around a
//! [`ServeCore`], plus the cloneable in-process [`ServeHandle`] clients
//! drive it with.
//!
//! Workers follow the lease protocol: lock the core, claim the
//! earliest-deadline quantum, *unlock*, decode with their private
//! [`WorkScratch`] (so each worker keeps one warm software OLT for its
//! whole life), relock, return the lease. The mutex therefore guards
//! only queue surgery — decode time, which dominates, runs unlocked on
//! every worker in parallel.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use unfold_decoder::{
    AcousticScorer, AmSource, CountingSink, DecodeResult, FrameInput, LmSource, ScoreError,
    SessionIngest, WorkScratch,
};
use unfold_lm::WordId;

use crate::sched::{ServeCore, ServeStats};
use crate::session::{SessionId, SessionView};
use crate::{RejectReason, ServeConfig, ServeError};

/// How long an idle worker sleeps before re-checking for work and
/// running the idle-eviction sweep. Purely a liveness bound — workers
/// are woken eagerly whenever work arrives.
const IDLE_POLL: Duration = Duration::from_millis(20);

struct Shared<A: AmSource + ?Sized, L: LmSource + ?Sized> {
    core: Mutex<ServeCore<A, L>>,
    /// Signals both "work available" (to workers) and "progress made"
    /// (to result waiters); waiters recheck their predicate.
    cv: Condvar,
    shutdown: AtomicBool,
    epoch: Instant,
    /// Microseconds search workers have spent decoding (unlocked), and
    /// the stage's thread count — together they yield the search-stage
    /// occupancy gauge at scrape time.
    search_busy_us: AtomicU64,
    search_workers: usize,
    /// Same clocks for the scoring stage (0 workers = lockstep mode,
    /// gauge stays NaN).
    scoring_busy_us: AtomicU64,
    scoring_workers: usize,
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> Shared<A, L> {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// `(scoring, search)` stage occupancy: busy-time per stage thread
    /// over wall time since start, in `[0, 1]`. NaN for a stage with no
    /// threads.
    fn stage_occupancy(&self) -> (f64, f64) {
        let elapsed_us = self.epoch.elapsed().as_micros().max(1) as f64;
        let per_stage = |busy: &AtomicU64, threads: usize| {
            if threads == 0 {
                f64::NAN
            } else {
                busy.load(Ordering::Relaxed) as f64 / (elapsed_us * threads as f64)
            }
        };
        (
            per_stage(&self.scoring_busy_us, self.scoring_workers),
            per_stage(&self.search_busy_us, self.search_workers),
        )
    }
}

/// A multi-session streaming decode server. Owns `workers` OS threads
/// for its lifetime; dropping without [`Server::shutdown`] also joins
/// them cleanly.
pub struct Server<A, L>
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    shared: Arc<Shared<A, L>>,
    workers: Vec<JoinHandle<()>>,
}

impl<A, L> Server<A, L>
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    /// Starts a server decoding against one shared model pair (the LM
    /// is registered under [`crate::sched::DEFAULT_LM`]).
    pub fn start(config: ServeConfig, am: Arc<A>, lm: Arc<L>) -> Self {
        Self::start_multi(config, am, vec![(crate::sched::DEFAULT_LM.to_string(), lm)])
    }

    /// Starts a server hosting one AM and several named LMs; clients
    /// pick per session with [`ServeHandle::open_with_lm`]. The first
    /// entry is the default model.
    ///
    /// # Panics
    /// When `lms` is empty or contains a duplicate name.
    pub fn start_multi(config: ServeConfig, am: Arc<A>, lms: Vec<(String, Arc<L>)>) -> Self {
        Self::start_multi_with_scorer(config, am, lms, None)
    }

    /// Like [`Server::start_multi`], with an optional acoustic scorer
    /// bound before any worker spawns. With `scoring_workers > 0` the
    /// worker pool splits into roles: `workers` search threads plus
    /// `scoring_workers` threads that batch raw frames through the
    /// scorer (a passthrough for precomputed rows when `None`).
    ///
    /// # Panics
    /// When `lms` is empty or contains a duplicate name.
    pub fn start_multi_with_scorer(
        config: ServeConfig,
        am: Arc<A>,
        lms: Vec<(String, Arc<L>)>,
        scorer: Option<Arc<dyn AcousticScorer>>,
    ) -> Self {
        let workers = config.workers.max(1);
        let scoring_workers = config.scoring_workers;
        let olt_entries = config.olt_entries;
        let mut core = ServeCore::new_multi(config, am, lms);
        if let Some(scorer) = scorer {
            core.set_scorer(scorer);
        }
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            search_busy_us: AtomicU64::new(0),
            search_workers: workers,
            scoring_busy_us: AtomicU64::new(0),
            scoring_workers,
        });
        let mut handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("unfold-serve-{i}"))
                    .spawn(move || worker_loop(&shared, olt_entries))
                    .expect("spawn decode worker")
            })
            .collect();
        handles.extend((0..scoring_workers).map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("unfold-score-{i}"))
                .spawn(move || scoring_loop(&shared))
                .expect("spawn scoring worker")
        }));
        Server {
            shared,
            workers: handles,
        }
    }

    /// A cloneable client handle to this server.
    pub fn handle(&self) -> ServeHandle<A, L> {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the workers and joins them. In-flight quanta complete;
    /// queued-but-undecoded work is dropped.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<A, L> Drop for Server<A, L>
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn worker_loop<A, L>(shared: &Shared<A, L>, olt_entries: usize)
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    // One scratch (and one warm OLT) per worker, for its whole life —
    // and one counting sink, reset per quantum, feeding the lease span.
    let mut work = WorkScratch::new();
    work.configure_olt(olt_entries);
    let mut counts = CountingSink::default();
    let mut core = shared.core.lock().expect("serve lock");
    let decode_us = core.lease_decode_us();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = shared.now_ms();
        core.evict_idle(now);
        match core.lease_next(now) {
            Some(mut lease) => {
                // The lease carries its session's own LM; only the
                // shared AM comes from the core.
                let am = core.am();
                drop(core);
                // Decode unlocked. A panicking decode must not wedge
                // the session's slot (or poison the core mutex), so the
                // quantum runs under `catch_unwind`; the identifiers
                // needed to unwind the lease are captured first because
                // a panic consumes it.
                let (id, span, granted) =
                    (lease.session(), lease.span_id(), lease.num_frames() as u64);
                let started = Instant::now();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    lease.run_traced(&*am, &mut work, &mut counts);
                    lease
                }));
                let spent = started.elapsed();
                shared
                    .search_busy_us
                    .fetch_add(spent.as_micros() as u64, Ordering::Relaxed);
                core = shared.core.lock().expect("serve lock");
                match outcome {
                    Ok(lease) => {
                        decode_us.record(spent.as_micros() as u64);
                        core.complete_lease(lease, shared.now_ms());
                    }
                    // The search state unwound with the panic: release
                    // the slot and account the lost frames.
                    Err(_) => core.abort_lease(id, span, granted, shared.now_ms()),
                }
                shared.cv.notify_all();
            }
            None => {
                let (guard, _timeout) =
                    shared.cv.wait_timeout(core, IDLE_POLL).expect("serve lock");
                core = guard;
            }
        }
    }
}

/// The scoring-stage worker: lease a cross-session batch of raw frames
/// under the lock, *unlock*, run the scorer, relock, deliver the rows.
/// Mirrors [`worker_loop`]'s lease discipline so scoring time — the
/// part a GPU would absorb — runs unlocked and in parallel with every
/// search worker.
fn scoring_loop<A, L>(shared: &Shared<A, L>)
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    let mut core = shared.core.lock().expect("serve lock");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match core.lease_score_batch(shared.now_ms()) {
            Some(lease) => {
                // Re-read per batch so a scorer hot-swapped through the
                // handle takes effect without restarting workers.
                let scorer = core.scorer();
                drop(core);
                let started = Instant::now();
                // A panicking scorer must not wedge the leased sessions
                // or poison the core mutex; the batch is dropped like
                // any scoring error (`complete_score_batch` discards
                // the error value, so the placeholder kind is fine).
                let rows = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    lease.run(scorer.as_deref())
                }))
                .unwrap_or(Err(ScoreError::FeaturesUnsupported));
                shared
                    .scoring_busy_us
                    .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                core = shared.core.lock().expect("serve lock");
                core.complete_score_batch(lease, rows, shared.now_ms());
                // Scored rows are search work: wake the other stage.
                shared.cv.notify_all();
            }
            None => {
                let (guard, _timeout) =
                    shared.cv.wait_timeout(core, IDLE_POLL).expect("serve lock");
                core = guard;
            }
        }
    }
}

/// A cloneable client handle to a running [`Server`]: the in-process
/// API the TCP front end and tests are built on. All methods are safe
/// to call from any thread.
pub struct ServeHandle<A: AmSource + ?Sized, L: LmSource + ?Sized> {
    shared: Arc<Shared<A, L>>,
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> Clone for ServeHandle<A, L> {
    fn clone(&self) -> Self {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> ServeHandle<A, L> {
    fn lock(&self) -> std::sync::MutexGuard<'_, ServeCore<A, L>> {
        self.shared.core.lock().expect("serve lock")
    }

    /// Milliseconds since the server started (its logical clock).
    pub fn now_ms(&self) -> u64 {
        self.shared.now_ms()
    }

    /// Opens a session (admission control applies).
    ///
    /// # Errors
    /// The [`RejectReason`] when admission is refused.
    pub fn open(&self) -> Result<SessionId, RejectReason> {
        self.lock().open(self.shared.now_ms())
    }

    /// Opens a session decoding against the named LM (`None` =
    /// default), pinned for the session's lifetime.
    ///
    /// # Errors
    /// See [`ServeCore::open_with_lm`].
    pub fn open_with_lm(&self, lm: Option<&str>) -> Result<SessionId, ServeError> {
        self.lock().open_with_lm(lm, self.shared.now_ms())
    }

    /// Opens a session decoding against the named LM with the named
    /// biasing model composed over it on the fly (`None` = unbiased).
    ///
    /// # Errors
    /// See [`ServeCore::open_with_models`].
    pub fn open_with_models(
        &self,
        lm: Option<&str>,
        bias: Option<&str>,
    ) -> Result<SessionId, ServeError> {
        self.lock().open_with_models(lm, bias, self.shared.now_ms())
    }

    /// The registered LM names, default first.
    pub fn lm_names(&self) -> Vec<String> {
        self.lock().lm_names()
    }

    /// Registers (or hot-swaps) an LM under `name` without draining any
    /// session. Returns the replaced handle, if any.
    pub fn add_lm(&self, name: &str, lm: Arc<L>) -> Option<Arc<L>> {
        self.lock().add_lm(name, lm)
    }

    /// Removes `name` from the registry. Sessions pinned to it finish
    /// undisturbed; new sessions can no longer select it.
    ///
    /// # Errors
    /// See [`ServeCore::retire_lm`].
    pub fn retire_lm(&self, name: &str) -> Result<Arc<L>, ServeError> {
        self.lock().retire_lm(name)
    }

    /// The registered biasing-model names, in registration order.
    pub fn bias_names(&self) -> Vec<String> {
        self.lock().bias_names()
    }

    /// Registers (or hot-swaps) a biasing model under `name` without
    /// draining any session. Returns the replaced handle, if any.
    pub fn add_bias(
        &self,
        name: &str,
        bias: Arc<unfold_bias::BiasingFst>,
    ) -> Option<Arc<unfold_bias::BiasingFst>> {
        self.lock().add_bias(name, bias)
    }

    /// Removes `name` from the biasing registry. Sessions pinned to it
    /// finish undisturbed; new sessions can no longer select it.
    ///
    /// # Errors
    /// See [`ServeCore::retire_bias`].
    pub fn retire_bias(&self, name: &str) -> Result<Arc<unfold_bias::BiasingFst>, ServeError> {
        self.lock().retire_bias(name)
    }

    /// Queues one score row for `id` and wakes a worker.
    ///
    /// # Errors
    /// See [`ServeCore::push_frame`].
    pub fn push_frame(&self, id: SessionId, row: &[f32]) -> Result<(), ServeError> {
        let r = self.lock().push_frame(id, row, self.shared.now_ms());
        if r.is_ok() {
            self.shared.cv.notify_all();
        }
        r
    }

    /// Queues one [`FrameInput`] for `id` — the unified ingest surface:
    /// precomputed score rows and raw feature frames take the same
    /// path. In pipelined mode the frame lands in the session's raw
    /// queue for the scoring stage; in lockstep mode it is scored
    /// inline.
    ///
    /// # Errors
    /// See [`ServeCore::ingest_frame`].
    pub fn ingest_frame(&self, id: SessionId, frame: FrameInput) -> Result<(), ServeError> {
        let r = self.lock().ingest_frame(id, frame, self.shared.now_ms());
        if r.is_ok() {
            self.shared.cv.notify_all();
        }
        r
    }

    /// Binds `id` into a [`SessionIngest`]-shaped handle, so producers
    /// generic over "somewhere to push frames" can target a served
    /// session exactly like a standalone [`unfold_decoder::OtfStream`].
    pub fn bind(&self, id: SessionId) -> BoundSession<A, L> {
        BoundSession {
            handle: self.clone(),
            id,
        }
    }

    /// Installs (or hot-swaps) the server's acoustic scorer. Affects
    /// frames ingested after the call; scoring batches already leased
    /// finish under the scorer they captured.
    pub fn set_scorer(&self, scorer: Arc<dyn AcousticScorer>) {
        self.lock().set_scorer(scorer);
    }

    /// Marks `id` finished; its result becomes collectable once the
    /// queue drains.
    ///
    /// # Errors
    /// See [`ServeCore::finish`].
    pub fn finish(&self, id: SessionId) -> Result<(), ServeError> {
        let r = self.lock().finish(id, self.shared.now_ms());
        if r.is_ok() {
            self.shared.cv.notify_all();
        }
        r
    }

    /// The session's current non-flickering partial transcript.
    ///
    /// # Errors
    /// See [`ServeCore::stable_partial`].
    pub fn stable_partial(&self, id: SessionId) -> Result<Vec<WordId>, ServeError> {
        self.lock().stable_partial(id)
    }

    /// A snapshot of the session's scheduling state.
    ///
    /// # Errors
    /// See [`ServeCore::view`].
    pub fn view(&self, id: SessionId) -> Result<SessionView, ServeError> {
        self.lock().view(id)
    }

    /// Blocks until `id`'s queued frames have all been decoded (or
    /// `timeout` passes). Returns whether the queue drained.
    pub fn wait_drained(&self, id: SessionId, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut core = self.lock();
        loop {
            match core.view(id) {
                Ok(v) if v.queued == 0 && !v.leased => return true,
                Err(_) => return false,
                Ok(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, deadline - now)
                .expect("serve lock");
            core = guard;
        }
    }

    /// Blocks until `id`'s final result is ready and collects it,
    /// freeing the slot. `Ok(None)` on timeout.
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] if the session vanished (evicted,
    /// or already collected).
    pub fn wait_result(
        &self,
        id: SessionId,
        timeout: Duration,
    ) -> Result<Option<DecodeResult>, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut core = self.lock();
        loop {
            if let Some(res) = core.take_result(id)? {
                return Ok(Some(res));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, deadline - now)
                .expect("serve lock");
            core = guard;
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.lock().stats()
    }

    /// Sessions currently holding slots.
    pub fn active_sessions(&self) -> usize {
        self.lock().active_sessions()
    }

    /// Server metrics as one `unfold-obs` run record (JSONL). Stage
    /// occupancy gauges are refreshed from the worker busy-clocks at
    /// each scrape.
    pub fn obs_jsonl(&self) -> String {
        let (scoring, search) = self.shared.stage_occupancy();
        let mut core = self.lock();
        core.set_stage_occupancy(scoring, search);
        core.obs_jsonl()
    }

    /// Server metrics as a markdown table (stage occupancy refreshed,
    /// as in [`ServeHandle::obs_jsonl`]).
    pub fn obs_markdown(&self) -> String {
        let (scoring, search) = self.shared.stage_occupancy();
        let mut core = self.lock();
        core.set_stage_occupancy(scoring, search);
        core.obs_markdown()
    }

    /// Closed session spans as JSONL (`sspan` records, close order).
    pub fn spans_jsonl(&self) -> String {
        self.lock().spans_jsonl()
    }

    /// Closed session spans as a Chrome `trace_event` JSON array.
    pub fn spans_chrome_trace(&self) -> String {
        self.lock().spans_chrome_trace()
    }

    /// `(opened, closed, still_open)` span counts since start.
    pub fn span_counts(&self) -> (u64, u64, usize) {
        self.lock().span_counts()
    }

    /// The flight recorder: the frozen incident dump if one was pinned,
    /// otherwise a live snapshot of the event ring.
    pub fn flight_jsonl(&self) -> String {
        self.lock().flight_jsonl()
    }

    /// `(reason, dump)` of the pinned incident snapshot, if any.
    pub fn flight_frozen(&self) -> Option<(String, String)> {
        self.lock()
            .flight_frozen()
            .map(|(reason, dump)| (reason.to_string(), dump.to_string()))
    }

    /// Asks the server (and any front ends polling this flag) to stop.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// One served session viewed through the decoder's [`SessionIngest`]
/// trait: a [`ServeHandle`] pinned to a [`SessionId`]. Producers
/// written against the trait (the wire front end, load generators,
/// tests) push [`FrameInput`]s here without knowing a server sits
/// underneath.
pub struct BoundSession<A: AmSource + ?Sized, L: LmSource + ?Sized> {
    handle: ServeHandle<A, L>,
    id: SessionId,
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> BoundSession<A, L> {
    /// The bound session.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Marks the bound session finished (see [`ServeHandle::finish`]).
    ///
    /// # Errors
    /// See [`ServeCore::finish`].
    pub fn finish(&self) -> Result<(), ServeError> {
        self.handle.finish(self.id)
    }
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> SessionIngest for BoundSession<A, L> {
    type Error = ServeError;

    fn ingest(&mut self, frame: FrameInput) -> Result<(), ServeError> {
        self.handle.ingest_frame(self.id, frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel, Utterance};
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Arc<Wfst>, Arc<Wfst>) {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        (lex, Arc::new(am.fst), Arc::new(lm_to_wfst(&model)))
    }

    /// Concurrent sessions through real worker threads still produce
    /// transcripts bit-identical to standalone decodes — worker
    /// scheduling is timing-dependent, results must not be.
    #[test]
    fn threaded_sessions_match_standalone_decode() {
        let (lex, am, lm) = setup();
        let word_seqs: [&[u32]; 4] = [&[3, 9, 17], &[7, 11, 4], &[22, 5], &[14, 30, 8]];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| {
                synthesize_utterance(
                    w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    40 + i as u64,
                )
            })
            .collect();
        let base = DecodeConfig::default();
        let standalone: Vec<_> = utts
            .iter()
            .map(|u| OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink))
            .collect();

        let config = ServeConfig {
            workers: 2,
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let server = Server::start(config, Arc::clone(&am), Arc::clone(&lm));
        let handle = server.handle();

        let joins: Vec<_> = utts
            .iter()
            .map(|u| {
                let handle = handle.clone();
                let rows: Vec<Vec<f32>> = (0..u.scores.num_frames())
                    .map(|t| u.scores.frame(t).to_vec())
                    .collect();
                std::thread::spawn(move || {
                    let id = handle.open().expect("admit");
                    for row in &rows {
                        handle.push_frame(id, row).expect("push");
                    }
                    handle.finish(id).expect("finish");
                    handle
                        .wait_result(id, Duration::from_secs(60))
                        .expect("known")
                        .expect("no timeout")
                })
            })
            .collect();
        let results: Vec<DecodeResult> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for (served, alone) in results.iter().zip(&standalone) {
            assert_eq!(served.words, alone.words);
            assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(served.stats, alone.stats);
        }
        assert_eq!(handle.stats().finals, 4);
        // Every slot is freed, so the span ledger balances and a clean
        // run pins no flight-recorder incident.
        let (opened, closed, open) = handle.span_counts();
        assert_eq!(opened, closed);
        assert_eq!(open, 0);
        assert!(handle.flight_frozen().is_none());
        assert!(!handle.spans_jsonl().is_empty());
        server.shutdown();
    }

    #[test]
    fn wait_drained_and_partials_work_under_workers() {
        let (lex, am, lm) = setup();
        let u = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            7,
        );
        let server = Server::start(
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
            Arc::clone(&am),
            Arc::clone(&lm),
        );
        let handle = server.handle();
        let id = handle.open().unwrap();
        for t in 0..u.scores.num_frames() {
            handle.push_frame(id, u.scores.frame(t)).unwrap();
        }
        assert!(handle.wait_drained(id, Duration::from_secs(30)));
        let partial = handle.stable_partial(id).unwrap();
        handle.finish(id).unwrap();
        let res = handle
            .wait_result(id, Duration::from_secs(30))
            .unwrap()
            .expect("final");
        assert!(
            partial.len() <= res.words.len() && res.words[..partial.len()] == partial[..],
            "stable partial {partial:?} must prefix the final {:?}",
            res.words
        );
        server.shutdown();
    }

    /// Two LMs hosted by one threaded server: sessions select per-open,
    /// run on real workers, and match standalone decodes against their
    /// own model bit for bit.
    #[test]
    fn threaded_multi_lm_sessions_match_standalone_per_lm_decodes() {
        let (lex, am, lm_a) = setup();
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model_b = NGramModel::train(&spec.generate(17), 50, DiscountConfig::default());
        let lm_b = Arc::new(lm_to_wfst(&model_b));
        let word_seqs: [&[u32]; 4] = [&[3, 9, 17], &[7, 11, 4], &[22, 5], &[14, 30, 8]];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| {
                synthesize_utterance(
                    w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    40 + i as u64,
                )
            })
            .collect();
        let base = DecodeConfig::default();
        let pick = |i: usize| if i.is_multiple_of(2) { &lm_a } else { &lm_b };
        let standalone: Vec<_> = utts
            .iter()
            .enumerate()
            .map(|(i, u)| OtfDecoder::new(base).decode(&*am, &**pick(i), &u.scores, &mut NullSink))
            .collect();

        let config = ServeConfig {
            workers: 2,
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let server = Server::start_multi(
            config,
            Arc::clone(&am),
            vec![
                ("default".to_string(), Arc::clone(&lm_a)),
                ("alt".to_string(), Arc::clone(&lm_b)),
            ],
        );
        let handle = server.handle();
        assert_eq!(handle.lm_names(), vec!["default", "alt"]);
        assert!(matches!(
            handle.open_with_lm(Some("missing")),
            Err(ServeError::UnknownModel(_))
        ));

        let joins: Vec<_> = utts
            .iter()
            .enumerate()
            .map(|(i, u)| {
                let handle = handle.clone();
                let rows: Vec<Vec<f32>> = (0..u.scores.num_frames())
                    .map(|t| u.scores.frame(t).to_vec())
                    .collect();
                std::thread::spawn(move || {
                    let name = if i % 2 == 0 { None } else { Some("alt") };
                    let id = handle.open_with_lm(name).expect("admit");
                    for row in &rows {
                        handle.push_frame(id, row).expect("push");
                    }
                    handle.finish(id).expect("finish");
                    handle
                        .wait_result(id, Duration::from_secs(60))
                        .expect("known")
                        .expect("no timeout")
                })
            })
            .collect();
        let results: Vec<DecodeResult> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for (served, alone) in results.iter().zip(&standalone) {
            assert_eq!(served.words, alone.words);
            assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(served.stats, alone.stats);
        }
        // Hot swap through the handle while the server runs.
        let retired = handle.retire_lm("alt").expect("retire");
        assert!(Arc::ptr_eq(&retired, &lm_b));
        assert!(handle.add_lm("alt2", lm_b).is_none());
        assert_eq!(handle.lm_names(), vec!["default", "alt2"]);
        server.shutdown();
    }

    /// The full two-stage pipeline under real threads — scoring workers
    /// batching across sessions, search workers consuming the bounded
    /// scored queues — still produces transcripts bit-identical to
    /// standalone decodes, and the scoring-stage ledger reconciles.
    #[test]
    fn pipelined_threaded_sessions_match_standalone_decode() {
        let (lex, am, lm) = setup();
        let word_seqs: [&[u32]; 4] = [&[3, 9, 17], &[7, 11, 4], &[22, 5], &[14, 30, 8]];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| {
                synthesize_utterance(
                    w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    40 + i as u64,
                )
            })
            .collect();
        let base = DecodeConfig::builder()
            .scorer_batch(6)
            .max_search_lag(3)
            .build()
            .expect("valid config");
        let standalone: Vec<_> = utts
            .iter()
            .map(|u| OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink))
            .collect();
        let total_frames: u64 = utts.iter().map(|u| u.scores.num_frames() as u64).sum();

        let config = ServeConfig {
            workers: 2,
            scoring_workers: 2,
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let server = Server::start(config, Arc::clone(&am), Arc::clone(&lm));
        let handle = server.handle();

        let joins: Vec<_> = utts
            .iter()
            .map(|u| {
                let handle = handle.clone();
                let rows: Vec<Vec<f32>> = (0..u.scores.num_frames())
                    .map(|t| u.scores.frame(t).to_vec())
                    .collect();
                std::thread::spawn(move || {
                    let id = handle.open().expect("admit");
                    let mut bound = handle.bind(id);
                    for row in rows {
                        bound.ingest(FrameInput::Scores(row)).expect("ingest");
                    }
                    bound.finish().expect("finish");
                    handle
                        .wait_result(id, Duration::from_secs(60))
                        .expect("known")
                        .expect("no timeout")
                })
            })
            .collect();
        let results: Vec<DecodeResult> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for (served, alone) in results.iter().zip(&standalone) {
            assert_eq!(served.words, alone.words);
            assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(served.stats, alone.stats);
        }
        let stats = handle.stats();
        assert_eq!(stats.finals, 4);
        assert_eq!(stats.frames_scored, total_frames, "every frame scored");
        assert!(stats.score_batches > 0, "scoring stage actually ran");
        assert_eq!(
            stats.frames_accepted,
            stats.frames_decoded + stats.frames_dropped,
            "frame ledger reconciles after drain"
        );
        // Both stages ran, so their occupancy gauges scrape as numbers
        // (NaN renders as "-" and would mean a stage never reported).
        let md = handle.obs_markdown();
        for gauge in ["stage_scoring_occupancy", "stage_search_occupancy"] {
            let line = md
                .lines()
                .find(|l| l.contains(gauge))
                .unwrap_or_else(|| panic!("{gauge} missing from scrape"));
            assert!(!line.contains("NaN"), "{gauge} must be a number: {line}");
        }
        server.shutdown();
    }

    /// Feature frames through the threaded pipeline: a GMM-backed
    /// scorer turns them into the same rows a lockstep inline-scoring
    /// server derives, so both servers' transcripts agree bit for bit.
    #[test]
    fn threaded_feature_frames_match_between_lockstep_and_pipelined() {
        use unfold_am::GmmModel;
        use unfold_decoder::GmmScorer;

        let (lex, am, lm) = setup();
        let probe = synthesize_utterance(
            &[3],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            1,
        );
        let width = probe.scores.frame(0).len();
        let model = Arc::new(GmmModel::synthesize(width, 8, 2, 3.0, 41));
        let frames: Vec<Vec<f32>> = (0..24)
            .map(|t: usize| {
                (0..model.dim())
                    .map(|d| ((t * 31 + d * 7) % 13) as f32 * 0.25 - 1.5)
                    .collect()
            })
            .collect();

        let mut outcomes = Vec::new();
        for scoring_workers in [0usize, 2] {
            let config = ServeConfig {
                workers: 2,
                scoring_workers,
                quantum_frames: 4,
                olt_entries: 0,
                ..Default::default()
            };
            let server = Server::start_multi_with_scorer(
                config,
                Arc::clone(&am),
                vec![(crate::sched::DEFAULT_LM.to_string(), Arc::clone(&lm))],
                Some(Arc::new(GmmScorer::new(Arc::clone(&model)))),
            );
            let handle = server.handle();
            let id = handle.open().expect("admit");
            let mut bound = handle.bind(id);
            for f in &frames {
                bound
                    .ingest(FrameInput::Features(f.clone()))
                    .expect("ingest");
            }
            bound.finish().expect("finish");
            let res = handle
                .wait_result(id, Duration::from_secs(60))
                .expect("known")
                .expect("no timeout");
            assert_eq!(handle.stats().frames_scored, frames.len() as u64);
            outcomes.push(res);
            server.shutdown();
        }
        let (lockstep, pipelined) = (&outcomes[0], &outcomes[1]);
        assert_eq!(lockstep.words, pipelined.words);
        assert_eq!(lockstep.cost.to_bits(), pipelined.cost.to_bits());
        assert_eq!(lockstep.stats, pipelined.stats);
    }

    #[test]
    fn shutdown_joins_workers_and_drop_is_clean() {
        let (_lex, am, lm) = setup();
        let server = Server::start(ServeConfig::default(), Arc::clone(&am), Arc::clone(&lm));
        let handle = server.handle();
        assert!(!handle.shutdown_requested());
        server.shutdown();
        assert!(handle.shutdown_requested());
        // Drop without explicit shutdown must also not hang.
        let server2 = Server::start(ServeConfig::default(), am, lm);
        drop(server2);
    }
}
