//! The threaded server: a pool of decode workers around a
//! [`ServeCore`], plus the cloneable in-process [`ServeHandle`] clients
//! drive it with.
//!
//! Workers follow the lease protocol: lock the core, claim the
//! earliest-deadline quantum, *unlock*, decode with their private
//! [`WorkScratch`] (so each worker keeps one warm software OLT for its
//! whole life), relock, return the lease. The mutex therefore guards
//! only queue surgery — decode time, which dominates, runs unlocked on
//! every worker in parallel.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use unfold_decoder::{AmSource, CountingSink, DecodeResult, LmSource, WorkScratch};
use unfold_lm::WordId;

use crate::sched::{ServeCore, ServeStats};
use crate::session::{SessionId, SessionView};
use crate::{RejectReason, ServeConfig, ServeError};

/// How long an idle worker sleeps before re-checking for work and
/// running the idle-eviction sweep. Purely a liveness bound — workers
/// are woken eagerly whenever work arrives.
const IDLE_POLL: Duration = Duration::from_millis(20);

struct Shared<A: AmSource + ?Sized, L: LmSource + ?Sized> {
    core: Mutex<ServeCore<A, L>>,
    /// Signals both "work available" (to workers) and "progress made"
    /// (to result waiters); waiters recheck their predicate.
    cv: Condvar,
    shutdown: AtomicBool,
    epoch: Instant,
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> Shared<A, L> {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// A multi-session streaming decode server. Owns `workers` OS threads
/// for its lifetime; dropping without [`Server::shutdown`] also joins
/// them cleanly.
pub struct Server<A, L>
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    shared: Arc<Shared<A, L>>,
    workers: Vec<JoinHandle<()>>,
}

impl<A, L> Server<A, L>
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    /// Starts a server decoding against one shared model pair (the LM
    /// is registered under [`crate::sched::DEFAULT_LM`]).
    pub fn start(config: ServeConfig, am: Arc<A>, lm: Arc<L>) -> Self {
        Self::start_multi(config, am, vec![(crate::sched::DEFAULT_LM.to_string(), lm)])
    }

    /// Starts a server hosting one AM and several named LMs; clients
    /// pick per session with [`ServeHandle::open_with_lm`]. The first
    /// entry is the default model.
    ///
    /// # Panics
    /// When `lms` is empty or contains a duplicate name.
    pub fn start_multi(config: ServeConfig, am: Arc<A>, lms: Vec<(String, Arc<L>)>) -> Self {
        let workers = config.workers.max(1);
        let olt_entries = config.olt_entries;
        let shared = Arc::new(Shared {
            core: Mutex::new(ServeCore::new_multi(config, am, lms)),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("unfold-serve-{i}"))
                    .spawn(move || worker_loop(&shared, olt_entries))
                    .expect("spawn decode worker")
            })
            .collect();
        Server {
            shared,
            workers: handles,
        }
    }

    /// A cloneable client handle to this server.
    pub fn handle(&self) -> ServeHandle<A, L> {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the workers and joins them. In-flight quanta complete;
    /// queued-but-undecoded work is dropped.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<A, L> Drop for Server<A, L>
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn worker_loop<A, L>(shared: &Shared<A, L>, olt_entries: usize)
where
    A: AmSource + Send + Sync + 'static + ?Sized,
    L: LmSource + Send + Sync + 'static + ?Sized,
{
    // One scratch (and one warm OLT) per worker, for its whole life —
    // and one counting sink, reset per quantum, feeding the lease span.
    let mut work = WorkScratch::new();
    work.configure_olt(olt_entries);
    let mut counts = CountingSink::default();
    let mut core = shared.core.lock().expect("serve lock");
    let decode_us = core.lease_decode_us();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = shared.now_ms();
        core.evict_idle(now);
        match core.lease_next(now) {
            Some(mut lease) => {
                // The lease carries its session's own LM; only the
                // shared AM comes from the core.
                let am = core.am();
                drop(core);
                // Decode unlocked. A panicking decode must not wedge
                // the session's slot (or poison the core mutex), so the
                // quantum runs under `catch_unwind`; the identifiers
                // needed to unwind the lease are captured first because
                // a panic consumes it.
                let (id, span, granted) =
                    (lease.session(), lease.span_id(), lease.num_frames() as u64);
                let started = Instant::now();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    lease.run_traced(&*am, &mut work, &mut counts);
                    lease
                }));
                let spent = started.elapsed();
                core = shared.core.lock().expect("serve lock");
                match outcome {
                    Ok(lease) => {
                        decode_us.record(spent.as_micros() as u64);
                        core.complete_lease(lease, shared.now_ms());
                    }
                    // The search state unwound with the panic: release
                    // the slot and account the lost frames.
                    Err(_) => core.abort_lease(id, span, granted, shared.now_ms()),
                }
                shared.cv.notify_all();
            }
            None => {
                let (guard, _timeout) =
                    shared.cv.wait_timeout(core, IDLE_POLL).expect("serve lock");
                core = guard;
            }
        }
    }
}

/// A cloneable client handle to a running [`Server`]: the in-process
/// API the TCP front end and tests are built on. All methods are safe
/// to call from any thread.
pub struct ServeHandle<A: AmSource + ?Sized, L: LmSource + ?Sized> {
    shared: Arc<Shared<A, L>>,
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> Clone for ServeHandle<A, L> {
    fn clone(&self) -> Self {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> ServeHandle<A, L> {
    fn lock(&self) -> std::sync::MutexGuard<'_, ServeCore<A, L>> {
        self.shared.core.lock().expect("serve lock")
    }

    /// Milliseconds since the server started (its logical clock).
    pub fn now_ms(&self) -> u64 {
        self.shared.now_ms()
    }

    /// Opens a session (admission control applies).
    ///
    /// # Errors
    /// The [`RejectReason`] when admission is refused.
    pub fn open(&self) -> Result<SessionId, RejectReason> {
        self.lock().open(self.shared.now_ms())
    }

    /// Opens a session decoding against the named LM (`None` =
    /// default), pinned for the session's lifetime.
    ///
    /// # Errors
    /// See [`ServeCore::open_with_lm`].
    pub fn open_with_lm(&self, lm: Option<&str>) -> Result<SessionId, ServeError> {
        self.lock().open_with_lm(lm, self.shared.now_ms())
    }

    /// Opens a session decoding against the named LM with the named
    /// biasing model composed over it on the fly (`None` = unbiased).
    ///
    /// # Errors
    /// See [`ServeCore::open_with_models`].
    pub fn open_with_models(
        &self,
        lm: Option<&str>,
        bias: Option<&str>,
    ) -> Result<SessionId, ServeError> {
        self.lock().open_with_models(lm, bias, self.shared.now_ms())
    }

    /// The registered LM names, default first.
    pub fn lm_names(&self) -> Vec<String> {
        self.lock().lm_names()
    }

    /// Registers (or hot-swaps) an LM under `name` without draining any
    /// session. Returns the replaced handle, if any.
    pub fn add_lm(&self, name: &str, lm: Arc<L>) -> Option<Arc<L>> {
        self.lock().add_lm(name, lm)
    }

    /// Removes `name` from the registry. Sessions pinned to it finish
    /// undisturbed; new sessions can no longer select it.
    ///
    /// # Errors
    /// See [`ServeCore::retire_lm`].
    pub fn retire_lm(&self, name: &str) -> Result<Arc<L>, ServeError> {
        self.lock().retire_lm(name)
    }

    /// The registered biasing-model names, in registration order.
    pub fn bias_names(&self) -> Vec<String> {
        self.lock().bias_names()
    }

    /// Registers (or hot-swaps) a biasing model under `name` without
    /// draining any session. Returns the replaced handle, if any.
    pub fn add_bias(
        &self,
        name: &str,
        bias: Arc<unfold_bias::BiasingFst>,
    ) -> Option<Arc<unfold_bias::BiasingFst>> {
        self.lock().add_bias(name, bias)
    }

    /// Removes `name` from the biasing registry. Sessions pinned to it
    /// finish undisturbed; new sessions can no longer select it.
    ///
    /// # Errors
    /// See [`ServeCore::retire_bias`].
    pub fn retire_bias(&self, name: &str) -> Result<Arc<unfold_bias::BiasingFst>, ServeError> {
        self.lock().retire_bias(name)
    }

    /// Queues one score row for `id` and wakes a worker.
    ///
    /// # Errors
    /// See [`ServeCore::push_frame`].
    pub fn push_frame(&self, id: SessionId, row: &[f32]) -> Result<(), ServeError> {
        let r = self.lock().push_frame(id, row, self.shared.now_ms());
        if r.is_ok() {
            self.shared.cv.notify_all();
        }
        r
    }

    /// Marks `id` finished; its result becomes collectable once the
    /// queue drains.
    ///
    /// # Errors
    /// See [`ServeCore::finish`].
    pub fn finish(&self, id: SessionId) -> Result<(), ServeError> {
        let r = self.lock().finish(id, self.shared.now_ms());
        if r.is_ok() {
            self.shared.cv.notify_all();
        }
        r
    }

    /// The session's current non-flickering partial transcript.
    ///
    /// # Errors
    /// See [`ServeCore::stable_partial`].
    pub fn stable_partial(&self, id: SessionId) -> Result<Vec<WordId>, ServeError> {
        self.lock().stable_partial(id)
    }

    /// A snapshot of the session's scheduling state.
    ///
    /// # Errors
    /// See [`ServeCore::view`].
    pub fn view(&self, id: SessionId) -> Result<SessionView, ServeError> {
        self.lock().view(id)
    }

    /// Blocks until `id`'s queued frames have all been decoded (or
    /// `timeout` passes). Returns whether the queue drained.
    pub fn wait_drained(&self, id: SessionId, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut core = self.lock();
        loop {
            match core.view(id) {
                Ok(v) if v.queued == 0 && !v.leased => return true,
                Err(_) => return false,
                Ok(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, deadline - now)
                .expect("serve lock");
            core = guard;
        }
    }

    /// Blocks until `id`'s final result is ready and collects it,
    /// freeing the slot. `Ok(None)` on timeout.
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] if the session vanished (evicted,
    /// or already collected).
    pub fn wait_result(
        &self,
        id: SessionId,
        timeout: Duration,
    ) -> Result<Option<DecodeResult>, ServeError> {
        let deadline = Instant::now() + timeout;
        let mut core = self.lock();
        loop {
            if let Some(res) = core.take_result(id)? {
                return Ok(Some(res));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, deadline - now)
                .expect("serve lock");
            core = guard;
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.lock().stats()
    }

    /// Sessions currently holding slots.
    pub fn active_sessions(&self) -> usize {
        self.lock().active_sessions()
    }

    /// Server metrics as one `unfold-obs` run record (JSONL).
    pub fn obs_jsonl(&self) -> String {
        self.lock().obs_jsonl()
    }

    /// Server metrics as a markdown table.
    pub fn obs_markdown(&self) -> String {
        self.lock().obs_markdown()
    }

    /// Closed session spans as JSONL (`sspan` records, close order).
    pub fn spans_jsonl(&self) -> String {
        self.lock().spans_jsonl()
    }

    /// Closed session spans as a Chrome `trace_event` JSON array.
    pub fn spans_chrome_trace(&self) -> String {
        self.lock().spans_chrome_trace()
    }

    /// `(opened, closed, still_open)` span counts since start.
    pub fn span_counts(&self) -> (u64, u64, usize) {
        self.lock().span_counts()
    }

    /// The flight recorder: the frozen incident dump if one was pinned,
    /// otherwise a live snapshot of the event ring.
    pub fn flight_jsonl(&self) -> String {
        self.lock().flight_jsonl()
    }

    /// `(reason, dump)` of the pinned incident snapshot, if any.
    pub fn flight_frozen(&self) -> Option<(String, String)> {
        self.lock()
            .flight_frozen()
            .map(|(reason, dump)| (reason.to_string(), dump.to_string()))
    }

    /// Asks the server (and any front ends polling this flag) to stop.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel, Utterance};
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Arc<Wfst>, Arc<Wfst>) {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        (lex, Arc::new(am.fst), Arc::new(lm_to_wfst(&model)))
    }

    /// Concurrent sessions through real worker threads still produce
    /// transcripts bit-identical to standalone decodes — worker
    /// scheduling is timing-dependent, results must not be.
    #[test]
    fn threaded_sessions_match_standalone_decode() {
        let (lex, am, lm) = setup();
        let word_seqs: [&[u32]; 4] = [&[3, 9, 17], &[7, 11, 4], &[22, 5], &[14, 30, 8]];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| {
                synthesize_utterance(
                    w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    40 + i as u64,
                )
            })
            .collect();
        let base = DecodeConfig::default();
        let standalone: Vec<_> = utts
            .iter()
            .map(|u| OtfDecoder::new(base).decode(&*am, &*lm, &u.scores, &mut NullSink))
            .collect();

        let config = ServeConfig {
            workers: 2,
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let server = Server::start(config, Arc::clone(&am), Arc::clone(&lm));
        let handle = server.handle();

        let joins: Vec<_> = utts
            .iter()
            .map(|u| {
                let handle = handle.clone();
                let rows: Vec<Vec<f32>> = (0..u.scores.num_frames())
                    .map(|t| u.scores.frame(t).to_vec())
                    .collect();
                std::thread::spawn(move || {
                    let id = handle.open().expect("admit");
                    for row in &rows {
                        handle.push_frame(id, row).expect("push");
                    }
                    handle.finish(id).expect("finish");
                    handle
                        .wait_result(id, Duration::from_secs(60))
                        .expect("known")
                        .expect("no timeout")
                })
            })
            .collect();
        let results: Vec<DecodeResult> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for (served, alone) in results.iter().zip(&standalone) {
            assert_eq!(served.words, alone.words);
            assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(served.stats, alone.stats);
        }
        assert_eq!(handle.stats().finals, 4);
        // Every slot is freed, so the span ledger balances and a clean
        // run pins no flight-recorder incident.
        let (opened, closed, open) = handle.span_counts();
        assert_eq!(opened, closed);
        assert_eq!(open, 0);
        assert!(handle.flight_frozen().is_none());
        assert!(!handle.spans_jsonl().is_empty());
        server.shutdown();
    }

    #[test]
    fn wait_drained_and_partials_work_under_workers() {
        let (lex, am, lm) = setup();
        let u = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            7,
        );
        let server = Server::start(
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
            Arc::clone(&am),
            Arc::clone(&lm),
        );
        let handle = server.handle();
        let id = handle.open().unwrap();
        for t in 0..u.scores.num_frames() {
            handle.push_frame(id, u.scores.frame(t)).unwrap();
        }
        assert!(handle.wait_drained(id, Duration::from_secs(30)));
        let partial = handle.stable_partial(id).unwrap();
        handle.finish(id).unwrap();
        let res = handle
            .wait_result(id, Duration::from_secs(30))
            .unwrap()
            .expect("final");
        assert!(
            partial.len() <= res.words.len() && res.words[..partial.len()] == partial[..],
            "stable partial {partial:?} must prefix the final {:?}",
            res.words
        );
        server.shutdown();
    }

    /// Two LMs hosted by one threaded server: sessions select per-open,
    /// run on real workers, and match standalone decodes against their
    /// own model bit for bit.
    #[test]
    fn threaded_multi_lm_sessions_match_standalone_per_lm_decodes() {
        let (lex, am, lm_a) = setup();
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model_b = NGramModel::train(&spec.generate(17), 50, DiscountConfig::default());
        let lm_b = Arc::new(lm_to_wfst(&model_b));
        let word_seqs: [&[u32]; 4] = [&[3, 9, 17], &[7, 11, 4], &[22, 5], &[14, 30, 8]];
        let utts: Vec<Utterance> = word_seqs
            .iter()
            .enumerate()
            .map(|(i, w)| {
                synthesize_utterance(
                    w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    40 + i as u64,
                )
            })
            .collect();
        let base = DecodeConfig::default();
        let pick = |i: usize| if i.is_multiple_of(2) { &lm_a } else { &lm_b };
        let standalone: Vec<_> = utts
            .iter()
            .enumerate()
            .map(|(i, u)| OtfDecoder::new(base).decode(&*am, &**pick(i), &u.scores, &mut NullSink))
            .collect();

        let config = ServeConfig {
            workers: 2,
            quantum_frames: 8,
            olt_entries: 0,
            base,
            ..Default::default()
        };
        let server = Server::start_multi(
            config,
            Arc::clone(&am),
            vec![
                ("default".to_string(), Arc::clone(&lm_a)),
                ("alt".to_string(), Arc::clone(&lm_b)),
            ],
        );
        let handle = server.handle();
        assert_eq!(handle.lm_names(), vec!["default", "alt"]);
        assert!(matches!(
            handle.open_with_lm(Some("missing")),
            Err(ServeError::UnknownModel(_))
        ));

        let joins: Vec<_> = utts
            .iter()
            .enumerate()
            .map(|(i, u)| {
                let handle = handle.clone();
                let rows: Vec<Vec<f32>> = (0..u.scores.num_frames())
                    .map(|t| u.scores.frame(t).to_vec())
                    .collect();
                std::thread::spawn(move || {
                    let name = if i % 2 == 0 { None } else { Some("alt") };
                    let id = handle.open_with_lm(name).expect("admit");
                    for row in &rows {
                        handle.push_frame(id, row).expect("push");
                    }
                    handle.finish(id).expect("finish");
                    handle
                        .wait_result(id, Duration::from_secs(60))
                        .expect("known")
                        .expect("no timeout")
                })
            })
            .collect();
        let results: Vec<DecodeResult> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for (served, alone) in results.iter().zip(&standalone) {
            assert_eq!(served.words, alone.words);
            assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(served.stats, alone.stats);
        }
        // Hot swap through the handle while the server runs.
        let retired = handle.retire_lm("alt").expect("retire");
        assert!(Arc::ptr_eq(&retired, &lm_b));
        assert!(handle.add_lm("alt2", lm_b).is_none());
        assert_eq!(handle.lm_names(), vec!["default", "alt2"]);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_workers_and_drop_is_clean() {
        let (_lex, am, lm) = setup();
        let server = Server::start(ServeConfig::default(), Arc::clone(&am), Arc::clone(&lm));
        let handle = server.handle();
        assert!(!handle.shutdown_requested());
        server.shutdown();
        assert!(handle.shutdown_requested());
        // Drop without explicit shutdown must also not hang.
        let server2 = Server::start(ServeConfig::default(), am, lm);
        drop(server2);
    }
}
