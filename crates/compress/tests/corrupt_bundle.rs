//! Corrupt-bundle robustness: a hostile or damaged `.unfb` must always
//! come back as a typed [`BundleError`] — never a panic, never an
//! over-read past the section table's declared bounds.
//!
//! The strategies here mirror how bundles actually rot: truncated
//! downloads (cut at and around every section boundary, plus a sweep),
//! single flipped bits in the header, table, and payloads, and a
//! crafted table whose sections alias the same byte range.

use unfold_am::{build_am, HmmTopology, Lexicon};
use unfold_compress::{
    crc64, Bundle, BundleError, BundleWriter, CompressedAm, CompressedLm, SectionKind,
};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

/// Header bytes before the section table (magic + version + count +
/// table length), mirroring the format spec in `bundle.rs`.
const HEADER_BYTES: usize = 16;

fn small_models() -> (CompressedAm, CompressedLm) {
    let fst = build_am(&Lexicon::generate(30, 10, 3), HmmTopology::Kaldi3State).fst;
    let am = CompressedAm::compress(&fst, 64, 0);
    let spec = CorpusSpec {
        vocab_size: 30,
        num_sentences: 100,
        ..Default::default()
    };
    let model = NGramModel::train(&spec.generate(5), 30, DiscountConfig::default());
    let lm = CompressedLm::compress(&lm_to_wfst(&model), 64, 5);
    (am, lm)
}

fn bundle_bytes() -> Vec<u8> {
    let (am, lm) = small_models();
    let mut w = BundleWriter::new();
    w.add_am(&am)
        .add_lm("default", &lm)
        .add_symtab("words", b"0 a\n1 b\n".to_vec())
        .add_meta("task", b"corrupt-bundle-test".to_vec());
    w.finish().unwrap()
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("unfold-corrupt-{}-{name}.unfb", std::process::id()))
}

/// Byte offset where section payloads start (header + table + table
/// CRC), read back out of the intact header.
fn data_start(bytes: &[u8]) -> usize {
    let table_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    HEADER_BYTES + table_len + 8
}

#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let bytes = bundle_bytes();
    let sections: Vec<(usize, usize)> = {
        let b = Bundle::from_bytes(bytes.clone()).unwrap();
        b.sections().iter().map(|s| (s.offset, s.len)).collect()
    };

    // Every byte of the header + table region, every section boundary
    // (start, end, and one byte either side), and a coarse sweep of
    // the payload region.
    let mut cuts: Vec<usize> = (0..data_start(&bytes)).collect();
    for &(off, len) in &sections {
        for cut in [
            off.saturating_sub(1),
            off,
            off + 1,
            off + len - 1,
            off + len,
        ] {
            cuts.push(cut);
        }
    }
    cuts.extend((data_start(&bytes)..bytes.len()).step_by(97));

    for cut in cuts {
        if cut >= bytes.len() {
            continue;
        }
        let err = Bundle::from_bytes(bytes[..cut].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation to {cut} bytes opened clean"));
        // Any typed BundleError is acceptable; reaching here at all
        // means no panic and no over-read.
        let _ = format!("{err}");
    }

    // The same truncations through the mmap path (a cut file on disk).
    let path = tmp("truncate");
    for &(off, len) in &sections {
        std::fs::write(&path, &bytes[..off + len - 1]).unwrap();
        assert!(
            Bundle::open_mmap(&path).is_err() || {
                // A cut inside the *last* payload still parses the
                // table only if the table says otherwise; lazy opens
                // must then fail verification instead.
                Bundle::open_mmap(&path).unwrap().verify_all().is_err()
            },
            "file cut at {} opened and verified clean",
            off + len - 1
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_header_and_table_bytes_are_typed_errors() {
    let bytes = bundle_bytes();
    let start = data_start(&bytes);

    for pos in 0..start {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        let err = Bundle::from_bytes(bad)
            .err()
            .unwrap_or_else(|| panic!("flipped byte {pos} opened clean"));
        match (pos, &err) {
            (0..=3, BundleError::BadMagic) => {}
            (4..=7, BundleError::BadVersion(_)) => {}
            // Anything else lands in the table or its CRC: count/len
            // corruption, a table-checksum mismatch, or a structurally
            // invalid table — all typed.
            (_, e) => {
                let _ = format!("{e}");
            }
        }
    }
}

#[test]
fn flipped_payload_bytes_fail_their_sections_checksum() {
    let bytes = bundle_bytes();
    let sections: Vec<(String, usize, usize)> = {
        let b = Bundle::from_bytes(bytes.clone()).unwrap();
        b.sections()
            .iter()
            .map(|s| (s.name.clone(), s.offset, s.len))
            .collect()
    };

    let path = tmp("flip");
    for (name, off, len) in sections {
        let mut bad = bytes.clone();
        bad[off + len / 2] ^= 0x80;

        // Eager open: rejected immediately, naming the section.
        match Bundle::from_bytes(bad.clone()) {
            Err(BundleError::ChecksumMismatch(s)) => assert_eq!(s, name),
            other => panic!("payload flip in '{name}': {other:?}"),
        }

        // Lazy mmap open: opens (checksums deferred), then the flipped
        // section — and only a full verification — reports it.
        std::fs::write(&path, &bad).unwrap();
        let b = Bundle::open_mmap(&path).unwrap();
        match b.verify_all() {
            Err(BundleError::ChecksumMismatch(s)) => assert_eq!(s, name),
            other => panic!("mmap verify of flipped '{name}': {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn overlapping_section_offsets_are_rejected() {
    let bytes = bundle_bytes();

    // Walk the table to the second entry's offset field and point it
    // at the first section's payload, then re-seal the table CRC so
    // only the overlap check can object.
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    assert!(count >= 2);
    let table_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut pos = HEADER_BYTES;
    let mut first_offset = None;
    let mut patched = bytes.clone();
    for i in 0..2 {
        let name_len = u32::from_le_bytes(patched[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let offset_pos = pos + 8 + name_len;
        let offset = u64::from_le_bytes(patched[offset_pos..offset_pos + 8].try_into().unwrap());
        match i {
            0 => first_offset = Some(offset),
            _ => patched[offset_pos..offset_pos + 8]
                .copy_from_slice(&first_offset.unwrap().to_le_bytes()),
        }
        pos = offset_pos + 24; // skip offset + len + crc
    }
    let crc = crc64(&patched[..HEADER_BYTES + table_len]);
    patched[HEADER_BYTES + table_len..HEADER_BYTES + table_len + 8]
        .copy_from_slice(&crc.to_le_bytes());

    match Bundle::from_bytes(patched) {
        Err(BundleError::Corrupt(msg)) => assert!(msg.contains("overlap"), "got: {msg}"),
        other => panic!("aliased sections opened: {other:?}"),
    }
}

#[test]
fn section_kind_confusion_is_a_typed_error() {
    // Ask for the AM out of a bundle whose "am" payload is actually LM
    // bytes: the model-level magic check must reject it (the container
    // checksums are all valid).
    let (_, lm) = small_models();
    let lm2 = lm.clone();
    let mut w = BundleWriter::new();
    // add_am writes the section with the AM kind tag regardless of the
    // payload we hand it — simulate a confused producer by packing an
    // LM's bytes under the AM section via the public writer is not
    // possible, so corrupt at the model layer instead: an LM section
    // asked for as an AM.
    let fst = build_am(&Lexicon::generate(30, 10, 3), HmmTopology::Kaldi3State).fst;
    let am = CompressedAm::compress(&fst, 64, 0);
    w.add_am(&am).add_lm("default", &lm).add_lm("alt", &lm2);
    let b = Bundle::from_bytes(w.finish().unwrap()).unwrap();
    match b.lm_layout("am") {
        Err(BundleError::MissingSection(s)) => assert!(s.contains("am"), "got: {s}"),
        other => panic!("LM lookup of an AM name: {other:?}"),
    }
    assert!(matches!(
        b.section_bytes(SectionKind::Am, "default"),
        Err(BundleError::MissingSection(_))
    ));
}
