//! Compression of the *fully-composed* WFST.
//!
//! This is the reproduction of the paper's "Fully-Composed+Comp"
//! comparator (Price et al. \[23\], Table 2 / Figure 8): the offline-
//! composed graph compressed with general-purpose WFST techniques —
//! quantized weights, delta-coded labels and destinations, variable-
//! length integers. The composed graph has none of the structural
//! regularities the individual AM/LM enjoy (no positional unigram trick,
//! no 2-bit locality tags that dominate), which is why the paper finds
//! its compression saturates around 3–4x while UNFOLD's split datasets
//! reach 23–35x.

use unfold_wfst::{Arc, StateId, Wfst, EPSILON};

use crate::bits::{BitReader, BitWriter};
use crate::quant::WeightQuantizer;

const WEIGHT_BITS: u32 = 6;

/// Writes `v` as nibble-groups: 3 payload bits + 1 continuation bit.
fn push_varint(w: &mut BitWriter, mut v: u64) {
    loop {
        let payload = v & 0b111;
        v >>= 3;
        let cont = u64::from(v != 0);
        w.push(payload | (cont << 3), 4);
        if v == 0 {
            break;
        }
    }
}

/// Reads a nibble varint at `off`; returns `(value, new_offset)`.
fn read_varint(r: &BitReader, mut off: u64) -> (u64, u64) {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let nib = r.read(off, 4);
        off += 4;
        v |= (nib & 0b111) << shift;
        shift += 3;
        if nib & 0b1000 == 0 {
            return (v, off);
        }
        assert!(shift < 63, "read_varint: runaway continuation");
    }
}

/// ZigZag-encodes a signed delta.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A composed WFST in the baseline compressed format.
#[derive(Debug, Clone)]
pub struct CompressedComposed {
    /// Bit offset of each state's arc block.
    state_offsets: Vec<u64>,
    narcs: Vec<u32>,
    reader: BitReader,
    quant: WeightQuantizer,
    start: StateId,
}

impl CompressedComposed {
    /// Compresses a composed WFST. Arcs are re-sorted by input label per
    /// state (required for delta coding; harmless for decoding).
    ///
    /// # Panics
    /// Panics if `fst` is empty.
    pub fn compress(fst: &Wfst, k: usize, seed: u64) -> Self {
        assert!(fst.num_states() > 0, "compress: empty WFST");
        let weights: Vec<f32> = fst
            .states()
            .flat_map(|s| fst.arcs(s).iter().map(|a| a.weight))
            .collect();
        let quant =
            WeightQuantizer::fit(if weights.is_empty() { &[0.0] } else { &weights }, k, seed);

        let mut w = BitWriter::new();
        let mut state_offsets = Vec::with_capacity(fst.num_states());
        let mut narcs = Vec::with_capacity(fst.num_states());
        for s in fst.states() {
            state_offsets.push(w.len_bits());
            let mut arcs: Vec<Arc> = fst.arcs(s).to_vec();
            arcs.sort_by_key(|a| a.ilabel);
            narcs.push(arcs.len() as u32);
            let mut prev_ilabel = 0u32;
            for a in &arcs {
                push_varint(&mut w, u64::from(a.ilabel - prev_ilabel));
                prev_ilabel = a.ilabel;
                // Output labels are mostly epsilon: 1 flag bit, varint if set.
                if a.olabel == EPSILON {
                    w.push(0, 1);
                } else {
                    w.push(1, 1);
                    push_varint(&mut w, u64::from(a.olabel));
                }
                push_varint(&mut w, zigzag(i64::from(a.nextstate) - i64::from(s)));
                w.push(u64::from(quant.encode(a.weight)), WEIGHT_BITS);
            }
        }
        CompressedComposed {
            state_offsets,
            narcs,
            reader: BitReader::new(w.finish()),
            quant,
            start: fst.start(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.state_offsets.len()
    }

    /// Total size in bytes: bit stream + 8-byte state records +
    /// centroid table.
    pub fn size_bytes(&self) -> u64 {
        self.reader.buf().size_bytes()
            + self.state_offsets.len() as u64 * 8
            + self.quant.table_bytes()
    }

    /// Decodes the arcs of `s` (ilabel-sorted, quantized weights).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn decode_arcs(&self, s: StateId) -> Vec<Arc> {
        let mut off = self.state_offsets[s as usize];
        let n = self.narcs[s as usize];
        let mut out = Vec::with_capacity(n as usize);
        let mut ilabel = 0u32;
        for _ in 0..n {
            let (d, o) = read_varint(&self.reader, off);
            off = o;
            ilabel += d as u32;
            let flag = self.reader.read(off, 1);
            off += 1;
            let olabel = if flag == 1 {
                let (v, o) = read_varint(&self.reader, off);
                off = o;
                v as u32
            } else {
                EPSILON
            };
            let (zz, o) = read_varint(&self.reader, off);
            off = o;
            let dest = (i64::from(s) + unzigzag(zz)) as StateId;
            let widx = self.reader.read(off, WEIGHT_BITS) as u8;
            off += u64::from(WEIGHT_BITS);
            out.push(Arc::new(ilabel, olabel, self.quant.decode(widx), dest));
        }
        out
    }

    /// Start state.
    pub fn start(&self) -> StateId {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, HmmTopology, Lexicon};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::{compose_am_lm, ComposeOptions, SizeModel};

    fn composed() -> Wfst {
        let lex = Lexicon::generate(60, 20, 3);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 60,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(4), 60, DiscountConfig::default());
        let lm = lm_to_wfst(&model);
        compose_am_lm(&am.fst, &lm, ComposeOptions::default())
    }

    #[test]
    fn varint_roundtrip() {
        let mut w = BitWriter::new();
        let vals = [0u64, 1, 7, 8, 63, 64, 1000, 123_456_789];
        for &v in &vals {
            push_varint(&mut w, v);
        }
        let r = BitReader::new(w.finish());
        let mut off = 0;
        for &v in &vals {
            let (got, o) = read_varint(&r, off);
            assert_eq!(got, v);
            off = o;
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 5, 999_999] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn decode_matches_original_up_to_sort_and_quant() {
        let fst = composed();
        let comp = CompressedComposed::compress(&fst, 64, 0);
        assert_eq!(comp.num_states(), fst.num_states());
        for s in fst.states() {
            let mut want: Vec<Arc> = fst.arcs(s).to_vec();
            want.sort_by_key(|a| a.ilabel);
            let got = comp.decode_arcs(s);
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.ilabel, b.ilabel);
                assert_eq!(a.olabel, b.olabel);
                assert_eq!(a.nextstate, b.nextstate);
                assert!(
                    (a.weight - b.weight).abs() < 2.0,
                    "tail outlier beyond codebook reach"
                );
            }
        }
    }

    #[test]
    fn compression_beats_uncompressed_but_not_split_models() {
        // The paper's key size relationship: composed+comp saturates
        // around 3-4x; this test checks the lower bound only (the full
        // comparison against the split models lives in the size benches).
        let fst = composed();
        let comp = CompressedComposed::compress(&fst, 64, 0);
        let ratio = SizeModel::UNCOMPRESSED.bytes(&fst) as f64 / comp.size_bytes() as f64;
        assert!(ratio > 2.0, "ratio {ratio}");
    }
}
