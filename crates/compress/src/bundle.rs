//! The `.unfb` model bundle: one file, every model.
//!
//! UNFOLD deploys as "tens of megabytes instead of a gigabyte" (§5.3);
//! operationally that should be *one artifact*, not a scatter of
//! `.unfa`/`.unfl` files that can drift apart. A bundle is a single
//! versioned container holding a compressed AM, one or more *named*
//! compressed LMs (the multi-LM serving workload of Liu et al.'s
//! personalized-LM decoder), optional symbol tables, and metadata:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "UNFB"
//! 4       4     version (LE u32, currently 1)
//! 8       4     section count
//! 12      4     section-table length in bytes
//! 16      ...   section table: per section
//!                 kind u32 · name-len u32 · name (UTF-8)
//!                 offset u64 · length u64 · CRC-64 u64
//! ..      8     CRC-64 of everything above (header + table)
//! ..      ...   payloads, 8-byte aligned, non-overlapping
//! ```
//!
//! Offsets are absolute file offsets, so a section can be handed to a
//! parser as a plain byte slice of the mapped file. Payload CRCs
//! (CRC-64/ECMA) make corruption a *typed error* instead of a decode
//! anomaly: [`Bundle::open`] verifies every section eagerly; the
//! mmap-backed [`Bundle::open_mmap`] verifies the header and table
//! eagerly (cheap) and each payload lazily — once, memoized, the
//! first time the section is accessed through [`Bundle::section_bytes`]
//! or bound to a [`SharedAm`]/[`SharedLm`] handle. Opening a mapped
//! bundle therefore never copies or hashes the arc bit streams;
//! *binding* a model streams one CRC pass over its (mapped, page-cache
//! backed) section so every later infallible `view()` decodes verified
//! bytes.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crate::am::CompressedAm;
use crate::io::{ByteReader, ByteWriter, ModelIoError};
use crate::lm::CompressedLm;
use crate::mmap::Mapped;
use crate::refs::{AmLayout, CompressedAmRef, CompressedLmRef, LmLayout};

/// Magic bytes of a `.unfb` bundle.
pub const BUNDLE_MAGIC: [u8; 4] = *b"UNFB";
/// Bundle container version.
pub const BUNDLE_VERSION: u32 = 1;
/// Hard cap on section count (a hostile header must not drive huge
/// allocations).
const MAX_SECTIONS: usize = 4096;
/// Fixed header bytes before the section table.
const HEADER_BYTES: usize = 16;

/// What a bundle section holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// A serialized compressed AM (`UNFA`). Exactly one per bundle.
    Am,
    /// A serialized compressed LM (`UNFL`). One or more, uniquely named.
    Lm,
    /// A symbol table (word id → spelling), newline-separated.
    SymTab,
    /// Free-form metadata bytes.
    Meta,
    /// A serialized biasing model (phrase list; see `unfold-bias`).
    /// Zero or more, uniquely named.
    Bias,
}

impl SectionKind {
    fn code(self) -> u32 {
        match self {
            SectionKind::Am => 1,
            SectionKind::Lm => 2,
            SectionKind::SymTab => 3,
            SectionKind::Meta => 4,
            SectionKind::Bias => 5,
        }
    }

    fn from_code(code: u32) -> Option<SectionKind> {
        match code {
            1 => Some(SectionKind::Am),
            2 => Some(SectionKind::Lm),
            3 => Some(SectionKind::SymTab),
            4 => Some(SectionKind::Meta),
            5 => Some(SectionKind::Bias),
            _ => None,
        }
    }

    /// Human-readable kind tag (`inspect` output).
    pub fn tag(self) -> &'static str {
        match self {
            SectionKind::Am => "am",
            SectionKind::Lm => "lm",
            SectionKind::SymTab => "symtab",
            SectionKind::Meta => "meta",
            SectionKind::Bias => "bias",
        }
    }
}

/// One entry of a bundle's section table.
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section kind.
    pub kind: SectionKind,
    /// Section name (unique per kind).
    pub name: String,
    /// Absolute payload offset in the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// CRC-64 of the payload.
    pub crc: u64,
}

/// Errors from writing, opening, or reading a bundle.
#[derive(Debug)]
pub enum BundleError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// The file ended before the declared content.
    Truncated,
    /// Structurally invalid header or section table.
    Corrupt(&'static str),
    /// A stored checksum did not match the bytes (section name, or
    /// `"table"` for the header checksum).
    ChecksumMismatch(String),
    /// A required section is absent.
    MissingSection(String),
    /// Two sections of one kind share a name.
    DuplicateSection(String),
    /// A model section failed to parse.
    Model {
        /// Offending section name.
        section: String,
        /// The model-level error.
        err: ModelIoError,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle I/O: {e}"),
            BundleError::BadMagic => write!(f, "not a .unfb bundle (bad magic)"),
            BundleError::BadVersion(v) => write!(f, "unsupported bundle version {v}"),
            BundleError::Truncated => write!(f, "bundle truncated"),
            BundleError::Corrupt(what) => write!(f, "corrupt bundle: {what}"),
            BundleError::ChecksumMismatch(name) => {
                write!(f, "checksum mismatch in section '{name}'")
            }
            BundleError::MissingSection(name) => write!(f, "bundle has no section '{name}'"),
            BundleError::DuplicateSection(name) => {
                write!(f, "duplicate bundle section '{name}'")
            }
            BundleError::Model { section, err } => {
                write!(f, "model section '{section}' invalid: {err}")
            }
        }
    }
}

impl std::error::Error for BundleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BundleError::Io(e) => Some(e),
            BundleError::Model { err, .. } => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        BundleError::Io(e)
    }
}

/// CRC-64/ECMA (reflected, `!0` init and final xor) over `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    });
    let mut crc = !0u64;
    for &b in bytes {
        crc = table[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Assembles a `.unfb` bundle.
#[derive(Default)]
pub struct BundleWriter {
    sections: Vec<(SectionKind, String, Vec<u8>)>,
}

impl BundleWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the bundle's AM (exactly one; named `"am"`).
    pub fn add_am(&mut self, am: &CompressedAm) -> &mut Self {
        self.sections
            .push((SectionKind::Am, "am".to_string(), am.to_bytes()));
        self
    }

    /// Adds a named LM.
    pub fn add_lm(&mut self, name: &str, lm: &CompressedLm) -> &mut Self {
        self.sections
            .push((SectionKind::Lm, name.to_string(), lm.to_bytes()));
        self
    }

    /// Adds a symbol table.
    pub fn add_symtab(&mut self, name: &str, bytes: Vec<u8>) -> &mut Self {
        self.sections
            .push((SectionKind::SymTab, name.to_string(), bytes));
        self
    }

    /// Adds a metadata section.
    pub fn add_meta(&mut self, name: &str, bytes: Vec<u8>) -> &mut Self {
        self.sections
            .push((SectionKind::Meta, name.to_string(), bytes));
        self
    }

    /// Adds a named biasing model (serialized phrase list; the crate
    /// boundary keeps this raw bytes — `unfold-bias` sits above the
    /// compression layer).
    pub fn add_bias(&mut self, name: &str, bytes: Vec<u8>) -> &mut Self {
        self.sections
            .push((SectionKind::Bias, name.to_string(), bytes));
        self
    }

    /// Serializes the bundle.
    ///
    /// # Errors
    /// [`BundleError::MissingSection`] unless exactly one AM and at
    /// least one LM were added; [`BundleError::DuplicateSection`] on
    /// name collisions within a kind; [`BundleError::Corrupt`] on
    /// over-long names.
    pub fn finish(&self) -> Result<Vec<u8>, BundleError> {
        let am_count = self
            .sections
            .iter()
            .filter(|(k, _, _)| *k == SectionKind::Am)
            .count();
        if am_count != 1 {
            return Err(BundleError::MissingSection("am".into()));
        }
        if !self.sections.iter().any(|(k, _, _)| *k == SectionKind::Lm) {
            return Err(BundleError::MissingSection("lm".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for (kind, name, _) in &self.sections {
            if name.len() > 255 {
                return Err(BundleError::Corrupt("section name too long"));
            }
            if !seen.insert((kind.code(), name.as_str())) {
                return Err(BundleError::DuplicateSection(name.clone()));
            }
        }

        // Lay the table out first to learn payload offsets.
        let mut table_len = 0usize;
        for (_, name, _) in &self.sections {
            table_len += 4 + 4 + name.len() + 8 + 8 + 8;
        }
        let data_start = HEADER_BYTES + table_len + 8; // + table CRC
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = data_start;
        for (_, _, bytes) in &self.sections {
            cursor = cursor.div_ceil(8) * 8;
            offsets.push(cursor);
            cursor += bytes.len();
        }

        let mut w = ByteWriter::default();
        w.out.extend_from_slice(&BUNDLE_MAGIC);
        w.u32(BUNDLE_VERSION);
        w.u32(self.sections.len() as u32);
        w.u32(table_len as u32);
        for ((kind, name, bytes), &offset) in self.sections.iter().zip(&offsets) {
            w.u32(kind.code());
            w.u32(name.len() as u32);
            w.out.extend_from_slice(name.as_bytes());
            w.u64(offset as u64);
            w.u64(bytes.len() as u64);
            w.u64(crc64(bytes));
        }
        debug_assert_eq!(w.out.len(), HEADER_BYTES + table_len);
        let table_crc = crc64(&w.out);
        w.u64(table_crc);
        for ((_, _, bytes), &offset) in self.sections.iter().zip(&offsets) {
            w.out.resize(offset, 0);
            w.out.extend_from_slice(bytes);
        }
        Ok(w.out)
    }

    /// Serializes and writes the bundle to `path`.
    ///
    /// # Errors
    /// As [`BundleWriter::finish`], plus file I/O.
    pub fn write_to(&self, path: &Path) -> Result<(), BundleError> {
        let bytes = self.finish()?;
        std::fs::write(path, bytes)?;
        Ok(())
    }
}

enum BundleData {
    Owned(Vec<u8>),
    Mapped(Mapped),
}

/// An opened `.unfb` bundle: the bytes (owned or mapped) plus the
/// verified section table.
pub struct Bundle {
    data: BundleData,
    sections: Vec<SectionInfo>,
    /// Per-section payload-CRC verification memo (lazy on mmap opens).
    verified: Vec<AtomicBool>,
}

impl std::fmt::Debug for Bundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bundle")
            .field("bytes", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .field("sections", &self.sections)
            .finish()
    }
}

impl Bundle {
    /// Parses an in-memory bundle, eagerly verifying the table and
    /// every payload checksum.
    ///
    /// # Errors
    /// Any [`BundleError`] the container fails.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Bundle, BundleError> {
        let sections = parse_table(&bytes)?;
        let bundle = Bundle {
            verified: sections.iter().map(|_| AtomicBool::new(false)).collect(),
            sections,
            data: BundleData::Owned(bytes),
        };
        bundle.verify_all()?;
        Ok(bundle)
    }

    /// Opens a bundle by reading the whole file into memory (eager
    /// checksum verification) — today's loading model.
    ///
    /// # Errors
    /// File I/O plus any [`BundleError`] the container fails.
    pub fn open(path: &Path) -> Result<Bundle, BundleError> {
        Bundle::from_bytes(std::fs::read(path)?)
    }

    /// Opens a bundle zero-copy: the file is mmap-ed (on Linux x86-64;
    /// read-fallback elsewhere), the header and section table are
    /// verified, and payload checksums are deferred to first section
    /// access ([`Bundle::section_bytes`], or binding a
    /// [`SharedAm`]/[`SharedLm`]). Never copies or touches the arc bit
    /// streams at open time.
    ///
    /// # Errors
    /// File I/O plus header/table-level [`BundleError`]s.
    pub fn open_mmap(path: &Path) -> Result<Bundle, BundleError> {
        let mapped = Mapped::open(path)?;
        let sections = parse_table(mapped.as_bytes())?;
        Ok(Bundle {
            verified: sections.iter().map(|_| AtomicBool::new(false)).collect(),
            sections,
            data: BundleData::Mapped(mapped),
        })
    }

    /// The full file bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            BundleData::Owned(v) => v,
            BundleData::Mapped(m) => m.as_bytes(),
        }
    }

    /// Whether the bytes are a kernel memory mapping.
    pub fn is_mapped(&self) -> bool {
        match &self.data {
            BundleData::Owned(_) => false,
            BundleData::Mapped(m) => m.is_mapped(),
        }
    }

    /// The section table, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    fn index_of(&self, kind: SectionKind, name: &str) -> Option<usize> {
        self.sections
            .iter()
            .position(|s| s.kind == kind && s.name == name)
    }

    /// Payload bytes of section (`kind`, `name`), verifying its
    /// checksum on first access.
    ///
    /// # Errors
    /// [`BundleError::MissingSection`] or
    /// [`BundleError::ChecksumMismatch`].
    pub fn section_bytes(&self, kind: SectionKind, name: &str) -> Result<&[u8], BundleError> {
        let idx = self
            .index_of(kind, name)
            .ok_or_else(|| BundleError::MissingSection(format!("{} '{name}'", kind.tag())))?;
        let info = &self.sections[idx];
        let payload = &self.bytes()[info.offset..info.offset + info.len];
        if !self.verified[idx].load(Ordering::Relaxed) {
            if crc64(payload) != info.crc {
                return Err(BundleError::ChecksumMismatch(info.name.clone()));
            }
            self.verified[idx].store(true, Ordering::Relaxed);
        }
        Ok(payload)
    }

    /// Payload bytes *without* the checksum pass — for layout parsing
    /// only, which reads a section's fixed-size header (a total,
    /// fuzz-pinned parse that returns typed errors on any input). On
    /// owned opens every payload was already verified eagerly; on
    /// mapped opens this is exactly the path that must not fault in
    /// the arc bit streams. Anything that will *decode* the payload
    /// ([`SharedAm::new`]/[`SharedLm::new`], `load_am`/`load_lm`) goes
    /// through [`Bundle::section_bytes`] instead, so no decode path
    /// ever runs on checksum-unverified bytes.
    ///
    /// # Errors
    /// [`BundleError::MissingSection`].
    fn raw_section_bytes(&self, kind: SectionKind, name: &str) -> Result<&[u8], BundleError> {
        let info = self
            .index_of(kind, name)
            .map(|idx| &self.sections[idx])
            .ok_or_else(|| BundleError::MissingSection(format!("{} '{name}'", kind.tag())))?;
        Ok(&self.bytes()[info.offset..info.offset + info.len])
    }

    /// Verifies every payload checksum (eager opens; `inspect`).
    ///
    /// # Errors
    /// [`BundleError::ChecksumMismatch`] naming the first bad section.
    pub fn verify_all(&self) -> Result<(), BundleError> {
        for info in &self.sections {
            self.section_bytes(info.kind, &info.name)?;
        }
        Ok(())
    }

    /// Names of the LM sections, in file order; the first is the
    /// default model for sessions that do not pick one.
    pub fn lm_names(&self) -> Vec<&str> {
        self.sections
            .iter()
            .filter(|s| s.kind == SectionKind::Lm)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Names of the biasing-model sections, in file order.
    pub fn bias_names(&self) -> Vec<&str> {
        self.sections
            .iter()
            .filter(|s| s.kind == SectionKind::Bias)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// A named biasing-model payload (checksum-verified). The caller
    /// deserializes it with `unfold_bias::BiasingFst::from_bytes`.
    ///
    /// # Errors
    /// Missing section or checksum failures.
    pub fn bias_bytes(&self, name: &str) -> Result<&[u8], BundleError> {
        self.section_bytes(SectionKind::Bias, name)
    }

    /// Parses the AM section header. Reads only the header bytes — no
    /// arc-stream copy, and (on mapped bundles) no checksum pass over
    /// the payload.
    ///
    /// # Errors
    /// Missing section or model-parse failures.
    pub fn am_layout(&self) -> Result<AmLayout, BundleError> {
        let bytes = self.raw_section_bytes(SectionKind::Am, "am")?;
        AmLayout::parse(bytes).map_err(|err| BundleError::Model {
            section: "am".into(),
            err,
        })
    }

    /// Parses a named LM section header; see [`Bundle::am_layout`].
    ///
    /// # Errors
    /// Missing section or model-parse failures.
    pub fn lm_layout(&self, name: &str) -> Result<LmLayout, BundleError> {
        let bytes = self.raw_section_bytes(SectionKind::Lm, name)?;
        LmLayout::parse(bytes).map_err(|err| BundleError::Model {
            section: name.into(),
            err,
        })
    }

    /// Loads the AM as an owned [`CompressedAm`] (copying; full
    /// structural validation).
    ///
    /// # Errors
    /// Missing section, checksum, or model-parse failures.
    pub fn load_am(&self) -> Result<CompressedAm, BundleError> {
        let bytes = self.section_bytes(SectionKind::Am, "am")?;
        CompressedAm::from_bytes(bytes).map_err(|err| BundleError::Model {
            section: "am".into(),
            err,
        })
    }

    /// Loads a named LM as an owned [`CompressedLm`].
    ///
    /// # Errors
    /// Missing section, checksum, or model-parse failures.
    pub fn load_lm(&self, name: &str) -> Result<CompressedLm, BundleError> {
        let bytes = self.section_bytes(SectionKind::Lm, name)?;
        CompressedLm::from_bytes(bytes).map_err(|err| BundleError::Model {
            section: name.into(),
            err,
        })
    }

    /// Metadata payload by name, if present (checksum-verified).
    ///
    /// # Errors
    /// [`BundleError::ChecksumMismatch`] if present but corrupt.
    pub fn meta(&self, name: &str) -> Result<Option<&[u8]>, BundleError> {
        if self.index_of(SectionKind::Meta, name).is_none() {
            return Ok(None);
        }
        self.section_bytes(SectionKind::Meta, name).map(Some)
    }

    /// Symbol-table payload by name, if present (checksum-verified).
    ///
    /// # Errors
    /// [`BundleError::ChecksumMismatch`] if present but corrupt.
    pub fn symtab(&self, name: &str) -> Result<Option<&[u8]>, BundleError> {
        if self.index_of(SectionKind::SymTab, name).is_none() {
            return Ok(None);
        }
        self.section_bytes(SectionKind::SymTab, name).map(Some)
    }
}

/// Parses and verifies the fixed header and section table.
fn parse_table(bytes: &[u8]) -> Result<Vec<SectionInfo>, BundleError> {
    if bytes.len() < HEADER_BYTES {
        return Err(BundleError::Truncated);
    }
    if bytes[..4] != BUNDLE_MAGIC {
        return Err(BundleError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != BUNDLE_VERSION {
        return Err(BundleError::BadVersion(version));
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    if count == 0 || count > MAX_SECTIONS {
        return Err(BundleError::Corrupt("section count out of range"));
    }
    let table_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let data_start = HEADER_BYTES
        .checked_add(table_len)
        .and_then(|n| n.checked_add(8))
        .ok_or(BundleError::Truncated)?;
    if data_start > bytes.len() {
        return Err(BundleError::Truncated);
    }
    let stored_crc = u64::from_le_bytes(
        bytes[HEADER_BYTES + table_len..data_start]
            .try_into()
            .expect("8 bytes"),
    );
    if crc64(&bytes[..HEADER_BYTES + table_len]) != stored_crc {
        return Err(BundleError::ChecksumMismatch("table".into()));
    }

    let mut r = ByteReader::new(&bytes[HEADER_BYTES..HEADER_BYTES + table_len]);
    let mut sections = Vec::with_capacity(count);
    let mut am_count = 0usize;
    let mut lm_count = 0usize;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..count {
        let (kind_code, name_len) = (table_field(r.u32())?, table_field(r.u32())? as usize);
        let kind = SectionKind::from_code(kind_code)
            .ok_or(BundleError::Corrupt("unknown section kind"))?;
        if name_len > 255 {
            return Err(BundleError::Corrupt("section name too long"));
        }
        let name = std::str::from_utf8(table_field(r.take(name_len))?)
            .map_err(|_| BundleError::Corrupt("section name not UTF-8"))?
            .to_string();
        let offset = table_field(r.u64())? as usize;
        let len_u64 = table_field(r.u64())?;
        let crc = table_field(r.u64())?;
        let len = usize::try_from(len_u64).map_err(|_| BundleError::Truncated)?;
        if offset < data_start || offset.checked_add(len).is_none_or(|end| end > bytes.len()) {
            return Err(BundleError::Truncated);
        }
        if !seen.insert((kind_code, name.clone())) {
            return Err(BundleError::DuplicateSection(name));
        }
        am_count += usize::from(kind == SectionKind::Am);
        lm_count += usize::from(kind == SectionKind::Lm);
        sections.push(SectionInfo {
            kind,
            name,
            offset,
            len,
            crc,
        });
    }
    if !r.done() {
        return Err(BundleError::Corrupt("section table has trailing bytes"));
    }
    if am_count != 1 {
        return Err(BundleError::MissingSection("am".into()));
    }
    if lm_count == 0 {
        return Err(BundleError::MissingSection("lm".into()));
    }
    // Payloads must not overlap (a crafted table must not alias one
    // byte range under two checksums).
    let mut ranges: Vec<(usize, usize)> = sections.iter().map(|s| (s.offset, s.len)).collect();
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        if w[0].0 + w[0].1 > w[1].0 {
            return Err(BundleError::Corrupt("sections overlap"));
        }
    }
    Ok(sections)
}

/// Maps a table-cursor read error (always `Truncated` relative to the
/// declared table length) to a table-corruption error.
fn table_field<T>(r: Result<T, ModelIoError>) -> Result<T, BundleError> {
    r.map_err(|_| BundleError::Corrupt("section table truncated"))
}

/// The AM of a ref-counted bundle, usable as a long-lived owned value
/// (serve's model registry) while still decoding zero-copy out of the
/// bundle bytes via [`SharedAm::view`].
#[derive(Debug, Clone)]
pub struct SharedAm {
    bundle: Arc<Bundle>,
    layout: AmLayout,
    offset: usize,
    len: usize,
}

impl SharedAm {
    /// Verifies the AM section's checksum (once per bundle, memoized),
    /// parses its header, and keeps the bundle alive. The checksum pass
    /// runs here — not at `view()` time — because every later
    /// [`SharedAm::view`] and decode through it is infallible: a
    /// corrupt payload must surface as this typed error, never as a
    /// mid-decode panic.
    ///
    /// # Errors
    /// [`BundleError::ChecksumMismatch`] on a corrupt payload, plus
    /// anything from [`Bundle::am_layout`].
    pub fn new(bundle: Arc<Bundle>) -> Result<SharedAm, BundleError> {
        bundle.section_bytes(SectionKind::Am, "am")?;
        let layout = bundle.am_layout()?;
        let info = bundle
            .sections()
            .iter()
            .find(|s| s.kind == SectionKind::Am)
            .expect("am_layout succeeded");
        let (offset, len) = (info.offset, info.len);
        Ok(SharedAm {
            bundle,
            layout,
            offset,
            len,
        })
    }

    /// A zero-alloc borrowed view for decoding.
    pub fn view(&self) -> CompressedAmRef<'_> {
        self.layout
            .view(&self.bundle.bytes()[self.offset..self.offset + self.len])
    }

    /// The owning bundle.
    pub fn bundle(&self) -> &Arc<Bundle> {
        &self.bundle
    }
}

/// A named LM of a ref-counted bundle (see [`SharedAm`]). Sessions
/// holding a clone keep the mapping alive even after the registry
/// retires the name.
#[derive(Debug, Clone)]
pub struct SharedLm {
    bundle: Arc<Bundle>,
    layout: LmLayout,
    offset: usize,
    len: usize,
    name: String,
}

impl SharedLm {
    /// Verifies LM `name`'s section checksum (once per bundle,
    /// memoized), parses its header, and keeps the bundle alive; see
    /// [`SharedAm::new`] for why verification happens here.
    ///
    /// # Errors
    /// [`BundleError::ChecksumMismatch`] on a corrupt payload, plus
    /// anything from [`Bundle::lm_layout`].
    pub fn new(bundle: Arc<Bundle>, name: &str) -> Result<SharedLm, BundleError> {
        bundle.section_bytes(SectionKind::Lm, name)?;
        let layout = bundle.lm_layout(name)?;
        let info = bundle
            .sections()
            .iter()
            .find(|s| s.kind == SectionKind::Lm && s.name == name)
            .expect("lm_layout succeeded");
        let (offset, len) = (info.offset, info.len);
        Ok(SharedLm {
            bundle,
            layout,
            offset,
            len,
            name: name.to_string(),
        })
    }

    /// A zero-alloc borrowed view for decoding.
    pub fn view(&self) -> CompressedLmRef<'_> {
        self.layout
            .view(&self.bundle.bytes()[self.offset..self.offset + self.len])
    }

    /// The LM's bundle section name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning bundle.
    pub fn bundle(&self) -> &Arc<Bundle> {
        &self.bundle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, HmmTopology, Lexicon};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

    fn models() -> (CompressedAm, CompressedLm, CompressedLm) {
        let fst = build_am(&Lexicon::generate(60, 20, 3), HmmTopology::Kaldi3State).fst;
        let am = CompressedAm::compress(&fst, 64, 0);
        let mk_lm = |seed: u64| {
            let spec = CorpusSpec {
                vocab_size: 60,
                num_sentences: 200,
                ..Default::default()
            };
            let model = NGramModel::train(&spec.generate(seed), 60, DiscountConfig::default());
            CompressedLm::compress(&lm_to_wfst(&model), 64, seed)
        };
        (am, mk_lm(1), mk_lm(2))
    }

    fn bundle_bytes() -> Vec<u8> {
        let (am, lm_a, lm_b) = models();
        let mut w = BundleWriter::new();
        w.add_am(&am)
            .add_lm("default", &lm_a)
            .add_lm("alt", &lm_b)
            .add_symtab("words", b"1 hello\n2 world\n".to_vec())
            .add_meta("task", b"task=test vocab=60".to_vec());
        w.finish().unwrap()
    }

    #[test]
    fn bias_sections_round_trip() {
        let (am, lm, _) = models();
        let mut w = BundleWriter::new();
        let payload = vec![
            1u8, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 0, 0, 128, 63,
        ];
        w.add_am(&am)
            .add_lm("default", &lm)
            .add_bias("contacts", payload.clone())
            .add_bias("hotwords", vec![1, 0, 0, 0, 0, 0, 0, 0]);
        let b = Bundle::from_bytes(w.finish().unwrap()).unwrap();
        assert_eq!(b.bias_names(), vec!["contacts", "hotwords"]);
        assert_eq!(b.bias_bytes("contacts").unwrap(), payload.as_slice());
        assert!(b.bias_bytes("missing").is_err());
        let tags: Vec<_> = b.sections().iter().map(|s| s.kind.tag()).collect();
        assert!(tags.contains(&"bias"));
    }

    #[test]
    fn roundtrip_preserves_sections_and_models() {
        let bytes = bundle_bytes();
        let b = Bundle::from_bytes(bytes).unwrap();
        assert_eq!(b.sections().len(), 5);
        assert_eq!(b.lm_names(), vec!["default", "alt"]);
        assert!(!b.is_mapped());
        let (am, lm_a, _) = models();
        assert_eq!(b.load_am().unwrap().to_bytes(), am.to_bytes());
        assert_eq!(b.load_lm("default").unwrap().to_bytes(), lm_a.to_bytes());
        assert_eq!(b.meta("task").unwrap().unwrap(), b"task=test vocab=60");
        assert_eq!(b.symtab("words").unwrap().unwrap(), b"1 hello\n2 world\n");
        assert!(b.meta("absent").unwrap().is_none());
        // Layout views decode identically to the owned loads.
        let am_layout = b.am_layout().unwrap();
        let view = am_layout.view(b.section_bytes(SectionKind::Am, "am").unwrap());
        assert_eq!(view.num_states(), am.num_states());
        let lm_layout = b.lm_layout("alt").unwrap();
        assert_eq!(
            lm_layout
                .view(b.section_bytes(SectionKind::Lm, "alt").unwrap())
                .num_states(),
            b.load_lm("alt").unwrap().num_states()
        );
    }

    #[test]
    fn mmap_open_roundtrips_and_shares() {
        let bytes = bundle_bytes();
        let path = std::env::temp_dir().join(format!("unfold-bundle-{}.unfb", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let b = Arc::new(Bundle::open_mmap(&path).unwrap());
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(b.is_mapped());
        let am = SharedAm::new(Arc::clone(&b)).unwrap();
        let lm = SharedLm::new(Arc::clone(&b), "alt").unwrap();
        let owned_am = b.load_am().unwrap();
        assert_eq!(am.view().decode_arcs(0), owned_am.decode_arcs(0));
        let owned_lm = b.load_lm("alt").unwrap();
        for s in (0..owned_lm.num_states() as u32).step_by(7) {
            assert_eq!(lm.view().backoff_arc(s), owned_lm.backoff_arc(s));
        }
        // The mapping outlives the bundle handle through the Arcs.
        drop(b);
        assert_eq!(lm.view().num_states(), owned_lm.num_states());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_handles_reject_corrupt_payloads_on_mmap_opens() {
        // Flip one byte inside each model payload: open_mmap still
        // succeeds (table-only), but binding the model must fail with
        // the section's typed checksum error — the decode paths never
        // see unverified bytes.
        let bytes = bundle_bytes();
        let path =
            std::env::temp_dir().join(format!("unfold-bundle-corrupt-{}.unfb", std::process::id()));
        for kind in [SectionKind::Am, SectionKind::Lm] {
            let clean = Bundle::from_bytes(bytes.clone()).unwrap();
            let info = clean
                .sections()
                .iter()
                .find(|s| s.kind == kind)
                .unwrap()
                .clone();
            let mut bad = bytes.clone();
            bad[info.offset + info.len / 2] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            let b = Arc::new(Bundle::open_mmap(&path).unwrap());
            let err = match kind {
                SectionKind::Am => SharedAm::new(Arc::clone(&b)).unwrap_err(),
                _ => SharedLm::new(Arc::clone(&b), &info.name).unwrap_err(),
            };
            match err {
                BundleError::ChecksumMismatch(name) => assert_eq!(name, info.name),
                other => panic!("corrupt {} payload: {other:?}", kind.tag()),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_invalid_compositions() {
        let (am, lm, _) = models();
        assert!(matches!(
            BundleWriter::new().add_lm("x", &lm).finish(),
            Err(BundleError::MissingSection(_))
        ));
        assert!(matches!(
            BundleWriter::new().add_am(&am).finish(),
            Err(BundleError::MissingSection(_))
        ));
        assert!(matches!(
            BundleWriter::new()
                .add_am(&am)
                .add_lm("x", &lm)
                .add_lm("x", &lm)
                .finish(),
            Err(BundleError::DuplicateSection(_))
        ));
    }

    #[test]
    fn payloads_are_aligned() {
        let bytes = bundle_bytes();
        let b = Bundle::from_bytes(bytes).unwrap();
        for s in b.sections() {
            assert_eq!(s.offset % 8, 0, "section '{}' misaligned", s.name);
        }
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ ("ECMA") check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }
}
