#![warn(missing_docs)]

//! WFST compression (paper §3.4).
//!
//! UNFOLD's 31x footprint reduction comes from *combining* on-the-fly
//! composition with aggressive compression of the two individual WFSTs.
//! This crate implements all of it:
//!
//! * [`bits`] — bit-granular writer/reader with random access,
//! * [`quant`] — the K-means weight quantizer (64 clusters → 6-bit
//!   weight indices, the paper's <0.01% WER-impact trick),
//! * [`am`] — the compressed AM format of Figure 5: a 2-bit destination
//!   tag makes most arcs 20 bits (self / +1 / −1 locality), the rest
//!   58 bits,
//! * [`lm`] — the compressed LM format: 6-bit unigram arcs whose word id
//!   and destination are implied by position, 45-bit regular arcs
//!   supporting random access (binary search), 27-bit back-off arcs
//!   stored last,
//! * [`composed`] — the Price-et-al-style compression of the *composed*
//!   WFST used as the paper's "Fully-Composed+Comp" comparator
//!   (Table 2, Figure 8),
//! * [`refs`] — zero-copy borrowed views ([`CompressedAmRef`] /
//!   [`CompressedLmRef`]) that decode arcs directly out of serialized
//!   section bytes,
//! * [`bundle`] — the `.unfb` single-file model bundle (versioned
//!   section table, CRC-64 checksums, one AM + named LMs + symbol
//!   tables + metadata) with owned and mmap-backed opens,
//! * [`mmap`] — dependency-free read-only file mapping (raw syscalls on
//!   Linux x86-64, owned-read fallback elsewhere).
//!
//! # Example
//!
//! ```
//! use unfold_compress::{CompressedAm, WeightQuantizer};
//! use unfold_am::{build_am, HmmTopology, Lexicon};
//!
//! let am = build_am(&Lexicon::generate(50, 20, 1), HmmTopology::Kaldi3State);
//! let comp = CompressedAm::compress(&am.fst, 64, 0);
//! assert!(comp.size_bytes() < unfold_wfst::SizeModel::UNCOMPRESSED.bytes(&am.fst));
//! let rt = comp.to_wfst();
//! assert_eq!(rt.num_arcs(), am.fst.num_arcs());
//! # let _: Option<&WeightQuantizer> = None;
//! ```

pub mod am;
pub mod bits;
pub mod bundle;
pub mod composed;
pub mod io;
pub mod lm;
pub mod mmap;
pub mod quant;
pub mod refs;

pub use am::CompressedAm;
pub use bits::{prefetch_read, BitReader, BitSlice, BitWriter};
pub use bundle::{
    crc64, Bundle, BundleError, BundleWriter, SectionInfo, SectionKind, SharedAm, SharedLm,
    BUNDLE_MAGIC, BUNDLE_VERSION,
};
pub use composed::CompressedComposed;
pub use io::{load_am, load_lm, save_am, save_lm, ModelIoError};
pub use lm::{CompressedLm, LmLookup};
pub use mmap::Mapped;
pub use quant::WeightQuantizer;
pub use refs::{AmLayout, CompressedAmRef, CompressedLmRef, LmLayout};
