//! Read-only file mapping without external dependencies.
//!
//! The workspace's dependency policy is "std plus vendored test crates
//! only", so there is no `libc` or `memmap2` to lean on. On Linux
//! x86-64 — the platform the reproduction targets — [`Mapped::open`]
//! issues the `mmap`/`munmap` system calls directly via inline
//! assembly (`PROT_READ`, `MAP_PRIVATE`). Everywhere else it falls
//! back to reading the file into an owned buffer behind the same API,
//! so the crate stays portable while the zero-copy path is exercised
//! where it matters.
//!
//! The mapping is private and read-only and the struct is `Send +
//! Sync`; the usual mmap caveat applies that truncating the file while
//! it is mapped raises `SIGBUS` (don't rewrite live bundles in place —
//! write a new file and rename).

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::io;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Raw syscall3/6 shims. The kernel returns small negative values
    /// for errors; `-4095..=-1` maps to an errno.
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if (-4095..0).contains(&ret) {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Maps `len` bytes of `fd` read-only.
    pub(super) fn mmap_readonly(fd: i32, len: usize) -> io::Result<*const u8> {
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        check(ret).map(|addr| addr as *const u8)
    }

    /// Unmaps a region returned by [`mmap_readonly`].
    pub(super) fn munmap(ptr: *const u8, len: usize) {
        // Failure here is unrecoverable and harmless (the address range
        // simply stays reserved); ignore it as the libc wrappers do in
        // destructors.
        let _ = unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }
}

enum Backing {
    /// Kernel mapping: pointer + length, unmapped on drop.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped { ptr: *const u8, len: usize },
    /// Portable fallback (and the empty-file case): owned bytes.
    Owned(Vec<u8>),
}

/// A read-only view of a file's bytes, memory-mapped where the platform
/// supports it.
pub struct Mapped {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared
// state, no interior mutability.
unsafe impl Send for Mapped {}
unsafe impl Sync for Mapped {}

impl Mapped {
    /// Opens `path` as a read-only mapping (Linux x86-64) or an owned
    /// read (elsewhere).
    ///
    /// # Errors
    /// Propagates I/O errors from `open`/`stat`/`mmap`.
    pub fn open(path: &Path) -> io::Result<Mapped> {
        let file = File::open(path)?;
        Self::from_file(&file)
    }

    /// Maps an already-open file. Always views the file **from offset
    /// 0** regardless of the file's current read cursor — `mmap`
    /// ignores the cursor, and the portable fallback seeks to 0 before
    /// reading so both paths return identical bytes. On the fallback,
    /// the shared OS-level cursor is left at end-of-file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn from_file(file: &File) -> io::Result<Mapped> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mapped {
                backing: Backing::Owned(Vec::new()),
            });
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::fd::AsRawFd;
            let ptr = sys::mmap_readonly(file.as_raw_fd(), len)?;
            Ok(Mapped {
                backing: Backing::Mapped { ptr, len },
            })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            use std::io::{Read, Seek, SeekFrom};
            // Match the mmap path's offset-0 contract: the caller's
            // cursor position must not change what we return.
            let mut f = file;
            f.seek(SeekFrom::Start(0))?;
            let mut buf = Vec::with_capacity(len);
            f.read_to_end(&mut buf)?;
            Ok(Mapped {
                backing: Backing::Owned(buf),
            })
        }
    }

    /// The file's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by
            // self; unmapped only in Drop.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(v) => v,
        }
    }

    /// Whether the bytes come from a kernel mapping (false on the
    /// portable read-into-memory fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

impl Drop for Mapped {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Backing::Mapped { ptr, len } = self.backing {
            sys::munmap(ptr, len);
        }
    }
}

impl std::fmt::Debug for Mapped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapped")
            .field("len", &self.as_bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("unfold-mmap-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("basic");
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let m = Mapped::open(&path).unwrap();
        assert_eq!(m.as_bytes(), &data[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(m.is_mapped(), "linux x86-64 must take the mmap path");
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_empty_slice() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let m = Mapped::open(&path).unwrap();
        assert!(m.as_bytes().is_empty());
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(Mapped::open(&temp_path("does-not-exist")).is_err());
    }

    #[test]
    fn many_mappings_drop_cleanly() {
        let path = temp_path("many");
        std::fs::write(&path, vec![0xAB; 4096 * 3 + 17]).unwrap();
        for _ in 0..64 {
            let m = Mapped::open(&path).unwrap();
            assert_eq!(m.as_bytes().len(), 4096 * 3 + 17);
            assert_eq!(m.as_bytes()[4096 * 3 + 16], 0xAB);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
