//! K-means weight quantization (paper §3.4).
//!
//! "Regarding the weight ... we use the K-means quantization technique
//! with 64 clusters, reducing its size from 32 to 6 bits, which
//! introduces a negligible increase in Word Error Rate (less than
//! 0.01%)." The quantizer here is a 1-D Lloyd iteration seeded with
//! quantile centroids, which converges in a handful of rounds on the
//! smooth weight distributions n-gram models produce.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fitted 1-D K-means codebook for arc weights.
#[derive(Debug, Clone)]
pub struct WeightQuantizer {
    /// Cluster centroids, sorted ascending.
    centroids: Vec<f32>,
}

impl WeightQuantizer {
    /// Fits `k` clusters to `values` (Lloyd's algorithm, 25 iterations,
    /// quantile initialization with seeded jitter for tie-breaking).
    ///
    /// # Panics
    /// Panics if `values` is empty, `k` is 0, or `k > 256` (weight
    /// indices must fit in a byte; the paper uses 64).
    pub fn fit(values: &[f32], k: usize, seed: u64) -> Self {
        assert!(!values.is_empty(), "fit: no values");
        assert!((1..=256).contains(&k), "fit: k {k} out of range");
        let mut sorted: Vec<f32> = values.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(!sorted.is_empty(), "fit: all values non-finite");
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let k = k.min(sorted.len());
        let mut rng = SmallRng::seed_from_u64(seed);
        // Quantile init spread across the full value range.
        let mut centroids: Vec<f32> = (0..k)
            .map(|i| {
                let idx = if k == 1 {
                    0
                } else {
                    (i * (sorted.len() - 1)) / (k - 1)
                };
                sorted[idx] + rng.gen_range(-1e-6..1e-6)
            })
            .collect();
        centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        centroids.dedup();

        for _ in 0..25 {
            // Assignment + update in one pass over the sorted values:
            // boundaries are midpoints between adjacent centroids.
            let mut sums = vec![0.0f64; centroids.len()];
            let mut counts = vec![0u64; centroids.len()];
            let mut c = 0usize;
            for &v in &sorted {
                while c + 1 < centroids.len()
                    && (centroids[c + 1] - v).abs() < (centroids[c] - v).abs()
                {
                    c += 1;
                }
                // The sorted order means assignments are monotone, but a
                // value may still belong to an earlier centroid; scan back.
                while c > 0 && (centroids[c - 1] - v).abs() < (centroids[c] - v).abs() {
                    c -= 1;
                }
                sums[c] += f64::from(v);
                counts[c] += 1;
            }
            let mut moved = 0.0f32;
            for i in 0..centroids.len() {
                if counts[i] > 0 {
                    let nc = (sums[i] / counts[i] as f64) as f32;
                    moved += (nc - centroids[i]).abs();
                    centroids[i] = nc;
                }
            }
            centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
            if moved < 1e-7 {
                break;
            }
        }
        // Pin the codebook endpoints to the observed extremes so the
        // sparse tails of the weight distribution are never collapsed
        // (Lloyd alone would merge outliers into interior clusters,
        // producing unbounded per-arc error on the rare heavy weights).
        if centroids.len() >= 2 {
            centroids[0] = sorted[0];
            let last = centroids.len() - 1;
            centroids[last] = sorted[sorted.len() - 1];
            centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
        WeightQuantizer { centroids }
    }

    /// Reconstructs a quantizer from a saved codebook.
    ///
    /// # Panics
    /// Panics if `centroids` is empty, unsorted, or longer than 256.
    pub fn from_centroids(centroids: Vec<f32>) -> Self {
        assert!(
            !centroids.is_empty() && centroids.len() <= 256,
            "from_centroids: bad length"
        );
        assert!(
            centroids.windows(2).all(|w| w[0] <= w[1]),
            "from_centroids: codebook must be sorted"
        );
        WeightQuantizer { centroids }
    }

    /// The codebook, sorted ascending (for serialization).
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Number of clusters actually in use (≤ the requested `k`).
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Bits needed per weight index.
    pub fn index_bits(&self) -> u32 {
        (usize::BITS - (self.num_clusters() - 1).leading_zeros()).max(1)
    }

    /// Index of the nearest centroid.
    pub fn encode(&self, value: f32) -> u8 {
        let i = match self
            .centroids
            .binary_search_by(|c| c.partial_cmp(&value).unwrap())
        {
            Ok(i) => i,
            Err(i) => {
                if i == 0 {
                    0
                } else if i >= self.centroids.len() {
                    self.centroids.len() - 1
                } else if (self.centroids[i] - value).abs() < (value - self.centroids[i - 1]).abs()
                {
                    i
                } else {
                    i - 1
                }
            }
        };
        i as u8
    }

    /// Centroid value for an index.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn decode(&self, index: u8) -> f32 {
        self.centroids[usize::from(index)]
    }

    /// Quantizes a value (encode then decode).
    pub fn quantize(&self, value: f32) -> f32 {
        self.decode(self.encode(value))
    }

    /// Bytes the codebook itself occupies (the paper's "64-entry table
    /// (256 bytes)" of floating-point centroids).
    pub fn table_bytes(&self) -> u64 {
        self.centroids.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_when_clusters_cover_distinct_values() {
        let vals = [0.0f32, 1.0, 2.0, 3.0];
        let q = WeightQuantizer::fit(&vals, 8, 0);
        for &v in &vals {
            assert!((q.quantize(v) - v).abs() < 1e-5);
        }
    }

    #[test]
    fn paper_configuration_is_6_bits() {
        let vals: Vec<f32> = (0..10_000)
            .map(|i| (i as f32 * 0.37).sin().abs() * 10.0)
            .collect();
        let q = WeightQuantizer::fit(&vals, 64, 1);
        assert_eq!(q.num_clusters(), 64);
        assert_eq!(q.index_bits(), 6);
        assert_eq!(q.table_bytes(), 256);
    }

    #[test]
    fn quantization_error_is_small_relative_to_range() {
        let vals: Vec<f32> = (0..50_000)
            .map(|i| ((i * 2_654_435_761u64.wrapping_mul(i as u64) as usize) % 1000) as f32 / 100.0)
            .collect();
        let q = WeightQuantizer::fit(&vals, 64, 2);
        let max_err = vals
            .iter()
            .map(|&v| (q.quantize(v) - v).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.5, "max error {max_err} too big for 10.0 range");
    }

    #[test]
    fn ignores_infinities() {
        let vals = [1.0f32, f32::INFINITY, 2.0];
        let q = WeightQuantizer::fit(&vals, 4, 0);
        assert!(q.quantize(1.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_input_panics() {
        let _ = WeightQuantizer::fit(&[], 4, 0);
    }

    proptest! {
        #[test]
        fn encode_decode_is_nearest(vals in proptest::collection::vec(0.0f32..20.0, 10..300), probe in 0.0f32..20.0) {
            let q = WeightQuantizer::fit(&vals, 16, 3);
            let idx = q.encode(probe);
            let chosen = q.decode(idx);
            for i in 0..q.num_clusters() {
                prop_assert!((chosen - probe).abs() <= (q.decode(i as u8) - probe).abs() + 1e-5);
            }
        }

        #[test]
        fn quantize_is_idempotent(vals in proptest::collection::vec(0.0f32..20.0, 10..100), probe in 0.0f32..20.0) {
            let q = WeightQuantizer::fit(&vals, 8, 4);
            let once = q.quantize(probe);
            prop_assert_eq!(q.quantize(once), once);
        }
    }
}
