//! Zero-copy views over serialized compressed models.
//!
//! [`CompressedAm::from_bytes`] deserializes by *copying*: state
//! records into a `Vec`, the arc stream into a `Vec<u64>`. That is fine
//! for one-shot tools but defeats UNFOLD's deployment story — a bundle
//! that is already in the page cache (or mmap-ed straight from flash)
//! should be decodable without duplicating tens of megabytes of arcs
//! into the heap.
//!
//! This module splits loading into two parts:
//!
//! * [`AmLayout`] / [`LmLayout`] — the parsed *header* of a serialized
//!   section: counts, the K-means codebook, and byte ranges of the
//!   state table and arc bit stream. Owns only the codebook (≤ 64
//!   floats); parsing is O(states) and never touches the arc stream.
//! * [`CompressedAmRef`] / [`CompressedLmRef`] — borrowed views pairing
//!   a layout with the raw section bytes. Arc decoding reads the
//!   mapped bytes directly through [`BitSlice`]; state records are
//!   indexed in place (fixed 20-/16-byte records).
//!
//! The views mirror the owned types' decode arithmetic exactly — same
//! codebook floats, same bit offsets, same probe sequences — so a
//! decode against a view is bit-identical to one against the owned
//! model loaded from the same bytes (`unfold-verify` pins this).

use unfold_wfst::{Arc, Label, StateId, EPSILON};

use crate::bits::BitSlice;
use crate::io::{ByteReader, ModelIoError, AM_MAGIC, FORMAT_VERSION, LM_MAGIC};
use crate::lm::{BACKOFF_ARC_BITS, REGULAR_ARC_BITS, UNIGRAM_ARC_BITS};
use crate::quant::WeightQuantizer;

const AM_STATE_REC_BYTES: usize = 20;
const LM_STATE_REC_BYTES: usize = 16;

// AM arc field widths (mirrors `am.rs`).
const TAG_SELF: u64 = 0b11;
const TAG_NEXT: u64 = 0b10;
const TAG_PREV: u64 = 0b01;
const TAG_NORMAL: u64 = 0b00;
const PDF_BITS: u32 = 12;
const WEIGHT_BITS: u32 = 6;
const WORD_BITS: u32 = 18;
const AM_DEST_BITS: u32 = 20;
const LM_DEST_BITS: u32 = 21;

#[inline]
fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

#[inline]
fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

#[inline]
fn rd_f32(b: &[u8], off: usize) -> f32 {
    f32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

/// Parsed header of a serialized `UNFA` section: everything needed to
/// decode arcs in place except the bytes themselves.
#[derive(Debug, Clone)]
pub struct AmLayout {
    num_states: usize,
    start: StateId,
    short_arcs: u64,
    normal_arcs: u64,
    quant: WeightQuantizer,
    states_off: usize,
    bits_off: usize,
    bits_len: usize,
    len_bits: u64,
    section_len: usize,
}

impl AmLayout {
    /// Parses the header of a serialized AM, validating counts, the
    /// codebook, section bounds, and state-record sanity (monotone
    /// offsets within the stream). O(states); the arc stream is not
    /// read — integrity of the payload is the bundle checksum's job,
    /// and [`CompressedAmRef::validate_deep`] offers the owned loader's
    /// full structural walk on demand.
    ///
    /// # Errors
    /// Returns [`ModelIoError`] on bad magic/version, truncation, or a
    /// structurally invalid header.
    pub fn parse(bytes: &[u8]) -> Result<AmLayout, ModelIoError> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != AM_MAGIC {
            return Err(ModelIoError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(ModelIoError::BadVersion(version));
        }
        let num_states = r.u32()? as usize;
        if num_states == 0 || num_states >= (1 << AM_DEST_BITS) {
            return Err(ModelIoError::Corrupt("state count out of range"));
        }
        let start = r.u32()?;
        if start as usize >= num_states {
            return Err(ModelIoError::Corrupt("start state out of range"));
        }
        let short_arcs = r.u64()?;
        let normal_arcs = r.u64()?;
        let k = r.u32()? as usize;
        if k == 0 || k > 64 {
            return Err(ModelIoError::Corrupt("cluster count out of range"));
        }
        let mut centroids = Vec::with_capacity(k);
        for _ in 0..k {
            centroids.push(r.f32()?);
        }
        if !centroids.windows(2).all(|w| w[0] <= w[1]) {
            return Err(ModelIoError::Corrupt("codebook not sorted"));
        }
        let states_off = r.pos();
        let state_bytes = num_states
            .checked_mul(AM_STATE_REC_BYTES)
            .ok_or(ModelIoError::Truncated)?;
        let states = r.take(state_bytes)?;
        let len_bits = r.u64()?;
        let num_words = r.u32()? as usize;
        if len_bits > num_words as u64 * 64 {
            return Err(ModelIoError::Corrupt("bit length exceeds words"));
        }
        let bits_off = r.pos();
        let bits_len = num_words.checked_mul(8).ok_or(ModelIoError::Truncated)?;
        r.take(bits_len)?;
        if !r.done() {
            return Err(ModelIoError::Corrupt("trailing bytes"));
        }
        // Cheap state-table sweep: offsets monotone and every block's
        // minimum extent (20 bits/arc) inside the stream.
        let mut prev = 0u64;
        for i in 0..num_states {
            let off = rd_u64(states, i * AM_STATE_REC_BYTES);
            let narcs = u64::from(rd_u32(states, i * AM_STATE_REC_BYTES + 8));
            if off < prev || off > len_bits {
                return Err(ModelIoError::Corrupt("state offsets not monotone"));
            }
            if narcs
                .checked_mul(20)
                .and_then(|n| n.checked_add(off))
                .is_none_or(|end| end > len_bits)
            {
                return Err(ModelIoError::Corrupt("arc block past end of stream"));
            }
            prev = off;
        }
        Ok(AmLayout {
            num_states,
            start,
            short_arcs,
            normal_arcs,
            quant: WeightQuantizer::from_centroids(centroids),
            states_off,
            bits_off,
            bits_len,
            len_bits,
            section_len: bytes.len(),
        })
    }

    /// Pairs the layout with the section bytes it was parsed from.
    /// Zero-alloc slice arithmetic; callable per decode.
    ///
    /// # Panics
    /// Panics if `bytes` is not the same length as the parsed section.
    pub fn view<'a>(&'a self, bytes: &'a [u8]) -> CompressedAmRef<'a> {
        assert_eq!(
            bytes.len(),
            self.section_len,
            "view: section length changed since parse"
        );
        CompressedAmRef {
            layout: self,
            states: &bytes[self.states_off..self.states_off + self.num_states * AM_STATE_REC_BYTES],
            bits: BitSlice::new(
                &bytes[self.bits_off..self.bits_off + self.bits_len],
                self.len_bits,
            ),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Arc-stream payload size in bytes (what mmap loading avoids
    /// copying).
    pub fn arc_stream_bytes(&self) -> usize {
        self.bits_len
    }

    /// State-table size in bytes — the part of the section the header
    /// sweep *does* read at parse time.
    pub fn state_table_bytes(&self) -> usize {
        self.num_states * AM_STATE_REC_BYTES
    }
}

/// A borrowed, zero-copy compressed AM: decodes arcs directly out of
/// the serialized section bytes. API mirrors [`crate::CompressedAm`].
#[derive(Debug, Clone, Copy)]
pub struct CompressedAmRef<'a> {
    layout: &'a AmLayout,
    states: &'a [u8],
    bits: BitSlice<'a>,
}

impl CompressedAmRef<'_> {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.layout.num_states
    }

    /// Start state of the original machine.
    pub fn start(&self) -> StateId {
        self.layout.start
    }

    /// Number of arcs stored in the 20-bit short format.
    pub fn short_arcs(&self) -> u64 {
        self.layout.short_arcs
    }

    /// Number of arcs stored in the 58-bit full format.
    pub fn normal_arcs(&self) -> u64 {
        self.layout.normal_arcs
    }

    #[inline]
    fn rec(&self, s: StateId) -> (u64, u32, bool, f32) {
        let base = s as usize * AM_STATE_REC_BYTES;
        (
            rd_u64(self.states, base),
            rd_u32(self.states, base + 8),
            rd_u32(self.states, base + 12) != 0,
            rd_f32(self.states, base + 16),
        )
    }

    /// Bit offset of the first arc of `s`.
    pub fn state_bit_offset(&self, s: StateId) -> u64 {
        self.rec(s).0
    }

    /// Hints the cache to load `s`'s state record and the head of its
    /// arc bit stream. No-op on an out-of-range state — a hint must
    /// never panic.
    #[inline]
    pub fn prefetch_state(&self, s: StateId) {
        let base = s as usize * AM_STATE_REC_BYTES;
        if base + AM_STATE_REC_BYTES <= self.states.len() {
            crate::bits::prefetch_read(self.states[base..].as_ptr());
            self.bits.prefetch(self.rec(s).0);
        }
    }

    /// Final weight of `s`, or `None` if non-final.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn final_weight(&self, s: StateId) -> Option<f32> {
        let (_, _, is_final, w) = self.rec(s);
        is_final.then_some(w)
    }

    /// Visits each arc of `s` with its bit offset and encoded width;
    /// identical visit order, offsets, and weights to
    /// [`crate::CompressedAm::for_each_arc`] on the same bytes.
    ///
    /// # Panics
    /// Panics if `s` is out of range. Bundle-backed views are built
    /// from checksum-verified bytes, but a view over hand-supplied
    /// bytes can still see a structurally invalid stream (e.g. one a
    /// buggy packer sealed with a valid CRC); such a stream panics with
    /// a diagnostic — in release builds too, never a silent index wrap
    /// — unless [`CompressedAmRef::validate_deep`] rejected it first.
    pub fn for_each_arc(&self, s: StateId, mut f: impl FnMut(Arc, u64, u32)) {
        let (mut off, narcs, _, _) = self.rec(s);
        for _ in 0..narcs {
            let start_off = off;
            let tag = self.bits.read(off, 2);
            let pdf = self.bits.read(off + 2, PDF_BITS) as u32;
            let widx = self.bits.read(off + 2 + u64::from(PDF_BITS), WEIGHT_BITS) as u8;
            let weight = self.layout.quant.decode(widx);
            off += 2 + u64::from(PDF_BITS) + u64::from(WEIGHT_BITS);
            let (olabel, dest, width) = match tag {
                t if t == TAG_SELF => (EPSILON, s, 20),
                t if t == TAG_NEXT => {
                    assert!(
                        (s as usize) + 1 < self.layout.num_states,
                        "corrupt AM stream: +1 arc from last state {s}"
                    );
                    (EPSILON, s + 1, 20)
                }
                t if t == TAG_PREV => {
                    assert!(s != 0, "corrupt AM stream: -1 arc from state 0");
                    (EPSILON, s - 1, 20)
                }
                _ => {
                    let word = self.bits.read(off, WORD_BITS) as u32;
                    let dest = self.bits.read(off + u64::from(WORD_BITS), AM_DEST_BITS) as u32;
                    off += u64::from(WORD_BITS) + u64::from(AM_DEST_BITS);
                    (word, dest, 58)
                }
            };
            f(Arc::new(pdf, olabel, weight, dest), start_off, width);
        }
    }

    /// Decodes the outgoing arcs of `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn decode_arcs(&self, s: StateId) -> Vec<Arc> {
        let mut out = Vec::new();
        self.for_each_arc(s, |a, _, _| out.push(a));
        out
    }

    /// The owned loader's full structural walk (arc tags, destinations,
    /// block contiguity) — O(arcs). [`AmLayout::parse`] skips this for
    /// O(ms) opens; run it when loading bytes whose integrity is not
    /// already covered by a bundle checksum.
    ///
    /// # Errors
    /// Returns [`ModelIoError::Corrupt`] on any structural violation.
    pub fn validate_deep(&self) -> Result<(), ModelIoError> {
        let len = self.bits.len_bits();
        let n = self.layout.num_states as u32;
        for i in 0..self.layout.num_states {
            let (mut off, narcs, _, _) = self.rec(i as StateId);
            for _ in 0..narcs {
                if off + 20 > len {
                    return Err(ModelIoError::Corrupt("arc past end of stream"));
                }
                let tag = self.bits.read(off, 2);
                let width = if tag == TAG_NORMAL { 58 } else { 20 };
                if off + width > len {
                    return Err(ModelIoError::Corrupt("arc past end of stream"));
                }
                match tag {
                    t if t == TAG_NEXT && i as u32 + 1 >= n => {
                        return Err(ModelIoError::Corrupt("+1 arc from last state"));
                    }
                    t if t == TAG_PREV && i == 0 => {
                        return Err(ModelIoError::Corrupt("-1 arc from state 0"));
                    }
                    t if t == TAG_NORMAL => {
                        let dest = self.bits.read(off + 20 + 18, AM_DEST_BITS) as u32;
                        if dest >= n {
                            return Err(ModelIoError::Corrupt("destination out of range"));
                        }
                    }
                    _ => {}
                }
                off += width;
            }
            let next_off = if i + 1 < self.layout.num_states {
                self.rec((i + 1) as StateId).0
            } else {
                len
            };
            if off != next_off {
                return Err(ModelIoError::Corrupt("arc blocks not contiguous"));
            }
        }
        Ok(())
    }
}

/// Parsed header of a serialized `UNFL` section.
#[derive(Debug, Clone)]
pub struct LmLayout {
    num_states: usize,
    quant: WeightQuantizer,
    states_off: usize,
    bits_off: usize,
    bits_len: usize,
    len_bits: u64,
    section_len: usize,
}

impl LmLayout {
    /// Parses the header of a serialized LM. O(states): because LM arc
    /// records are fixed-width, the sweep verifies full block
    /// contiguity (root positional block, per-state word arcs, trailing
    /// back-off) without decoding a single arc. Word-arc sortedness and
    /// destination bounds are [`CompressedLmRef::validate_deep`]'s job.
    ///
    /// # Errors
    /// Returns [`ModelIoError`] on bad magic/version, truncation, or a
    /// structurally invalid header.
    pub fn parse(bytes: &[u8]) -> Result<LmLayout, ModelIoError> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != LM_MAGIC {
            return Err(ModelIoError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(ModelIoError::BadVersion(version));
        }
        let num_states = r.u32()? as usize;
        if num_states == 0 || num_states >= (1 << LM_DEST_BITS) {
            return Err(ModelIoError::Corrupt("state count out of range"));
        }
        let k = r.u32()? as usize;
        if k == 0 || k > 64 {
            return Err(ModelIoError::Corrupt("cluster count out of range"));
        }
        let mut centroids = Vec::with_capacity(k);
        for _ in 0..k {
            centroids.push(r.f32()?);
        }
        if !centroids.windows(2).all(|w| w[0] <= w[1]) {
            return Err(ModelIoError::Corrupt("codebook not sorted"));
        }
        let states_off = r.pos();
        let state_bytes = num_states
            .checked_mul(LM_STATE_REC_BYTES)
            .ok_or(ModelIoError::Truncated)?;
        let states = r.take(state_bytes)?;
        let len_bits = r.u64()?;
        let num_words = r.u32()? as usize;
        if len_bits > num_words as u64 * 64 {
            return Err(ModelIoError::Corrupt("bit length exceeds words"));
        }
        let bits_off = r.pos();
        let bits_len = num_words.checked_mul(8).ok_or(ModelIoError::Truncated)?;
        r.take(bits_len)?;
        if !r.done() {
            return Err(ModelIoError::Corrupt("trailing bytes"));
        }
        if rd_u32(states, 12) != 0 {
            return Err(ModelIoError::Corrupt("root state has a back-off arc"));
        }
        let mut expect = 0u64;
        for i in 0..num_states {
            let base = i * LM_STATE_REC_BYTES;
            let off = rd_u64(states, base);
            let narcs = u64::from(rd_u32(states, base + 8));
            let has_backoff = rd_u32(states, base + 12) != 0;
            if off != expect {
                return Err(ModelIoError::Corrupt("arc blocks not contiguous"));
            }
            let width = if i == 0 {
                UNIGRAM_ARC_BITS
            } else {
                REGULAR_ARC_BITS
            };
            let mut end = narcs
                .checked_mul(width)
                .and_then(|n| n.checked_add(off))
                .ok_or(ModelIoError::Corrupt("offset overflow"))?;
            if has_backoff {
                end += BACKOFF_ARC_BITS;
            }
            if end > len_bits {
                return Err(ModelIoError::Corrupt("arc block past end of stream"));
            }
            expect = end;
        }
        if expect != len_bits {
            return Err(ModelIoError::Corrupt("arc blocks not contiguous"));
        }
        Ok(LmLayout {
            num_states,
            quant: WeightQuantizer::from_centroids(centroids),
            states_off,
            bits_off,
            bits_len,
            len_bits,
            section_len: bytes.len(),
        })
    }

    /// Pairs the layout with the section bytes it was parsed from.
    ///
    /// # Panics
    /// Panics if `bytes` is not the same length as the parsed section.
    pub fn view<'a>(&'a self, bytes: &'a [u8]) -> CompressedLmRef<'a> {
        assert_eq!(
            bytes.len(),
            self.section_len,
            "view: section length changed since parse"
        );
        CompressedLmRef {
            layout: self,
            states: &bytes[self.states_off..self.states_off + self.num_states * LM_STATE_REC_BYTES],
            bits: BitSlice::new(
                &bytes[self.bits_off..self.bits_off + self.bits_len],
                self.len_bits,
            ),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Arc-stream payload size in bytes.
    pub fn arc_stream_bytes(&self) -> usize {
        self.bits_len
    }

    /// State-table size in bytes — the part of the section the header
    /// sweep *does* read at parse time.
    pub fn state_table_bytes(&self) -> usize {
        self.num_states * LM_STATE_REC_BYTES
    }
}

/// A borrowed, zero-copy compressed LM. API mirrors
/// [`crate::CompressedLm`].
#[derive(Debug, Clone, Copy)]
pub struct CompressedLmRef<'a> {
    layout: &'a LmLayout,
    states: &'a [u8],
    bits: BitSlice<'a>,
}

impl CompressedLmRef<'_> {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.layout.num_states
    }

    #[inline]
    fn rec(&self, s: StateId) -> (u64, u32, bool) {
        let base = s as usize * LM_STATE_REC_BYTES;
        (
            rd_u64(self.states, base),
            rd_u32(self.states, base + 8),
            rd_u32(self.states, base + 12) != 0,
        )
    }

    /// Number of word-labelled arcs at `s`.
    pub fn num_word_arcs(&self, s: StateId) -> u32 {
        self.rec(s).1
    }

    /// Hints the cache to load `s`'s state record and the head of its
    /// word-arc region. No-op on an out-of-range state — a hint must
    /// never panic.
    #[inline]
    pub fn prefetch_state(&self, s: StateId) {
        let base = s as usize * LM_STATE_REC_BYTES;
        if base + LM_STATE_REC_BYTES <= self.states.len() {
            crate::bits::prefetch_read(self.states[base..].as_ptr());
            self.bits.prefetch(self.rec(s).0);
        }
    }

    /// Bit offset of the `i`-th word arc of `s`.
    pub fn word_arc_bit_offset(&self, s: StateId, i: u32) -> u64 {
        let width = if s == 0 {
            UNIGRAM_ARC_BITS
        } else {
            REGULAR_ARC_BITS
        };
        self.rec(s).0 + u64::from(i) * width
    }

    /// Decodes the `i`-th word arc of `s`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn word_arc(&self, s: StateId, i: u32) -> Arc {
        let (off0, narcs, _) = self.rec(s);
        assert!(i < narcs, "word_arc: index {i} out of range at state {s}");
        if s == 0 {
            let off = off0 + u64::from(i) * UNIGRAM_ARC_BITS;
            let widx = self.bits.read(off, WEIGHT_BITS) as u8;
            Arc::new(i + 1, i + 1, self.layout.quant.decode(widx), i + 1)
        } else {
            let off = off0 + u64::from(i) * REGULAR_ARC_BITS;
            let word = self.bits.read(off, WORD_BITS) as u32;
            let dest = self.bits.read(off + u64::from(WORD_BITS), LM_DEST_BITS) as u32;
            let widx = self.bits.read(
                off + u64::from(WORD_BITS) + u64::from(LM_DEST_BITS),
                WEIGHT_BITS,
            ) as u8;
            Arc::new(word, word, self.layout.quant.decode(widx), dest)
        }
    }

    /// The back-off arc of `s`, if present.
    pub fn backoff_arc(&self, s: StateId) -> Option<Arc> {
        let (off0, narcs, has_backoff) = self.rec(s);
        if !has_backoff {
            return None;
        }
        let off = off0 + u64::from(narcs) * REGULAR_ARC_BITS;
        let dest = self.bits.read(off, LM_DEST_BITS) as u32;
        let widx = self.bits.read(off + u64::from(LM_DEST_BITS), WEIGHT_BITS) as u8;
        Some(Arc::epsilon(self.layout.quant.decode(widx), dest))
    }

    /// Word-arc sortedness and destination bounds — the part of the
    /// owned loader's validation [`LmLayout::parse`] defers. O(arcs).
    ///
    /// # Errors
    /// Returns [`ModelIoError::Corrupt`] on any structural violation.
    pub fn validate_deep(&self) -> Result<(), ModelIoError> {
        let n = self.layout.num_states as u32;
        for s in 1..n {
            let mut prev_word = 0u32;
            for i in 0..self.num_word_arcs(s) {
                let a = self.word_arc(s, i);
                if a.ilabel <= prev_word {
                    return Err(ModelIoError::Corrupt("word arcs not sorted"));
                }
                prev_word = a.ilabel;
                if a.nextstate >= n {
                    return Err(ModelIoError::Corrupt("destination out of range"));
                }
            }
            if let Some(back) = self.backoff_arc(s) {
                if back.nextstate >= n {
                    return Err(ModelIoError::Corrupt("back-off destination out of range"));
                }
            }
        }
        Ok(())
    }

    /// Looks up `word` at `s` (root positional, binary search
    /// elsewhere); mirrors [`crate::CompressedLm::lookup`] arc-for-arc.
    ///
    /// # Panics
    /// Panics if `word` is epsilon.
    pub fn lookup(&self, s: StateId, word: Label) -> Option<Arc> {
        assert_ne!(word, EPSILON, "lookup: cannot search for epsilon");
        let (_, narcs, _) = self.rec(s);
        if s == 0 {
            return (word >= 1 && word <= narcs).then(|| self.word_arc(0, word - 1));
        }
        let mut lo = 0u32;
        let mut hi = narcs;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let a = self.word_arc(s, mid);
            match a.ilabel.cmp(&word) {
                std::cmp::Ordering::Equal => return Some(a),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressedAm, CompressedLm};
    use unfold_am::{build_am, HmmTopology, Lexicon};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

    fn am_bytes() -> Vec<u8> {
        let fst = build_am(&Lexicon::generate(120, 28, 5), HmmTopology::Kaldi3State).fst;
        CompressedAm::compress(&fst, 64, 0).to_bytes()
    }

    fn lm_bytes() -> Vec<u8> {
        let spec = CorpusSpec {
            vocab_size: 100,
            num_sentences: 400,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(9), 100, DiscountConfig::default());
        CompressedLm::compress(&lm_to_wfst(&model), 64, 0).to_bytes()
    }

    #[test]
    fn am_ref_decodes_identically_to_owned() {
        let bytes = am_bytes();
        let owned = CompressedAm::from_bytes(&bytes).unwrap();
        let layout = AmLayout::parse(&bytes).unwrap();
        let view = layout.view(&bytes);
        assert_eq!(view.num_states(), owned.num_states());
        assert_eq!(view.start(), owned.start());
        assert_eq!(view.short_arcs(), owned.short_arcs());
        assert_eq!(view.normal_arcs(), owned.normal_arcs());
        for s in 0..owned.num_states() as StateId {
            assert_eq!(view.final_weight(s), owned.final_weight(s));
            let mut got = Vec::new();
            view.for_each_arc(s, |a, off, w| got.push((a, off, w)));
            let mut want = Vec::new();
            owned.for_each_arc(s, |a, off, w| want.push((a, off, w)));
            assert_eq!(got, want, "state {s}");
        }
        view.validate_deep().unwrap();
    }

    #[test]
    fn lm_ref_decodes_identically_to_owned() {
        let bytes = lm_bytes();
        let owned = CompressedLm::from_bytes(&bytes).unwrap();
        let layout = LmLayout::parse(&bytes).unwrap();
        let view = layout.view(&bytes);
        assert_eq!(view.num_states(), owned.num_states());
        for s in 0..owned.num_states() as StateId {
            assert_eq!(view.num_word_arcs(s), owned.num_word_arcs(s));
            for i in 0..owned.num_word_arcs(s) {
                assert_eq!(
                    view.word_arc(s, i),
                    owned.word_arc(s, i),
                    "state {s} arc {i}"
                );
                assert_eq!(
                    view.word_arc_bit_offset(s, i),
                    owned.word_arc_bit_offset(s, i)
                );
            }
            assert_eq!(view.backoff_arc(s), owned.backoff_arc(s), "state {s}");
            for w in (1..=100u32).step_by(7) {
                assert_eq!(view.lookup(s, w), owned.lookup(s, w).arc);
            }
        }
        view.validate_deep().unwrap();
    }

    #[test]
    fn layout_parse_rejects_corrupt_headers() {
        let good = am_bytes();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(AmLayout::parse(&bad).unwrap_err(), ModelIoError::BadMagic);
        assert_eq!(
            AmLayout::parse(&good[..good.len() / 2]).unwrap_err(),
            ModelIoError::Truncated
        );
        let lm_good = lm_bytes();
        let mut lm_bad = lm_good.clone();
        lm_bad[1] = b'?';
        assert_eq!(
            LmLayout::parse(&lm_bad).unwrap_err(),
            ModelIoError::BadMagic
        );
        assert_eq!(
            LmLayout::parse(&lm_good[..20]).unwrap_err(),
            ModelIoError::Truncated
        );
        // Flip a state-record bit offset: the LM's fixed-width sweep
        // catches it at parse time.
        let mut flipped = lm_good.clone();
        let state3_offset = 16 + 64 * 4 + 3 * 16;
        flipped[state3_offset] ^= 0x5A;
        assert!(LmLayout::parse(&flipped).is_err());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary bytes must error, never panic (mirror of the
            /// owned loaders' fuzz suite).
            #[test]
            fn random_bytes_never_panic_layout_parsers(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
                let _ = AmLayout::parse(&bytes);
                let _ = LmLayout::parse(&bytes);
            }

            #[test]
            fn magic_prefixed_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
                let mut am = AM_MAGIC.to_vec();
                am.extend_from_slice(&1u32.to_le_bytes());
                am.extend_from_slice(&bytes);
                let _ = AmLayout::parse(&am);
                let mut lm = LM_MAGIC.to_vec();
                lm.extend_from_slice(&1u32.to_le_bytes());
                lm.extend_from_slice(&bytes);
                let _ = LmLayout::parse(&lm);
            }
        }
    }
}
