//! Compressed AM format (paper Figure 5).
//!
//! "Most of the arcs have epsilon word ID ... and they point to the
//! previous, the same or the next state. For these arcs, we only store
//! the input phoneme index (12 bits), weight (6 bits) and a 2-bit tag
//! encoding destination state. ... The rest of the arcs require, in
//! addition to the aforementioned 20 bits, an 18-bit word ID and a
//! 20-bit destination state's index."
//!
//! Arcs are decoded sequentially per state (the Viterbi search always
//! explores a state's AM arcs in order, so variable-length records cost
//! nothing), with the state table providing the bit offset of each
//! state's first arc.

use unfold_wfst::{Arc, StateId, Wfst, WfstBuilder, EPSILON};

use crate::bits::{BitBuf, BitReader, BitWriter};
use crate::io::{ByteReader, ByteWriter, ModelIoError, AM_MAGIC, FORMAT_VERSION};
use crate::quant::WeightQuantizer;

const TAG_SELF: u64 = 0b11;
const TAG_NEXT: u64 = 0b10;
const TAG_PREV: u64 = 0b01;
const TAG_NORMAL: u64 = 0b00;

const PDF_BITS: u32 = 12;
const WEIGHT_BITS: u32 = 6;
const WORD_BITS: u32 = 18;
const DEST_BITS: u32 = 20;

/// Per-state record: modeled at 8 bytes in size accounting (the
/// "bandwidth reduction scheme" state record of [34]).
#[derive(Debug, Clone, Copy)]
struct StateRec {
    bit_offset: u64,
    narcs: u32,
    is_final: bool,
    final_weight: f32,
}

/// An AM WFST in the compressed bit-packed format.
#[derive(Debug, Clone)]
pub struct CompressedAm {
    states: Vec<StateRec>,
    reader: BitReader,
    quant: WeightQuantizer,
    start: StateId,
    short_arcs: u64,
    normal_arcs: u64,
}

impl CompressedAm {
    /// Compresses `fst` with a `k`-cluster weight codebook.
    ///
    /// # Panics
    /// Panics if any field exceeds its bit budget: PDF ids ≥ 2^12, word
    /// ids ≥ 2^18, states ≥ 2^20 (the paper's formats; our synthetic
    /// tasks respect them), or if `fst` has no states.
    pub fn compress(fst: &Wfst, k: usize, seed: u64) -> Self {
        assert!(fst.num_states() > 0, "compress: empty AM");
        assert!(
            fst.num_states() < (1 << DEST_BITS),
            "compress: {} states exceed the 20-bit destination field",
            fst.num_states()
        );
        let weights: Vec<f32> = fst
            .states()
            .flat_map(|s| fst.arcs(s).iter().map(|a| a.weight))
            .collect();
        assert!(
            k <= 64,
            "compress: the AM format stores 6-bit weight indices (k <= 64)"
        );
        let quant =
            WeightQuantizer::fit(if weights.is_empty() { &[0.0] } else { &weights }, k, seed);

        let mut w = BitWriter::new();
        let mut states = Vec::with_capacity(fst.num_states());
        let mut short_arcs = 0u64;
        let mut normal_arcs = 0u64;
        for s in fst.states() {
            let arcs = fst.arcs(s);
            states.push(StateRec {
                bit_offset: w.len_bits(),
                narcs: arcs.len() as u32,
                is_final: fst.final_weight(s).is_some(),
                final_weight: fst.final_weight(s).unwrap_or(f32::INFINITY),
            });
            for a in arcs {
                assert!(
                    a.ilabel < (1 << PDF_BITS),
                    "pdf id {} exceeds 12 bits",
                    a.ilabel
                );
                let delta = i64::from(a.nextstate) - i64::from(s);
                let tag = if a.olabel == EPSILON {
                    match delta {
                        0 => TAG_SELF,
                        1 => TAG_NEXT,
                        -1 => TAG_PREV,
                        _ => TAG_NORMAL,
                    }
                } else {
                    TAG_NORMAL
                };
                w.push(tag, 2);
                w.push(u64::from(a.ilabel), PDF_BITS);
                w.push(u64::from(quant.encode(a.weight)), WEIGHT_BITS);
                if tag == TAG_NORMAL {
                    assert!(
                        a.olabel < (1 << WORD_BITS),
                        "word id {} exceeds 18 bits",
                        a.olabel
                    );
                    w.push(u64::from(a.olabel), WORD_BITS);
                    w.push(u64::from(a.nextstate), DEST_BITS);
                    normal_arcs += 1;
                } else {
                    short_arcs += 1;
                }
            }
        }
        CompressedAm {
            states,
            reader: BitReader::new(w.finish()),
            quant,
            start: fst.start(),
            short_arcs,
            normal_arcs,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of arcs stored in the 20-bit short format.
    pub fn short_arcs(&self) -> u64 {
        self.short_arcs
    }

    /// Number of arcs stored in the 58-bit full format.
    pub fn normal_arcs(&self) -> u64 {
        self.normal_arcs
    }

    /// Bit offset of the first arc of `s` (for memory-address modeling).
    pub fn state_bit_offset(&self, s: StateId) -> u64 {
        self.states[s as usize].bit_offset
    }

    /// Hints the cache to load the head of `s`'s arc bit stream. A
    /// batched frame kernel calls this over its survivor list before
    /// expansion so the decode loop finds the lines resident. No-op on
    /// an out-of-range state — a hint must never panic.
    #[inline]
    pub fn prefetch_state(&self, s: StateId) {
        if let Some(rec) = self.states.get(s as usize) {
            self.reader.prefetch(rec.bit_offset);
        }
    }

    /// Total compressed size in bytes: arc bit stream + 8-byte state
    /// records + the K-means centroid table.
    pub fn size_bytes(&self) -> u64 {
        self.reader.buf().size_bytes() + self.states.len() as u64 * 8 + self.quant.table_bytes()
    }

    /// Start state of the original machine.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Final weight of `s`, or `None` if non-final.
    pub fn final_weight(&self, s: StateId) -> Option<f32> {
        let rec = &self.states[s as usize];
        rec.is_final.then_some(rec.final_weight)
    }

    /// Visits each arc of `s` with its bit offset and encoded width —
    /// the information the accelerator's Arc Issuer sees (it decodes the
    /// 2-bit tag to learn "whether it has to fetch the remaining 38 bits
    /// for the current arc, or the 20 bits for the next arc", §3.4).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn for_each_arc(&self, s: StateId, mut f: impl FnMut(Arc, u64, u32)) {
        let rec = &self.states[s as usize];
        let mut off = rec.bit_offset;
        for _ in 0..rec.narcs {
            let start_off = off;
            let tag = self.reader.read(off, 2);
            let pdf = self.reader.read(off + 2, PDF_BITS) as u32;
            let widx = self.reader.read(off + 2 + u64::from(PDF_BITS), WEIGHT_BITS) as u8;
            let weight = self.quant.decode(widx);
            off += 2 + u64::from(PDF_BITS) + u64::from(WEIGHT_BITS);
            let (olabel, dest, width) = match tag {
                t if t == TAG_SELF => (EPSILON, s, 20),
                t if t == TAG_NEXT => (EPSILON, s + 1, 20),
                t if t == TAG_PREV => (EPSILON, s - 1, 20),
                _ => {
                    let word = self.reader.read(off, WORD_BITS) as u32;
                    let dest = self.reader.read(off + u64::from(WORD_BITS), DEST_BITS) as u32;
                    off += u64::from(WORD_BITS) + u64::from(DEST_BITS);
                    (word, dest, 58)
                }
            };
            f(Arc::new(pdf, olabel, weight, dest), start_off, width);
        }
    }

    /// Decodes the outgoing arcs of `s`, reconstructing quantized
    /// weights from the codebook.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn decode_arcs(&self, s: StateId) -> Vec<Arc> {
        let mut out = Vec::with_capacity(self.states[s as usize].narcs as usize);
        self.for_each_arc(s, |a, _, _| out.push(a));
        out
    }

    /// Serializes to the `UNFA` container (see [`crate::io`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.out.extend_from_slice(&AM_MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.states.len() as u32);
        w.u32(self.start);
        w.u64(self.short_arcs);
        w.u64(self.normal_arcs);
        w.u32(self.quant.num_clusters() as u32);
        for &c in self.quant.centroids() {
            w.f32(c);
        }
        for rec in &self.states {
            w.u64(rec.bit_offset);
            w.u32(rec.narcs);
            w.u32(u32::from(rec.is_final));
            w.f32(rec.final_weight);
        }
        let buf = self.reader.buf();
        w.u64(buf.len_bits());
        w.u32(buf.words().len() as u32);
        for &word in buf.words() {
            w.u64(word);
        }
        w.out
    }

    /// Deserializes from the `UNFA` container, validating structure
    /// (offsets, arc bounds, destinations) before returning.
    ///
    /// # Errors
    /// Returns [`ModelIoError`] on bad magic/version, truncation, or
    /// structurally invalid content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelIoError> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != AM_MAGIC {
            return Err(ModelIoError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(ModelIoError::BadVersion(version));
        }
        let num_states = r.u32()? as usize;
        if num_states == 0 || num_states >= (1 << DEST_BITS) {
            return Err(ModelIoError::Corrupt("state count out of range"));
        }
        let start = r.u32()?;
        if start as usize >= num_states {
            return Err(ModelIoError::Corrupt("start state out of range"));
        }
        let short_arcs = r.u64()?;
        let normal_arcs = r.u64()?;
        let k = r.u32()? as usize;
        if k == 0 || k > 64 {
            return Err(ModelIoError::Corrupt("cluster count out of range"));
        }
        let mut centroids = Vec::with_capacity(k);
        for _ in 0..k {
            centroids.push(r.f32()?);
        }
        if !centroids.windows(2).all(|w| w[0] <= w[1]) {
            return Err(ModelIoError::Corrupt("codebook not sorted"));
        }
        if num_states.checked_mul(20).is_none_or(|n| n > r.remaining()) {
            return Err(ModelIoError::Truncated);
        }
        let mut states = Vec::with_capacity(num_states);
        for _ in 0..num_states {
            let bit_offset = r.u64()?;
            let narcs = r.u32()?;
            let is_final = r.u32()? != 0;
            let final_weight = r.f32()?;
            states.push(StateRec {
                bit_offset,
                narcs,
                is_final,
                final_weight,
            });
        }
        let len_bits = r.u64()?;
        let num_words = r.u32()? as usize;
        if len_bits > num_words as u64 * 64 {
            return Err(ModelIoError::Corrupt("bit length exceeds words"));
        }
        if num_words.checked_mul(8).is_none_or(|n| n > r.remaining()) {
            return Err(ModelIoError::Truncated);
        }
        let mut words = Vec::with_capacity(num_words);
        for _ in 0..num_words {
            words.push(r.u64()?);
        }
        if !r.done() {
            return Err(ModelIoError::Corrupt("trailing bytes"));
        }
        let am = CompressedAm {
            states,
            reader: BitReader::new(BitBuf::from_raw(words, len_bits)),
            quant: WeightQuantizer::from_centroids(centroids),
            start,
            short_arcs,
            normal_arcs,
        };
        am.validate()?;
        Ok(am)
    }

    /// Structural validation: every state's arc block must decode
    /// within bounds, be contiguous with the next, and point at valid
    /// states.
    fn validate(&self) -> Result<(), ModelIoError> {
        let len = self.reader.buf().len_bits();
        let n = self.states.len() as u32;
        for (i, rec) in self.states.iter().enumerate() {
            let mut off = rec.bit_offset;
            for _ in 0..rec.narcs {
                if off + 20 > len {
                    return Err(ModelIoError::Corrupt("arc past end of stream"));
                }
                let tag = self.reader.read(off, 2);
                let width = if tag == TAG_NORMAL { 58 } else { 20 };
                if off + width > len {
                    return Err(ModelIoError::Corrupt("arc past end of stream"));
                }
                match tag {
                    t if t == TAG_NEXT && i as u32 + 1 >= n => {
                        return Err(ModelIoError::Corrupt("+1 arc from last state"));
                    }
                    t if t == TAG_PREV && i == 0 => {
                        return Err(ModelIoError::Corrupt("-1 arc from state 0"));
                    }
                    t if t == TAG_NORMAL => {
                        let dest = self.reader.read(off + 20 + 18, DEST_BITS) as u32;
                        if dest >= n {
                            return Err(ModelIoError::Corrupt("destination out of range"));
                        }
                    }
                    _ => {}
                }
                off += width;
            }
            let next_off = self.states.get(i + 1).map_or(len, |nr| nr.bit_offset);
            if off != next_off {
                return Err(ModelIoError::Corrupt("arc blocks not contiguous"));
            }
        }
        Ok(())
    }

    /// Fully decompresses into a [`Wfst`] (with quantized weights).
    /// Decoding against this machine is how the reproduction measures
    /// the WER impact of quantization (paper: < 0.01%).
    pub fn to_wfst(&self) -> Wfst {
        let mut b = WfstBuilder::with_states(self.states.len());
        b.set_start(self.start);
        for (s, rec) in self.states.iter().enumerate() {
            if rec.is_final {
                b.set_final(s as StateId, rec.final_weight);
            }
        }
        for s in 0..self.states.len() as StateId {
            for a in self.decode_arcs(s) {
                b.add_arc(s, a);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, HmmTopology, Lexicon};
    use unfold_wfst::SizeModel;

    fn am_fst() -> Wfst {
        build_am(&Lexicon::generate(200, 30, 5), HmmTopology::Kaldi3State).fst
    }

    #[test]
    fn roundtrip_preserves_topology() {
        let fst = am_fst();
        let comp = CompressedAm::compress(&fst, 64, 0);
        let rt = comp.to_wfst();
        assert_eq!(rt.num_states(), fst.num_states());
        assert_eq!(rt.num_arcs(), fst.num_arcs());
        assert_eq!(rt.start(), fst.start());
        for s in fst.states() {
            let orig = fst.arcs(s);
            let dec = rt.arcs(s);
            assert_eq!(orig.len(), dec.len());
            for (a, b) in orig.iter().zip(dec) {
                assert_eq!(a.ilabel, b.ilabel);
                assert_eq!(a.olabel, b.olabel);
                assert_eq!(a.nextstate, b.nextstate);
                assert!((a.weight - b.weight).abs() < 0.5, "weight error too big");
            }
            assert_eq!(fst.final_weight(s), rt.final_weight(s));
        }
    }

    #[test]
    fn majority_of_arcs_use_short_format() {
        let comp = CompressedAm::compress(&am_fst(), 64, 0);
        let total = comp.short_arcs() + comp.normal_arcs();
        assert!(
            comp.short_arcs() as f64 / total as f64 > 0.6,
            "short fraction {}",
            comp.short_arcs() as f64 / total as f64
        );
    }

    #[test]
    fn compression_ratio_is_large() {
        // Uncompressed: 128 bits/arc. Compressed: ~20 bits for most arcs
        // plus 64-bit state records. The paper's compression factor for
        // the split datasets is ~3x (Table 1 → Table 2); our lexicon
        // trie has a lower arc/state ratio than a production AM, so we
        // assert a slightly looser bound.
        let fst = am_fst();
        let comp = CompressedAm::compress(&fst, 64, 0);
        let ratio = SizeModel::UNCOMPRESSED.bytes(&fst) as f64 / comp.size_bytes() as f64;
        assert!(ratio > 2.5, "ratio {ratio}");
    }

    #[test]
    fn bit_offsets_monotone() {
        let comp = CompressedAm::compress(&am_fst(), 64, 0);
        for s in 1..comp.num_states() as StateId {
            assert!(comp.state_bit_offset(s) >= comp.state_bit_offset(s - 1));
        }
    }

    #[test]
    fn weights_come_from_codebook() {
        let fst = am_fst();
        let comp = CompressedAm::compress(&fst, 4, 0); // aggressive: 4 clusters
        let rt = comp.to_wfst();
        let mut distinct = std::collections::HashSet::new();
        for s in rt.states() {
            for a in rt.arcs(s) {
                distinct.insert(a.weight.to_bits());
            }
        }
        assert!(distinct.len() <= 4, "{} distinct weights", distinct.len());
    }

    #[test]
    fn for_each_arc_reports_widths() {
        let fst = am_fst();
        let comp = CompressedAm::compress(&fst, 64, 0);
        for s in (0..comp.num_states() as StateId).step_by(37) {
            let mut prev_end = comp.state_bit_offset(s);
            comp.for_each_arc(s, |a, off, width| {
                assert_eq!(off, prev_end, "arcs must be contiguous");
                assert!(width == 20 || width == 58);
                if width == 58 {
                    // Full-format arcs are exactly the non-local or
                    // cross-word ones.
                    assert!(
                        a.olabel != unfold_wfst::EPSILON
                            || (i64::from(a.nextstate) - i64::from(s)).abs() > 1
                    );
                }
                prev_end = off + u64::from(width);
            });
        }
    }

    #[test]
    fn byte_serialization_roundtrips_exactly() {
        let fst = am_fst();
        let comp = CompressedAm::compress(&fst, 64, 0);
        let bytes = comp.to_bytes();
        let back = CompressedAm::from_bytes(&bytes).expect("valid container");
        assert_eq!(back.num_states(), comp.num_states());
        assert_eq!(back.short_arcs(), comp.short_arcs());
        for s in (0..comp.num_states() as StateId).step_by(17) {
            assert_eq!(back.decode_arcs(s), comp.decode_arcs(s));
            assert_eq!(back.final_weight(s), comp.final_weight(s));
        }
        assert_eq!(back.to_bytes(), bytes, "re-serialization must be identical");
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_panicked() {
        use crate::io::ModelIoError;
        let comp = CompressedAm::compress(&am_fst(), 64, 0);
        let good = comp.to_bytes();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            CompressedAm::from_bytes(&bad).unwrap_err(),
            ModelIoError::BadMagic
        );
        // Truncated.
        assert_eq!(
            CompressedAm::from_bytes(&good[..good.len() / 2]).unwrap_err(),
            ModelIoError::Truncated
        );
        // Flip a state record's bit offset: contiguity validation must
        // surface a structural error, never a panic.
        // Header = 36 bytes with the cluster count k at bytes 32..36;
        // codebook = k * 4; state records are 20 bytes each, offset
        // first.
        let mut flipped = good.clone();
        let k = u32::from_le_bytes(good[32..36].try_into().unwrap()) as usize;
        let state1_offset = 36 + k * 4 + 20;
        flipped[state1_offset] ^= 0xFF;
        assert!(CompressedAm::from_bytes(&flipped).is_err());
    }

    #[test]
    fn ctc_graph_also_roundtrips() {
        let fst = build_am(&Lexicon::generate(80, 25, 9), HmmTopology::Ctc).fst;
        let comp = CompressedAm::compress(&fst, 64, 1);
        let rt = comp.to_wfst();
        assert_eq!(rt.num_arcs(), fst.num_arcs());
    }
}
