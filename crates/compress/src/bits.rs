//! Bit-granular storage with random access.
//!
//! The compressed AM/LM layouts pack arcs at arbitrary bit offsets
//! (20/27/45/58-bit records), and the LM's binary search needs random
//! access to the *i*-th fixed-width arc of a state. [`BitWriter`]
//! appends fields LSB-first; [`BitReader`] reads any `(offset, width)`
//! window in O(1).

/// Append-only bit stream writer.
///
/// ```
/// use unfold_compress::{BitWriter, BitReader};
/// let mut w = BitWriter::new();
/// w.push(0b101, 3);
/// w.push(0x3FFFF, 18);
/// let r = BitReader::new(w.finish());
/// assert_eq!(r.read(0, 3), 0b101);
/// assert_eq!(r.read(3, 18), 0x3FFFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    len_bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far (the offset of the next push).
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    /// Panics if `width` is 0 or > 57, or if `value` has bits above
    /// `width`. (57 keeps every field within two words; all formats in
    /// this crate use ≤ 24-bit fields.)
    pub fn push(&mut self, value: u64, width: u32) {
        assert!(
            (1..=57).contains(&width),
            "push: width {width} out of range"
        );
        assert!(
            width == 64 || value < (1u64 << width),
            "push: value {value:#x} does not fit in {width} bits"
        );
        let word = (self.len_bits / 64) as usize;
        let bit = (self.len_bits % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << bit;
        if bit + width > 64 {
            self.words.push(value >> (64 - bit));
        }
        self.len_bits += u64::from(width);
    }

    /// Finalizes the stream.
    pub fn finish(self) -> BitBuf {
        BitBuf {
            words: self.words,
            len_bits: self.len_bits,
        }
    }
}

/// Best-effort read-prefetch of the cache line holding `p`. A hint
/// only: never faults, never changes program behavior. Compiles to
/// `prefetcht0` on x86-64 and to nothing elsewhere.
#[inline]
pub fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it performs no memory access that
    // could fault, even on a dangling pointer.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// An immutable bit buffer.
#[derive(Debug, Clone, Default)]
pub struct BitBuf {
    words: Vec<u64>,
    len_bits: u64,
}

impl BitBuf {
    /// Length in bits.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// The backing 64-bit words (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a buffer from its raw parts.
    ///
    /// # Panics
    /// Panics if `len_bits` does not fit within `words`.
    pub fn from_raw(words: Vec<u64>, len_bits: u64) -> Self {
        assert!(
            len_bits <= words.len() as u64 * 64,
            "from_raw: {len_bits} bits exceed {} words",
            words.len()
        );
        BitBuf { words, len_bits }
    }

    /// Storage footprint in bytes, rounded up to whole bytes (this is
    /// what the size tables report).
    pub fn size_bytes(&self) -> u64 {
        self.len_bits.div_ceil(8)
    }

    /// Hints the cache to load the word holding `bit_offset` (no-op
    /// when out of range — prefetch must never panic).
    #[inline]
    pub fn prefetch(&self, bit_offset: u64) {
        if let Some(w) = self.words.get((bit_offset / 64) as usize) {
            prefetch_read((w as *const u64).cast());
        }
    }
}

/// Random-access reader over a [`BitBuf`].
#[derive(Debug, Clone)]
pub struct BitReader {
    buf: BitBuf,
}

impl BitReader {
    /// Wraps a finished buffer.
    pub fn new(buf: BitBuf) -> Self {
        BitReader { buf }
    }

    /// The underlying buffer.
    pub fn buf(&self) -> &BitBuf {
        &self.buf
    }

    /// Hints the cache to load the word holding `bit_offset`.
    #[inline]
    pub fn prefetch(&self, bit_offset: u64) {
        self.buf.prefetch(bit_offset);
    }

    /// Reads `width` bits starting at bit `offset`.
    ///
    /// # Panics
    /// Panics if the window exceeds the buffer or `width` > 57.
    #[inline]
    pub fn read(&self, offset: u64, width: u32) -> u64 {
        assert!(
            (1..=57).contains(&width),
            "read: width {width} out of range"
        );
        assert!(
            offset + u64::from(width) <= self.buf.len_bits,
            "read: window [{offset}, +{width}) beyond {} bits",
            self.buf.len_bits
        );
        let word = (offset / 64) as usize;
        let bit = (offset % 64) as u32;
        let mask = (1u64 << width) - 1;
        let lo = self.buf.words[word] >> bit;
        let val = if bit + width <= 64 {
            lo
        } else {
            lo | (self.buf.words[word + 1] << (64 - bit))
        };
        val & mask
    }
}

/// Random-access bit reader over raw *bytes* — the zero-copy twin of
/// [`BitReader`].
///
/// The serialized containers store the arc stream as little-endian
/// 64-bit words, so bit `i` of the stream is bit `i % 8` of byte
/// `i / 8` of the serialized section. That makes the on-disk bytes
/// directly readable: no deserialization into a `Vec<u64>` is needed,
/// which is what lets [`crate::CompressedAmRef`] and
/// [`crate::CompressedLmRef`] decode arcs straight out of an
/// mmap-backed bundle.
///
/// ```
/// use unfold_compress::{BitSlice, BitWriter};
/// let mut w = BitWriter::new();
/// w.push(0b101, 3);
/// w.push(0x3FFFF, 18);
/// let buf = w.finish();
/// let bytes: Vec<u8> = buf.words().iter().flat_map(|w| w.to_le_bytes()).collect();
/// let s = BitSlice::new(&bytes, buf.len_bits());
/// assert_eq!(s.read(0, 3), 0b101);
/// assert_eq!(s.read(3, 18), 0x3FFFF);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BitSlice<'a> {
    bytes: &'a [u8],
    len_bits: u64,
}

impl<'a> BitSlice<'a> {
    /// Wraps `bytes` holding `len_bits` valid bits.
    ///
    /// # Panics
    /// Panics if `len_bits` exceeds the slice.
    pub fn new(bytes: &'a [u8], len_bits: u64) -> Self {
        assert!(
            len_bits <= bytes.len() as u64 * 8,
            "BitSlice: {len_bits} bits exceed {} bytes",
            bytes.len()
        );
        BitSlice { bytes, len_bits }
    }

    /// Length in bits.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Hints the cache to load the byte holding `bit_offset` (no-op
    /// when out of range).
    #[inline]
    pub fn prefetch(&self, bit_offset: u64) {
        if let Some(b) = self.bytes.get((bit_offset / 8) as usize) {
            prefetch_read(b as *const u8);
        }
    }

    /// Reads `width` bits starting at bit `offset`. Semantically
    /// identical to [`BitReader::read`] over the same stream.
    ///
    /// # Panics
    /// Panics if the window exceeds the buffer or `width` > 57.
    #[inline]
    pub fn read(&self, offset: u64, width: u32) -> u64 {
        assert!(
            (1..=57).contains(&width),
            "read: width {width} out of range"
        );
        assert!(
            offset + u64::from(width) <= self.len_bits,
            "read: window [{offset}, +{width}) beyond {} bits",
            self.len_bits
        );
        let byte = (offset / 8) as usize;
        let bit = (offset % 8) as u32;
        // width <= 57 and bit <= 7, so the window fits one unaligned
        // 64-bit load; zero-pad near the end of the slice.
        let mut raw = [0u8; 8];
        let take = 8.min(self.bytes.len() - byte);
        raw[..take].copy_from_slice(&self.bytes[byte..byte + take]);
        (u64::from_le_bytes(raw) >> bit) & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_buffer() {
        let b = BitWriter::new().finish();
        assert_eq!(b.len_bits(), 0);
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn crosses_word_boundaries() {
        let mut w = BitWriter::new();
        // 60 bits, then a 20-bit value straddling the first word.
        w.push((1u64 << 57) - 1, 57);
        w.push(0b111, 3);
        w.push(0xABCDE, 20);
        let r = BitReader::new(w.finish());
        assert_eq!(r.read(0, 57), (1u64 << 57) - 1);
        assert_eq!(r.read(57, 3), 0b111);
        assert_eq!(r.read(60, 20), 0xABCDE);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().push(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn read_past_end_panics() {
        let mut w = BitWriter::new();
        w.push(1, 4);
        BitReader::new(w.finish()).read(2, 4);
    }

    #[test]
    fn size_rounds_up_to_bytes() {
        let mut w = BitWriter::new();
        w.push(1, 9);
        assert_eq!(w.finish().size_bytes(), 2);
    }

    #[test]
    fn bit_slice_handles_tail_windows() {
        let mut w = BitWriter::new();
        w.push(0x1FF, 9); // 2 bytes of stream, window ends mid-byte
        let buf = w.finish();
        let bytes: Vec<u8> = buf.words().iter().flat_map(|x| x.to_le_bytes()).collect();
        let s = BitSlice::new(&bytes[..2], buf.len_bits());
        assert_eq!(s.read(0, 9), 0x1FF);
        assert_eq!(s.read(3, 6), 0x3F);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn bit_slice_read_past_end_panics() {
        BitSlice::new(&[0xFF], 4).read(2, 4);
    }

    proptest! {
        #[test]
        fn roundtrip_random_fields(fields in proptest::collection::vec((0u64..1u64<<24, 1u32..25), 1..200)) {
            let mut w = BitWriter::new();
            let mut offsets = Vec::new();
            for &(v, width) in &fields {
                let v = v & ((1 << width) - 1);
                offsets.push(w.len_bits());
                w.push(v, width);
            }
            let r = BitReader::new(w.finish());
            for (&(v, width), &off) in fields.iter().zip(&offsets) {
                let v = v & ((1 << width) - 1);
                prop_assert_eq!(r.read(off, width), v);
            }
        }

        /// A `BitSlice` over the little-endian serialization of the words
        /// must read every window identically to the `BitReader`.
        #[test]
        fn bit_slice_matches_bit_reader(fields in proptest::collection::vec((0u64..1u64<<24, 1u32..25), 1..200)) {
            let mut w = BitWriter::new();
            let mut offsets = Vec::new();
            for &(v, width) in &fields {
                offsets.push(w.len_bits());
                w.push(v & ((1 << width) - 1), width);
            }
            let buf = w.finish();
            let bytes: Vec<u8> = buf.words().iter().flat_map(|x| x.to_le_bytes()).collect();
            let r = BitReader::new(buf.clone());
            let s = BitSlice::new(&bytes, buf.len_bits());
            for (&(_, width), &off) in fields.iter().zip(&offsets) {
                prop_assert_eq!(s.read(off, width), r.read(off, width));
            }
        }
    }
}
