//! Binary container format for the compressed models.
//!
//! UNFOLD's deployment story is "ship tens of megabytes instead of a
//! gigabyte" (§5.3: wearables with ≤1 GB of memory); that needs the
//! compressed AM/LM to exist as *files*. This module defines a small
//! little-endian container: magic + version, the state table, the
//! K-means codebook, and the raw arc bit stream. Round-trips are exact
//! (bit-for-bit), and loading validates structure rather than trusting
//! the bytes.

use crate::am::CompressedAm;
use crate::lm::CompressedLm;

/// Magic for serialized compressed AMs.
pub const AM_MAGIC: [u8; 4] = *b"UNFA";
/// Magic for serialized compressed LMs.
pub const LM_MAGIC: [u8; 4] = *b"UNFL";
/// Container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from loading a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelIoError {
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::BadMagic => write!(f, "bad magic bytes"),
            ModelIoError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            ModelIoError::Truncated => write!(f, "buffer truncated"),
            ModelIoError::Corrupt(what) => write!(f, "corrupt model: {what}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

/// Little-endian byte cursor used by the model loaders.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ModelIoError> {
        if self.pos + n > self.buf.len() {
            return Err(ModelIoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ModelIoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ModelIoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, ModelIoError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Current byte position (section-layout bookkeeping for the
    /// zero-copy views).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left in the buffer (to validate declared counts before
    /// allocating — a hostile header must not trigger a huge
    /// `Vec::with_capacity`).
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Little-endian byte sink used by the model writers.
#[derive(Default)]
pub(crate) struct ByteWriter {
    pub(crate) out: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f32(&mut self, v: f32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Convenience: write a compressed AM to a file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_am(am: &CompressedAm, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, am.to_bytes())
}

/// Convenience: load a compressed AM from a file.
///
/// # Errors
/// Propagates I/O errors; corrupt files map to `InvalidData`.
pub fn load_am(path: &std::path::Path) -> std::io::Result<CompressedAm> {
    let bytes = std::fs::read(path)?;
    CompressedAm::from_bytes(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Convenience: write a compressed LM to a file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_lm(lm: &CompressedLm, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, lm.to_bytes())
}

/// Convenience: load a compressed LM from a file.
///
/// # Errors
/// Propagates I/O errors; corrupt files map to `InvalidData`.
pub fn load_lm(path: &std::path::Path) -> std::io::Result<CompressedLm> {
    let bytes = std::fs::read(path)?;
    CompressedLm::from_bytes(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_primitives() {
        let mut w = ByteWriter::default();
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.f32(1.5);
        let mut r = ByteReader::new(&w.out);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert!(r.done());
    }

    #[test]
    fn truncation_detected() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u32().unwrap_err(), ModelIoError::Truncated);
    }

    #[test]
    fn error_messages() {
        assert!(ModelIoError::BadMagic.to_string().contains("magic"));
        assert!(ModelIoError::BadVersion(9).to_string().contains('9'));
        assert!(ModelIoError::Corrupt("x").to_string().contains('x'));
    }

    mod fuzz {
        use crate::{CompressedAm, CompressedLm};
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary bytes must produce an error, never a panic or a
            /// structurally unsound model.
            #[test]
            fn random_bytes_never_panic_loaders(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
                let _ = CompressedAm::from_bytes(&bytes);
                let _ = CompressedLm::from_bytes(&bytes);
            }

            /// Same with a valid magic prefix (reaches deeper code paths).
            #[test]
            fn magic_prefixed_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
                let mut am = super::AM_MAGIC.to_vec();
                am.extend_from_slice(&1u32.to_le_bytes());
                am.extend_from_slice(&bytes);
                let _ = CompressedAm::from_bytes(&am);
                let mut lm = super::LM_MAGIC.to_vec();
                lm.extend_from_slice(&1u32.to_le_bytes());
                lm.extend_from_slice(&bytes);
                let _ = CompressedLm::from_bytes(&lm);
            }
        }
    }
}
