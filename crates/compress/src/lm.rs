//! Compressed LM format (paper §3.4).
//!
//! Three arc classes, as in the paper:
//!
//! * **Unigram arcs** (root state): "no information other than a 6-bit
//!   weight value is required" — the *i*-th arc is word *i* and points
//!   at state *i* (an invariant `unfold_lm::graph` establishes).
//! * **Back-off arcs**: 27 bits (21-bit destination + 6-bit weight),
//!   always stored *last* in a state so they are addressable without
//!   searching.
//! * **Regular arcs**: 45 bits (18-bit word id + 21-bit destination +
//!   6-bit weight), fixed-width so the *i*-th arc of a state sits at a
//!   computable bit offset — the random access the binary search needs.

use unfold_wfst::{Arc, Label, StateId, Wfst, WfstBuilder, EPSILON};

use crate::bits::{BitBuf, BitReader, BitWriter};
use crate::io::{ByteReader, ByteWriter, ModelIoError, FORMAT_VERSION, LM_MAGIC};
use crate::quant::WeightQuantizer;

const WORD_BITS: u32 = 18;
const DEST_BITS: u32 = 21;
const WEIGHT_BITS: u32 = 6;
/// Regular arc width: 18 + 21 + 6.
pub const REGULAR_ARC_BITS: u64 = 45;
/// Back-off arc width: 21 + 6.
pub const BACKOFF_ARC_BITS: u64 = 27;
/// Unigram arc width: weight only.
pub const UNIGRAM_ARC_BITS: u64 = 6;

#[derive(Debug, Clone, Copy)]
struct StateRec {
    bit_offset: u64,
    /// Word-labelled arcs (excludes the back-off arc).
    num_word_arcs: u32,
    has_backoff: bool,
}

/// Result of looking up a word at an LM state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmLookup {
    /// The matching arc, if the state has one for the word.
    pub arc: Option<Arc>,
    /// Binary-search probes performed (each is an LM-arc memory fetch).
    pub probes: u32,
    /// Bit offset of the last probed arc (address modeling).
    pub bit_offset: u64,
}

/// An LM WFST in the compressed bit-packed format.
#[derive(Debug, Clone)]
pub struct CompressedLm {
    states: Vec<StateRec>,
    reader: BitReader,
    quant: WeightQuantizer,
}

impl CompressedLm {
    /// Compresses an LM WFST produced by `unfold_lm::lm_to_wfst`.
    ///
    /// # Panics
    /// Panics if the machine violates the layout invariants: root arcs
    /// not in word order with `dest == word == index + 1`, arcs not
    /// ilabel-sorted, more than one epsilon arc per state, epsilon arcs
    /// not last, or fields exceeding their bit budgets.
    pub fn compress(fst: &Wfst, k: usize, seed: u64) -> Self {
        assert!(fst.num_states() > 0, "compress: empty LM");
        assert_eq!(fst.start(), 0, "compress: LM root must be state 0");
        assert!(
            fst.num_states() < (1 << DEST_BITS),
            "compress: {} states exceed the 21-bit destination field",
            fst.num_states()
        );
        assert!(fst.is_ilabel_sorted(), "compress: LM arcs must be sorted");

        let weights: Vec<f32> = fst
            .states()
            .flat_map(|s| fst.arcs(s).iter().map(|a| a.weight))
            .collect();
        assert!(
            k <= 64,
            "compress: the LM format stores 6-bit weight indices (k <= 64)"
        );
        let quant = WeightQuantizer::fit(&weights, k, seed);

        let mut w = BitWriter::new();
        let mut states = Vec::with_capacity(fst.num_states());

        // Root: positional unigram arcs.
        let root_arcs = fst.arcs(0);
        for (i, a) in root_arcs.iter().enumerate() {
            assert_eq!(
                a.ilabel,
                i as Label + 1,
                "root arc {i} is not word {}",
                i + 1
            );
            assert_eq!(
                a.nextstate,
                i as StateId + 1,
                "root arc {i} breaks the dest invariant"
            );
        }
        states.push(StateRec {
            bit_offset: 0,
            num_word_arcs: root_arcs.len() as u32,
            has_backoff: false,
        });
        for a in root_arcs {
            w.push(u64::from(quant.encode(a.weight)), WEIGHT_BITS);
        }

        // Remaining states: fixed-width word arcs, optional back-off last.
        for s in 1..fst.num_states() as StateId {
            let arcs = fst.arcs(s);
            let eps_count = arcs.iter().filter(|a| a.ilabel == EPSILON).count();
            assert!(eps_count <= 1, "state {s}: multiple back-off arcs");
            let has_backoff = eps_count == 1;
            let num_word_arcs = arcs.len() - eps_count;
            states.push(StateRec {
                bit_offset: w.len_bits(),
                num_word_arcs: num_word_arcs as u32,
                has_backoff,
            });
            for a in &arcs[..num_word_arcs] {
                assert!(
                    a.ilabel < (1 << WORD_BITS),
                    "word id {} exceeds 18 bits",
                    a.ilabel
                );
                w.push(u64::from(a.ilabel), WORD_BITS);
                w.push(u64::from(a.nextstate), DEST_BITS);
                w.push(u64::from(quant.encode(a.weight)), WEIGHT_BITS);
            }
            if has_backoff {
                let back = arcs.last().unwrap();
                assert_eq!(back.ilabel, EPSILON, "state {s}: back-off arc must be last");
                w.push(u64::from(back.nextstate), DEST_BITS);
                w.push(u64::from(quant.encode(back.weight)), WEIGHT_BITS);
            }
        }

        CompressedLm {
            states,
            reader: BitReader::new(w.finish()),
            quant,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of word-labelled arcs at `s`.
    pub fn num_word_arcs(&self, s: StateId) -> u32 {
        self.states[s as usize].num_word_arcs
    }

    /// Total compressed size in bytes (bit stream + 8-byte state records
    /// + centroid table).
    pub fn size_bytes(&self) -> u64 {
        self.reader.buf().size_bytes() + self.states.len() as u64 * 8 + self.quant.table_bytes()
    }

    /// Decodes the `i`-th word arc of `s`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn word_arc(&self, s: StateId, i: u32) -> Arc {
        let rec = &self.states[s as usize];
        assert!(
            i < rec.num_word_arcs,
            "word_arc: index {i} out of range at state {s}"
        );
        if s == 0 {
            let off = rec.bit_offset + u64::from(i) * UNIGRAM_ARC_BITS;
            let widx = self.reader.read(off, WEIGHT_BITS) as u8;
            Arc::new(i + 1, i + 1, self.quant.decode(widx), i + 1)
        } else {
            let off = rec.bit_offset + u64::from(i) * REGULAR_ARC_BITS;
            let word = self.reader.read(off, WORD_BITS) as u32;
            let dest = self.reader.read(off + u64::from(WORD_BITS), DEST_BITS) as u32;
            let widx = self.reader.read(
                off + u64::from(WORD_BITS) + u64::from(DEST_BITS),
                WEIGHT_BITS,
            ) as u8;
            Arc::new(word, word, self.quant.decode(widx), dest)
        }
    }

    /// Hints the cache to load `s`'s state record neighborhood and the
    /// head of its word-arc region, ahead of a lookup. No-op on an
    /// out-of-range state — a hint must never panic.
    #[inline]
    pub fn prefetch_state(&self, s: StateId) {
        if let Some(rec) = self.states.get(s as usize) {
            self.reader.prefetch(rec.bit_offset);
        }
    }

    /// Bit offset of the `i`-th word arc of `s` (address modeling).
    pub fn word_arc_bit_offset(&self, s: StateId, i: u32) -> u64 {
        let rec = &self.states[s as usize];
        let width = if s == 0 {
            UNIGRAM_ARC_BITS
        } else {
            REGULAR_ARC_BITS
        };
        rec.bit_offset + u64::from(i) * width
    }

    /// The back-off arc of `s`, if present.
    pub fn backoff_arc(&self, s: StateId) -> Option<Arc> {
        let rec = &self.states[s as usize];
        if !rec.has_backoff {
            return None;
        }
        let off = rec.bit_offset + u64::from(rec.num_word_arcs) * REGULAR_ARC_BITS;
        let dest = self.reader.read(off, DEST_BITS) as u32;
        let widx = self.reader.read(off + u64::from(DEST_BITS), WEIGHT_BITS) as u8;
        Some(Arc::epsilon(self.quant.decode(widx), dest))
    }

    /// Looks up `word` at `s`: O(1) positional access at the root,
    /// binary search over the fixed-width arcs elsewhere.
    ///
    /// # Panics
    /// Panics if `word` is epsilon.
    pub fn lookup(&self, s: StateId, word: Label) -> LmLookup {
        assert_ne!(word, EPSILON, "lookup: cannot search for epsilon");
        let rec = &self.states[s as usize];
        if s == 0 {
            // Root: i-th arc is word i+1.
            if word <= rec.num_word_arcs {
                return LmLookup {
                    arc: Some(self.word_arc(0, word - 1)),
                    probes: 1,
                    bit_offset: self.word_arc_bit_offset(0, word - 1),
                };
            }
            return LmLookup {
                arc: None,
                probes: 1,
                bit_offset: rec.bit_offset,
            };
        }
        let mut lo = 0u32;
        let mut hi = rec.num_word_arcs;
        let mut probes = 0;
        let mut last_off = rec.bit_offset;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            last_off = self.word_arc_bit_offset(s, mid);
            let a = self.word_arc(s, mid);
            match a.ilabel.cmp(&word) {
                std::cmp::Ordering::Equal => {
                    return LmLookup {
                        arc: Some(a),
                        probes,
                        bit_offset: last_off,
                    }
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        LmLookup {
            arc: None,
            probes: probes.max(1),
            bit_offset: last_off,
        }
    }

    /// Resolves `word` from `s` with full back-off semantics; mirrors
    /// `unfold_wfst::compose::resolve_lm_word` on the compressed form.
    ///
    /// Returns `(destination, total_cost, backoff_hops, total_probes)`.
    pub fn resolve(&self, s: StateId, word: Label) -> Option<(StateId, f32, u32, u32)> {
        let mut state = s;
        let mut cost = 0.0f32;
        let mut hops = 0u32;
        let mut probes = 0u32;
        loop {
            let res = self.lookup(state, word);
            probes += res.probes;
            if let Some(arc) = res.arc {
                return Some((arc.nextstate, cost + arc.weight, hops, probes));
            }
            let back = self.backoff_arc(state)?;
            cost += back.weight;
            state = back.nextstate;
            hops += 1;
            assert!(hops <= 8, "resolve: back-off chain too long");
        }
    }

    /// Serializes to the `UNFL` container (see [`crate::io`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.out.extend_from_slice(&LM_MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.states.len() as u32);
        w.u32(self.quant.num_clusters() as u32);
        for &c in self.quant.centroids() {
            w.f32(c);
        }
        for rec in &self.states {
            w.u64(rec.bit_offset);
            w.u32(rec.num_word_arcs);
            w.u32(u32::from(rec.has_backoff));
        }
        let buf = self.reader.buf();
        w.u64(buf.len_bits());
        w.u32(buf.words().len() as u32);
        for &word in buf.words() {
            w.u64(word);
        }
        w.out
    }

    /// Deserializes from the `UNFL` container, validating structure
    /// before returning.
    ///
    /// # Errors
    /// Returns [`ModelIoError`] on bad magic/version, truncation, or
    /// structurally invalid content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelIoError> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != LM_MAGIC {
            return Err(ModelIoError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(ModelIoError::BadVersion(version));
        }
        let num_states = r.u32()? as usize;
        if num_states == 0 || num_states >= (1 << DEST_BITS) {
            return Err(ModelIoError::Corrupt("state count out of range"));
        }
        let k = r.u32()? as usize;
        if k == 0 || k > 64 {
            return Err(ModelIoError::Corrupt("cluster count out of range"));
        }
        let mut centroids = Vec::with_capacity(k);
        for _ in 0..k {
            centroids.push(r.f32()?);
        }
        if !centroids.windows(2).all(|w| w[0] <= w[1]) {
            return Err(ModelIoError::Corrupt("codebook not sorted"));
        }
        if num_states.checked_mul(16).is_none_or(|n| n > r.remaining()) {
            return Err(ModelIoError::Truncated);
        }
        let mut states = Vec::with_capacity(num_states);
        for _ in 0..num_states {
            let bit_offset = r.u64()?;
            let num_word_arcs = r.u32()?;
            let has_backoff = r.u32()? != 0;
            states.push(StateRec {
                bit_offset,
                num_word_arcs,
                has_backoff,
            });
        }
        let len_bits = r.u64()?;
        let num_words = r.u32()? as usize;
        if len_bits > num_words as u64 * 64 {
            return Err(ModelIoError::Corrupt("bit length exceeds words"));
        }
        if num_words.checked_mul(8).is_none_or(|n| n > r.remaining()) {
            return Err(ModelIoError::Truncated);
        }
        let mut words = Vec::with_capacity(num_words);
        for _ in 0..num_words {
            words.push(r.u64()?);
        }
        if !r.done() {
            return Err(ModelIoError::Corrupt("trailing bytes"));
        }
        let lm = CompressedLm {
            states,
            reader: BitReader::new(BitBuf::from_raw(words, len_bits)),
            quant: WeightQuantizer::from_centroids(centroids),
        };
        lm.validate()?;
        Ok(lm)
    }

    /// Structural validation: blocks within bounds and contiguous,
    /// word arcs sorted, destinations in range, root back-off absent.
    fn validate(&self) -> Result<(), ModelIoError> {
        let len = self.reader.buf().len_bits();
        let n = self.states.len() as u32;
        if self.states[0].has_backoff {
            return Err(ModelIoError::Corrupt("root state has a back-off arc"));
        }
        for (i, rec) in self.states.iter().enumerate() {
            let width = if i == 0 {
                UNIGRAM_ARC_BITS
            } else {
                REGULAR_ARC_BITS
            };
            let mut end = rec
                .bit_offset
                .checked_add(u64::from(rec.num_word_arcs) * width)
                .ok_or(ModelIoError::Corrupt("offset overflow"))?;
            if rec.has_backoff {
                end += BACKOFF_ARC_BITS;
            }
            if end > len {
                return Err(ModelIoError::Corrupt("arc block past end of stream"));
            }
            if i > 0 {
                let mut prev_word = 0u32;
                for a in 0..rec.num_word_arcs {
                    let arc = self.word_arc(i as StateId, a);
                    if arc.ilabel <= prev_word {
                        return Err(ModelIoError::Corrupt("word arcs not sorted"));
                    }
                    prev_word = arc.ilabel;
                    if arc.nextstate >= n {
                        return Err(ModelIoError::Corrupt("destination out of range"));
                    }
                }
                if let Some(back) = self.backoff_arc(i as StateId) {
                    if back.nextstate >= n {
                        return Err(ModelIoError::Corrupt("back-off destination out of range"));
                    }
                }
            }
            let next_off = self.states.get(i + 1).map_or(len, |nr| nr.bit_offset);
            if end != next_off {
                return Err(ModelIoError::Corrupt("arc blocks not contiguous"));
            }
        }
        Ok(())
    }

    /// Fully decompresses into a [`Wfst`] with quantized weights.
    pub fn to_wfst(&self) -> Wfst {
        let mut b = WfstBuilder::with_states(self.states.len());
        b.set_start(0);
        for s in 0..self.states.len() as StateId {
            b.set_final(s, 0.0);
        }
        for s in 0..self.states.len() as StateId {
            for i in 0..self.states[s as usize].num_word_arcs {
                b.add_arc(s, self.word_arc(s, i));
            }
            if let Some(back) = self.backoff_arc(s) {
                b.add_arc(s, back);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::compose::resolve_lm_word;
    use unfold_wfst::SizeModel;

    fn lm_fst() -> Wfst {
        let spec = CorpusSpec {
            vocab_size: 120,
            num_sentences: 500,
            ..Default::default()
        };
        let corpus = spec.generate(77);
        let model = NGramModel::train(&corpus, 120, DiscountConfig::default());
        lm_to_wfst(&model)
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let fst = lm_fst();
        let comp = CompressedLm::compress(&fst, 64, 0);
        let rt = comp.to_wfst();
        assert_eq!(rt.num_states(), fst.num_states());
        assert_eq!(rt.num_arcs(), fst.num_arcs());
        for s in fst.states() {
            let (o, d) = (fst.arcs(s), rt.arcs(s));
            assert_eq!(o.len(), d.len(), "state {s}");
            for (a, b) in o.iter().zip(d) {
                assert_eq!(a.ilabel, b.ilabel);
                assert_eq!(a.nextstate, b.nextstate);
                assert!(
                    (a.weight - b.weight).abs() < 2.0,
                    "tail outlier beyond codebook reach"
                );
            }
        }
    }

    #[test]
    fn lookup_matches_uncompressed_binary_search() {
        let fst = lm_fst();
        let comp = CompressedLm::compress(&fst, 64, 0);
        for s in (0..fst.num_states() as StateId).step_by(13) {
            for word in (1..=120u32).step_by(7) {
                let (want, _) = fst.find_arc(s, word);
                let got = comp.lookup(s, word);
                assert_eq!(
                    want.map(|a| (a.ilabel, a.nextstate)),
                    got.arc.map(|a| (a.ilabel, a.nextstate)),
                    "state {s} word {word}"
                );
            }
        }
    }

    #[test]
    fn root_lookup_is_one_probe() {
        let comp = CompressedLm::compress(&lm_fst(), 64, 0);
        for word in [1u32, 60, 120] {
            let res = comp.lookup(0, word);
            assert_eq!(res.probes, 1);
            assert_eq!(res.arc.unwrap().nextstate, word);
        }
    }

    #[test]
    fn resolve_matches_uncompressed_up_to_quantization() {
        let fst = lm_fst();
        let comp = CompressedLm::compress(&fst, 64, 0);
        for s in (0..fst.num_states() as StateId).step_by(11) {
            for word in (1..=120u32).step_by(17) {
                let (d0, w0, h0) = resolve_lm_word(&fst, s, word).unwrap();
                let (d1, w1, h1, _) = comp.resolve(s, word).unwrap();
                assert_eq!(d0, d1, "dest mismatch at state {s} word {word}");
                assert_eq!(h0, h1, "hop mismatch at state {s} word {word}");
                // Back-off chains accumulate up to 3 quantized weights.
                assert!((w0 - w1).abs() < 2.0, "cost {w0} vs {w1}");
            }
        }
    }

    #[test]
    fn compression_ratio_is_large() {
        let fst = lm_fst();
        let comp = CompressedLm::compress(&fst, 64, 0);
        let ratio = SizeModel::UNCOMPRESSED.bytes(&fst) as f64 / comp.size_bytes() as f64;
        assert!(ratio > 2.5, "ratio {ratio}");
    }

    #[test]
    fn backoff_arcs_present_on_non_root_states() {
        let fst = lm_fst();
        let comp = CompressedLm::compress(&fst, 64, 0);
        assert!(comp.backoff_arc(0).is_none());
        for s in 1..comp.num_states() as StateId {
            assert!(
                comp.backoff_arc(s).is_some(),
                "state {s} lost its back-off arc"
            );
        }
    }

    #[test]
    fn byte_serialization_roundtrips_exactly() {
        let comp = CompressedLm::compress(&lm_fst(), 64, 0);
        let bytes = comp.to_bytes();
        let back = CompressedLm::from_bytes(&bytes).expect("valid container");
        assert_eq!(back.num_states(), comp.num_states());
        for s in (0..comp.num_states() as StateId).step_by(13) {
            for w in (1..=120u32).step_by(11) {
                assert_eq!(back.lookup(s, w).arc, comp.lookup(s, w).arc);
            }
            assert_eq!(back.backoff_arc(s), comp.backoff_arc(s));
        }
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_lm_bytes_are_rejected() {
        use crate::io::ModelIoError;
        let comp = CompressedLm::compress(&lm_fst(), 64, 0);
        let good = comp.to_bytes();
        let mut bad = good.clone();
        bad[1] = b'?';
        assert_eq!(
            CompressedLm::from_bytes(&bad).unwrap_err(),
            ModelIoError::BadMagic
        );
        assert_eq!(
            CompressedLm::from_bytes(&good[..20]).unwrap_err(),
            ModelIoError::Truncated
        );
        // Corrupt a state-record bit offset: header = 16 bytes,
        // codebook = 64 * 4; records are 16 bytes each, offset first.
        let mut flipped = good.clone();
        let state3_offset = 16 + 64 * 4 + 3 * 16;
        flipped[state3_offset] ^= 0x5A;
        assert!(CompressedLm::from_bytes(&flipped).is_err());
    }

    #[test]
    fn arc_widths_match_paper() {
        assert_eq!(REGULAR_ARC_BITS, 45);
        assert_eq!(BACKOFF_ARC_BITS, 27);
        assert_eq!(UNIGRAM_ARC_BITS, 6);
    }
}
