//! Topology statistics and byte-size accounting.
//!
//! The paper's memory-footprint claims (Table 1, Table 2, Figure 8) are
//! all about how many bytes the AM, LM, and composed WFSTs occupy under
//! specific layouts. [`SizeModel`] pins down the uncompressed layout:
//! 16 bytes per arc (four 32-bit fields, §3.4) and 8 bytes per state
//! record (32-bit first-arc offset, 16-bit arc count, 16-bit final-weight
//! slot — the "bandwidth reduction scheme" state record of \[34\] that
//! §3.4 adopts for the states array).

use crate::fst::Wfst;

/// Bytes per arc / state under a given storage layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeModel {
    /// Bytes for each arc record.
    pub bytes_per_arc: u64,
    /// Bytes for each state record.
    pub bytes_per_state: u64,
}

impl SizeModel {
    /// The paper's uncompressed layout: 128-bit arcs, 64-bit states.
    pub const UNCOMPRESSED: SizeModel = SizeModel {
        bytes_per_arc: 16,
        bytes_per_state: 8,
    };

    /// Total bytes for `fst` under this layout.
    pub fn bytes(&self, fst: &Wfst) -> u64 {
        self.bytes_per_arc * fst.num_arcs() as u64 + self.bytes_per_state * fst.num_states() as u64
    }

    /// Total mebibytes for `fst` under this layout.
    pub fn mib(&self, fst: &Wfst) -> f64 {
        self.bytes(fst) as f64 / (1024.0 * 1024.0)
    }
}

impl Default for SizeModel {
    fn default() -> Self {
        Self::UNCOMPRESSED
    }
}

/// Aggregate topology statistics for a WFST.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FstStats {
    /// Number of states.
    pub num_states: usize,
    /// Number of arcs.
    pub num_arcs: usize,
    /// Number of final states.
    pub num_final: usize,
    /// Arcs whose output label is a word id.
    pub cross_word_arcs: usize,
    /// Arcs with epsilon input (back-off arcs in an LM).
    pub epsilon_input_arcs: usize,
    /// Largest out-degree of any state.
    pub max_out_degree: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Arcs whose destination is the same state, the previous state, or
    /// the next state — the fraction the paper's 20-bit compressed AM
    /// format (Figure 5) applies to.
    pub local_arcs: usize,
    /// Bytes under [`SizeModel::UNCOMPRESSED`].
    pub uncompressed_bytes: u64,
}

impl FstStats {
    /// Computes statistics for `fst`.
    ///
    /// ```
    /// use unfold_wfst::{WfstBuilder, Arc, FstStats};
    /// let mut b = WfstBuilder::with_states(2);
    /// b.set_start(0);
    /// b.set_final(1, 0.0);
    /// b.add_arc(0, Arc::new(1, 0, 0.0, 1));
    /// let stats = FstStats::measure(&b.build());
    /// assert_eq!(stats.num_arcs, 1);
    /// assert_eq!(stats.local_arcs, 1); // dest = src + 1
    /// ```
    pub fn measure(fst: &Wfst) -> Self {
        let mut cross = 0;
        let mut eps_in = 0;
        let mut max_deg = 0;
        let mut local = 0;
        let mut finals = 0;
        for s in fst.states() {
            if fst.final_weight(s).is_some() {
                finals += 1;
            }
            let arcs = fst.arcs(s);
            max_deg = max_deg.max(arcs.len());
            for a in arcs {
                if a.is_cross_word() {
                    cross += 1;
                }
                if a.is_input_epsilon() {
                    eps_in += 1;
                }
                let d = i64::from(a.nextstate) - i64::from(s);
                if (-1..=1).contains(&d) {
                    local += 1;
                }
            }
        }
        let num_states = fst.num_states();
        let num_arcs = fst.num_arcs();
        FstStats {
            num_states,
            num_arcs,
            num_final: finals,
            cross_word_arcs: cross,
            epsilon_input_arcs: eps_in,
            max_out_degree: max_deg,
            mean_out_degree: if num_states == 0 {
                0.0
            } else {
                num_arcs as f64 / num_states as f64
            },
            local_arcs: local,
            uncompressed_bytes: SizeModel::UNCOMPRESSED.bytes(fst),
        }
    }

    /// Fraction of arcs eligible for the short (20-bit) AM format.
    pub fn local_arc_fraction(&self) -> f64 {
        if self.num_arcs == 0 {
            0.0
        } else {
            self.local_arcs as f64 / self.num_arcs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arc::{Arc, EPSILON};
    use crate::fst::WfstBuilder;

    fn sample() -> Wfst {
        let mut b = WfstBuilder::with_states(4);
        b.set_start(0);
        b.set_final(3, 0.0);
        b.add_arc(0, Arc::new(1, EPSILON, 0.0, 0)); // self-loop: local
        b.add_arc(0, Arc::new(2, EPSILON, 0.0, 1)); // +1: local
        b.add_arc(1, Arc::new(3, 7, 0.0, 3)); // cross-word, non-local (+2)
        b.add_arc(3, Arc::epsilon(0.1, 2)); // eps input, -1: local
        b.build()
    }

    #[test]
    fn measures_topology() {
        let s = FstStats::measure(&sample());
        assert_eq!(s.num_states, 4);
        assert_eq!(s.num_arcs, 4);
        assert_eq!(s.num_final, 1);
        assert_eq!(s.cross_word_arcs, 1);
        assert_eq!(s.epsilon_input_arcs, 1);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.local_arcs, 3);
        assert!((s.local_arc_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn uncompressed_size_is_16b_arcs_plus_8b_states() {
        let s = FstStats::measure(&sample());
        assert_eq!(s.uncompressed_bytes, 4 * 16 + 4 * 8);
        assert!(SizeModel::UNCOMPRESSED.mib(&sample()) > 0.0);
    }

    #[test]
    fn empty_fst_stats() {
        let s = FstStats::measure(&WfstBuilder::new().build());
        assert_eq!(s.num_arcs, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.local_arc_fraction(), 0.0);
    }
}
