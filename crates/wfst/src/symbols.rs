//! Symbol tables: human-readable names for labels.
//!
//! WFST labels are bare integers everywhere in the hot path; a
//! [`SymbolTable`] maps them to strings at the edges (debugging,
//! examples, the Figure 3 walkthrough). Id 0 is always reserved for
//! epsilon, matching [`crate::EPSILON`].

use std::collections::HashMap;

use crate::arc::{Label, EPSILON};

/// Bidirectional label ↔ string mapping with dense ids.
///
/// ```
/// use unfold_wfst::SymbolTable;
/// let mut syms = SymbolTable::new();
/// let one = syms.add("ONE");
/// assert_eq!(one, 1);
/// assert_eq!(syms.get("ONE"), Some(1));
/// assert_eq!(syms.name(one), Some("ONE"));
/// assert_eq!(syms.name(0), Some("<eps>"));
/// ```
#[derive(Debug, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: HashMap<String, Label>,
}

impl SymbolTable {
    /// Creates a table containing only epsilon (id 0).
    pub fn new() -> Self {
        let mut t = SymbolTable {
            names: Vec::new(),
            ids: HashMap::new(),
        };
        t.names.push("<eps>".to_string());
        t.ids.insert("<eps>".to_string(), EPSILON);
        t
    }

    /// Adds `name` (or returns its existing id).
    ///
    /// # Panics
    /// Panics if `name` is empty.
    pub fn add(&mut self, name: &str) -> Label {
        assert!(!name.is_empty(), "add: empty symbol name");
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as Label;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Id of `name`, if present.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.ids.get(name).copied()
    }

    /// Name of `id`, if present.
    pub fn name(&self, id: Label) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of symbols including epsilon.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only epsilon is present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Renders a label sequence as space-separated names; unknown ids
    /// render as `#<id>`.
    pub fn render(&self, labels: &[Label]) -> String {
        labels
            .iter()
            .map(|&l| self.name(l).map_or_else(|| format!("#{l}"), str::to_string))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> FromIterator<&'a str> for SymbolTable {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        let mut t = SymbolTable::new();
        for s in iter {
            t.add(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = SymbolTable::new();
        assert_eq!(t.add("ONE"), 1);
        assert_eq!(t.add("TWO"), 2);
        assert_eq!(t.add("ONE"), 1, "re-adding must return the same id");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn epsilon_reserved() {
        let t = SymbolTable::new();
        assert_eq!(t.name(EPSILON), Some("<eps>"));
        assert_eq!(t.get("<eps>"), Some(0));
        assert!(t.is_empty());
    }

    #[test]
    fn render_sequences() {
        let t: SymbolTable = ["ONE", "TWO", "THREE"].into_iter().collect();
        assert_eq!(t.render(&[1, 3, 2]), "ONE THREE TWO");
        assert_eq!(t.render(&[9]), "#9");
        assert_eq!(t.render(&[]), "");
    }

    #[test]
    #[should_panic(expected = "empty symbol name")]
    fn empty_name_panics() {
        SymbolTable::new().add("");
    }
}
