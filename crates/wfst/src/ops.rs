//! Structural transducer operations: project, invert, reverse, and
//! weight/label mapping.
//!
//! These are the standard WFST-library operations (rustfst/OpenFst
//! vocabulary) a downstream user expects; internally the reproduction
//! uses them in tests (e.g. reversing a graph to check coaccessibility
//! independently of [`crate::connect()`]).

use crate::arc::{Arc, StateId, EPSILON, NO_STATE};
use crate::fst::{Wfst, WfstBuilder};

/// Which label survives a [`project`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectType {
    /// Keep input labels (acceptor over inputs).
    Input,
    /// Keep output labels (acceptor over outputs).
    Output,
}

/// Turns a transducer into an acceptor by copying one label side onto
/// both sides.
pub fn project(fst: &Wfst, ptype: ProjectType) -> Wfst {
    map_arcs(fst, |a| {
        let l = match ptype {
            ProjectType::Input => a.ilabel,
            ProjectType::Output => a.olabel,
        };
        Arc::new(l, l, a.weight, a.nextstate)
    })
}

/// Swaps input and output labels on every arc.
pub fn invert(fst: &Wfst) -> Wfst {
    map_arcs(fst, |a| Arc::new(a.olabel, a.ilabel, a.weight, a.nextstate))
}

/// Applies `f` to every arc, preserving states and final weights.
pub fn map_arcs(fst: &Wfst, mut f: impl FnMut(&Arc) -> Arc) -> Wfst {
    let mut b = WfstBuilder::with_states(fst.num_states());
    if fst.num_states() == 0 {
        return b.build();
    }
    b.set_start(fst.start());
    for s in fst.states() {
        if let Some(w) = fst.final_weight(s) {
            b.set_final(s, w);
        }
        for a in fst.arcs(s) {
            let na = f(a);
            b.add_arc(s, na);
        }
    }
    b.build()
}

/// Applies `f` to every arc weight (and final weights).
pub fn map_weights(fst: &Wfst, mut f: impl FnMut(f32) -> f32) -> Wfst {
    let mut b = WfstBuilder::with_states(fst.num_states());
    if fst.num_states() == 0 {
        return b.build();
    }
    b.set_start(fst.start());
    for s in fst.states() {
        if let Some(w) = fst.final_weight(s) {
            b.set_final(s, f(w));
        }
        for a in fst.arcs(s) {
            b.add_arc(s, Arc::new(a.ilabel, a.olabel, f(a.weight), a.nextstate));
        }
    }
    b.build()
}

/// Reverses the machine: a path from start to a final state becomes a
/// path from the new start to the old start. A fresh superinitial state
/// carries epsilon arcs to the old final states (with their final
/// weights); the old start becomes the only final state.
pub fn reverse(fst: &Wfst) -> Wfst {
    let n = fst.num_states();
    let mut b = WfstBuilder::with_states(n + 1);
    if n == 0 {
        return WfstBuilder::new().build();
    }
    let superinit = n as StateId;
    b.set_start(superinit);
    b.set_final(fst.start(), 0.0);
    for s in fst.states() {
        if let Some(w) = fst.final_weight(s) {
            b.add_arc(superinit, Arc::new(EPSILON, EPSILON, w, s));
        }
        for a in fst.arcs(s) {
            // Reverse the arc: nextstate -> s.
            b.add_arc(a.nextstate, Arc::new(a.ilabel, a.olabel, a.weight, s));
        }
    }
    b.build()
}

/// Relabels every state id through `map` (useful after external
/// sorting); `map[s] == NO_STATE` drops the state and its arcs.
///
/// # Panics
/// Panics if `map` is shorter than the state count, maps the start
/// state to `NO_STATE`, or produces duplicate ids.
pub fn relabel_states(fst: &Wfst, map: &[StateId]) -> Wfst {
    assert!(
        map.len() >= fst.num_states(),
        "relabel_states: map too short"
    );
    let kept: Vec<StateId> = map[..fst.num_states()]
        .iter()
        .copied()
        .filter(|&m| m != NO_STATE)
        .collect();
    let mut sorted = kept.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        kept.len(),
        "relabel_states: duplicate target ids"
    );
    assert_ne!(
        map[fst.start() as usize],
        NO_STATE,
        "relabel_states: start dropped"
    );

    let num_new = sorted.len();
    let mut b = WfstBuilder::with_states(num_new);
    b.set_start(map[fst.start() as usize]);
    for s in fst.states() {
        let ns = map[s as usize];
        if ns == NO_STATE {
            continue;
        }
        if let Some(w) = fst.final_weight(s) {
            b.set_final(ns, w);
        }
        for a in fst.arcs(s) {
            let nd = map[a.nextstate as usize];
            if nd != NO_STATE {
                b.add_arc(ns, Arc::new(a.ilabel, a.olabel, a.weight, nd));
            }
        }
    }
    b.build()
}

/// Renders the machine in Graphviz DOT syntax, optionally labelling
/// arcs through symbol tables (`isyms` for inputs, `osyms` for
/// outputs). Final states are doubled circles; the start state gets a
/// bold outline. Intended for debugging small machines — the Figure 3
/// graphs render readably; a full task graph will not.
pub fn to_dot(
    fst: &Wfst,
    isyms: Option<&crate::symbols::SymbolTable>,
    osyms: Option<&crate::symbols::SymbolTable>,
) -> String {
    use std::fmt::Write as _;
    let label = |syms: Option<&crate::symbols::SymbolTable>, l: u32| -> String {
        match syms.and_then(|s| s.name(l)) {
            Some(name) => name.to_string(),
            None if l == EPSILON => "<eps>".to_string(),
            None => l.to_string(),
        }
    };
    let mut out = String::from(
        "digraph wfst {
  rankdir = LR;
",
    );
    for s in fst.states() {
        let shape = if fst.final_weight(s).is_some() {
            "doublecircle"
        } else {
            "circle"
        };
        let style = if s == fst.start() { ", style=bold" } else { "" };
        let fw = fst
            .final_weight(s)
            .map_or(String::new(), |w| format!("/{w:.2}"));
        let _ = writeln!(out, "  {s} [shape={shape}{style}, label=\"{s}{fw}\"];");
        for a in fst.arcs(s) {
            let _ = writeln!(
                out,
                "  {s} -> {} [label=\"{}:{}/{:.2}\"];",
                a.nextstate,
                label(isyms, a.ilabel),
                label(osyms, a.olabel),
                a.weight
            );
        }
    }
    out.push_str(
        "}
",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::shortest_path;

    fn sample() -> Wfst {
        let mut b = WfstBuilder::with_states(3);
        b.set_start(0);
        b.set_final(2, 0.5);
        b.add_arc(0, Arc::new(1, 10, 1.0, 1));
        b.add_arc(1, Arc::new(2, 20, 2.0, 2));
        b.add_arc(0, Arc::new(3, 30, 9.0, 2));
        b.build()
    }

    #[test]
    fn project_input_copies_ilabels() {
        let p = project(&sample(), ProjectType::Input);
        for s in p.states() {
            for a in p.arcs(s) {
                assert_eq!(a.ilabel, a.olabel);
            }
        }
        assert_eq!(p.arcs(0)[0].olabel, 1);
    }

    #[test]
    fn invert_twice_is_identity() {
        let f = sample();
        let ff = invert(&invert(&f));
        for s in f.states() {
            assert_eq!(f.arcs(s), ff.arcs(s));
        }
    }

    #[test]
    fn invert_swaps_label_sides() {
        let inv = invert(&sample());
        assert_eq!(inv.arcs(0)[0].ilabel, 10);
        assert_eq!(inv.arcs(0)[0].olabel, 1);
    }

    #[test]
    fn map_weights_scales_costs() {
        let doubled = map_weights(&sample(), |w| w * 2.0);
        assert_eq!(doubled.arcs(0)[0].weight, 2.0);
        assert_eq!(doubled.final_weight(2), Some(1.0));
    }

    #[test]
    fn reverse_preserves_shortest_distance() {
        let f = sample();
        let fwd = shortest_path(&f).unwrap();
        let rev = shortest_path(&reverse(&f)).unwrap();
        assert!((fwd.cost - rev.cost).abs() < 1e-6);
        // The reversed path reads labels back-to-front.
        let mut back = rev.olabels.clone();
        back.reverse();
        assert_eq!(fwd.olabels, back);
    }

    #[test]
    fn relabel_identity_roundtrips() {
        let f = sample();
        let id: Vec<StateId> = (0..f.num_states() as StateId).collect();
        let g = relabel_states(&f, &id);
        assert_eq!(g.num_arcs(), f.num_arcs());
        assert_eq!(g.start(), f.start());
    }

    #[test]
    fn relabel_can_drop_states() {
        let f = sample();
        // Drop state 1: its arcs vanish.
        let map = vec![0, NO_STATE, 1];
        let g = relabel_states(&f, &map);
        assert_eq!(g.num_states(), 2);
        assert_eq!(g.num_arcs(), 1); // only 0 -> 2 survives
        assert_eq!(g.arcs(0)[0].nextstate, 1);
    }

    #[test]
    #[should_panic(expected = "start dropped")]
    fn relabel_rejects_dropping_start() {
        let f = sample();
        let map = vec![NO_STATE, 0, 1];
        let _ = relabel_states(&f, &map);
    }

    #[test]
    fn dot_output_is_wellformed() {
        let mut syms = crate::symbols::SymbolTable::new();
        let one = syms.add("ONE");
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.5);
        b.add_arc(0, Arc::new(3, one, 1.0, 1));
        let dot = to_dot(&b.build(), None, Some(&syms));
        assert!(dot.starts_with("digraph wfst {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("3:ONE/1.00"), "{dot}");
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("style=bold"));
    }

    #[test]
    fn empty_machine_ops_are_safe() {
        let e = WfstBuilder::new().build();
        assert_eq!(project(&e, ProjectType::Output).num_states(), 0);
        assert_eq!(invert(&e).num_states(), 0);
        assert_eq!(reverse(&e).num_states(), 0);
    }
}
