//! Single-source shortest distance and shortest path.
//!
//! The tropical-semiring shortest path through a WFST is exactly the
//! Viterbi best hypothesis when acoustic scores are folded into arc
//! weights — which makes this module an *independent oracle* for the
//! beam decoders: on small graphs, an untimed exact search must agree
//! with the pruned decoders' output (the integration tests rely on
//! this).
//!
//! The algorithm is a label-correcting relaxation (Bellman-Ford-style
//! with a deque), correct for graphs with negative arcs as long as no
//! negative cycle exists — back-off weights can be negative, so
//! Dijkstra would be unsound here.

use std::collections::VecDeque;

use crate::arc::{Label, StateId, EPSILON};
use crate::fst::Wfst;

/// A shortest path through a WFST.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPath {
    /// Total path cost including the final weight.
    pub cost: f32,
    /// States visited, starting at the start state.
    pub states: Vec<StateId>,
    /// Output labels emitted along the path (epsilons skipped).
    pub olabels: Vec<Label>,
    /// Input labels consumed along the path (epsilons skipped).
    pub ilabels: Vec<Label>,
}

/// Computes the cost of the best path from the start state to any final
/// state, or `None` if no final state is reachable.
///
/// # Panics
/// Panics if relaxation fails to converge within `states * arcs + 1`
/// rounds (a negative cycle).
pub fn shortest_distance(fst: &Wfst) -> Option<f32> {
    shortest_path(fst).map(|p| p.cost)
}

/// Computes the best path from the start state to any final state.
///
/// Returns `None` for empty machines or when no final state is
/// reachable.
///
/// # Panics
/// Panics on negative-cost cycles (relaxation budget exceeded).
pub fn shortest_path(fst: &Wfst) -> Option<ShortestPath> {
    let n = fst.num_states();
    if n == 0 {
        return None;
    }
    let mut dist = vec![f32::INFINITY; n];
    let mut pred: Vec<Option<(StateId, usize)>> = vec![None; n];
    let start = fst.start();
    dist[start as usize] = 0.0;
    let mut queue: VecDeque<StateId> = VecDeque::new();
    let mut in_queue = vec![false; n];
    queue.push_back(start);
    in_queue[start as usize] = true;

    let budget = (n as u64 + 1) * (fst.num_arcs() as u64 + 1) + 1;
    let mut relaxations = 0u64;
    while let Some(s) = queue.pop_front() {
        in_queue[s as usize] = false;
        let ds = dist[s as usize];
        for (i, arc) in fst.arcs(s).iter().enumerate() {
            relaxations += 1;
            assert!(
                relaxations <= budget,
                "shortest_path: negative cycle suspected"
            );
            let nd = ds + arc.weight;
            if nd < dist[arc.nextstate as usize] {
                dist[arc.nextstate as usize] = nd;
                pred[arc.nextstate as usize] = Some((s, i));
                if !in_queue[arc.nextstate as usize] {
                    queue.push_back(arc.nextstate);
                    in_queue[arc.nextstate as usize] = true;
                }
            }
        }
    }

    // Best final state.
    let mut best: Option<(StateId, f32)> = None;
    for s in fst.states() {
        if let Some(fw) = fst.final_weight(s) {
            let total = dist[s as usize] + fw;
            if total.is_finite() && best.is_none_or(|(_, c)| total < c) {
                best = Some((s, total));
            }
        }
    }
    let (final_state, cost) = best?;

    // Backtrace.
    let mut states = vec![final_state];
    let mut arcs_taken: Vec<(StateId, usize)> = Vec::new();
    let mut cur = final_state;
    while let Some((prev, arc_idx)) = pred[cur as usize] {
        arcs_taken.push((prev, arc_idx));
        states.push(prev);
        cur = prev;
        if cur == start && dist[start as usize] == 0.0 && pred[start as usize].is_none() {
            break;
        }
    }
    states.reverse();
    arcs_taken.reverse();
    let mut olabels = Vec::new();
    let mut ilabels = Vec::new();
    for &(s, i) in &arcs_taken {
        let arc = &fst.arcs(s)[i];
        if arc.olabel != EPSILON {
            olabels.push(arc.olabel);
        }
        if arc.ilabel != EPSILON {
            ilabels.push(arc.ilabel);
        }
    }
    Some(ShortestPath {
        cost,
        states,
        olabels,
        ilabels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arc::Arc;
    use crate::fst::WfstBuilder;

    #[test]
    fn picks_the_cheaper_branch() {
        let mut b = WfstBuilder::with_states(4);
        b.set_start(0);
        b.set_final(3, 0.0);
        b.add_arc(0, Arc::new(1, 10, 5.0, 1));
        b.add_arc(0, Arc::new(2, 20, 1.0, 2));
        b.add_arc(1, Arc::new(3, 0, 0.0, 3));
        b.add_arc(2, Arc::new(4, 0, 1.0, 3));
        let p = shortest_path(&b.build()).unwrap();
        assert_eq!(p.cost, 2.0);
        assert_eq!(p.olabels, vec![20]);
        assert_eq!(p.states, vec![0, 2, 3]);
    }

    #[test]
    fn includes_final_weight() {
        let mut b = WfstBuilder::with_states(3);
        b.set_start(0);
        b.set_final(1, 10.0);
        b.set_final(2, 0.5);
        b.add_arc(0, Arc::new(1, 0, 1.0, 1));
        b.add_arc(0, Arc::new(2, 0, 2.0, 2));
        // 1.0 + 10.0 = 11 via state 1; 2.0 + 0.5 = 2.5 via state 2.
        let p = shortest_path(&b.build()).unwrap();
        assert_eq!(p.cost, 2.5);
        assert_eq!(*p.states.last().unwrap(), 2);
    }

    #[test]
    fn handles_negative_arcs() {
        // Back-off weights can be negative; Dijkstra would get this wrong.
        let mut b = WfstBuilder::with_states(4);
        b.set_start(0);
        b.set_final(3, 0.0);
        b.add_arc(0, Arc::new(1, 0, 1.0, 1)); // looks cheap first
        b.add_arc(1, Arc::new(2, 0, 3.0, 3));
        b.add_arc(0, Arc::new(3, 0, 5.0, 2)); // looks expensive first
        b.add_arc(2, Arc::new(4, 0, -3.0, 3)); // but has a negative arc
        let p = shortest_path(&b.build()).unwrap();
        assert_eq!(p.cost, 2.0);
        assert_eq!(p.states, vec![0, 2, 3]);
    }

    #[test]
    fn unreachable_final_returns_none() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        // no arcs
        let fst = b.build();
        assert!(shortest_path(&fst).is_none());
        assert!(shortest_distance(&fst).is_none());
    }

    #[test]
    fn empty_machine_returns_none() {
        assert!(shortest_path(&WfstBuilder::new().build()).is_none());
    }

    #[test]
    #[should_panic(expected = "negative cycle")]
    fn negative_cycle_panics() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::new(1, 0, 1.0, 1));
        b.add_arc(1, Arc::new(2, 0, -2.0, 0));
        let _ = shortest_path(&b.build());
    }

    #[test]
    fn start_state_can_be_final() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(0, 0.25);
        b.add_arc(0, Arc::new(1, 0, 9.0, 1));
        let p = shortest_path(&b.build()).unwrap();
        assert_eq!(p.cost, 0.25);
        assert!(p.olabels.is_empty());
    }
}
