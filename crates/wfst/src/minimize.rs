//! Weight-exact minimization of deterministic machines, and weighted
//! acceptor intersection.
//!
//! Minimization merges states with identical futures — the suffix
//! sharing that, together with determinization, keeps real composed
//! recognition networks at `LM arcs × pronunciation states` instead of
//! a product blow-up. The algorithm is Moore-style partition
//! refinement: start from (final weight) classes and split until every
//! class is transition-consistent.

use std::collections::HashMap;

use crate::arc::{Arc, StateId, EPSILON};
use crate::determinize::is_deterministic;
use crate::fst::{Wfst, WfstBuilder};

/// Partition-refinement signature: source class plus the sorted
/// `(label, weight bits, destination class)` transition set.
type StateSignature = (u32, Vec<(u32, u32, u32)>);

/// Minimizes a deterministic, epsilon-free machine. Weights must match
/// *exactly* for states to merge (no weight pushing is performed, so
/// this is canonical only up to weight distribution — sufficient for
/// suffix sharing on the graphs this repository builds).
///
/// # Panics
/// Panics if the machine is nondeterministic or has epsilon-input arcs.
pub fn minimize(fst: &Wfst) -> Wfst {
    assert!(
        is_deterministic(fst),
        "minimize: machine must be deterministic"
    );
    let n = fst.num_states();
    if n == 0 {
        return WfstBuilder::new().build();
    }

    // Initial partition: by final weight (bit pattern; INFINITY = not final).
    let mut class: Vec<u32> = (0..n)
        .map(|s| {
            fst.final_weight(s as StateId)
                .unwrap_or(f32::INFINITY)
                .to_bits()
        })
        .collect();
    // Renumber classes densely.
    let renumber = |class: &mut Vec<u32>| {
        let mut map = HashMap::new();
        for c in class.iter_mut() {
            let next = map.len() as u32;
            *c = *map.entry(*c).or_insert(next);
        }
        map.len()
    };
    let mut num_classes = renumber(&mut class);

    loop {
        let mut sig_map: HashMap<StateSignature, u32> = HashMap::new();
        let mut new_class = vec![0u32; n];
        for s in 0..n {
            let mut trans: Vec<(u32, u32, u32)> = fst
                .arcs(s as StateId)
                .iter()
                .map(|a| (a.ilabel, a.weight.to_bits(), class[a.nextstate as usize]))
                .collect();
            trans.sort_unstable();
            let key = (class[s], trans);
            let next = sig_map.len() as u32;
            new_class[s] = *sig_map.entry(key).or_insert(next);
        }
        let new_count = sig_map.len();
        class = new_class;
        if new_count == num_classes {
            break;
        }
        num_classes = new_count;
    }

    // Emit one state per class; representative = first member.
    let mut b = WfstBuilder::with_states(num_classes);
    b.set_start(class[fst.start() as usize]);
    let mut emitted = vec![false; num_classes];
    for s in 0..n {
        let c = class[s] as usize;
        if emitted[c] {
            continue;
        }
        emitted[c] = true;
        if let Some(w) = fst.final_weight(s as StateId) {
            b.set_final(c as StateId, w);
        }
        for a in fst.arcs(s as StateId) {
            b.add_arc(
                c as StateId,
                Arc::new(a.ilabel, a.olabel, a.weight, class[a.nextstate as usize]),
            );
        }
    }
    b.build()
}

/// Intersects two epsilon-free weighted acceptors: the result accepts
/// exactly the strings both accept, with added costs.
///
/// # Panics
/// Panics if either machine has epsilon-input or transducer arcs, and
/// if either side's arcs are not ilabel-sorted.
pub fn intersect(a: &Wfst, b: &Wfst) -> Wfst {
    for (name, f) in [("left", a), ("right", b)] {
        assert!(
            f.is_ilabel_sorted(),
            "intersect: {name} machine must be sorted"
        );
        for s in f.states() {
            for arc in f.arcs(s) {
                assert_ne!(arc.ilabel, EPSILON, "intersect: {name} has epsilon arcs");
                assert_eq!(arc.ilabel, arc.olabel, "intersect: {name} is a transducer");
            }
        }
    }
    if a.num_states() == 0 || b.num_states() == 0 {
        return WfstBuilder::new().build();
    }
    let mut builder = WfstBuilder::new();
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let start_pair = (a.start(), b.start());
    let start = builder.add_state();
    builder.set_start(start);
    index.insert(start_pair, start);
    let mut queue = vec![start_pair];
    let mut pending: Vec<(StateId, Arc)> = Vec::new();
    while let Some((sa, sb)) = queue.pop() {
        let id = index[&(sa, sb)];
        if let (Some(wa), Some(wb)) = (a.final_weight(sa), b.final_weight(sb)) {
            builder.set_final(id, wa + wb);
        }
        // Sorted-merge the two arc lists on matching labels.
        let (arcs_a, arcs_b) = (a.arcs(sa), b.arcs(sb));
        let (mut i, mut j) = (0usize, 0usize);
        while i < arcs_a.len() && j < arcs_b.len() {
            match arcs_a[i].ilabel.cmp(&arcs_b[j].ilabel) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let label = arcs_a[i].ilabel;
                    // All pairs sharing this label.
                    let i0 = i;
                    let j0 = j;
                    while i < arcs_a.len() && arcs_a[i].ilabel == label {
                        i += 1;
                    }
                    while j < arcs_b.len() && arcs_b[j].ilabel == label {
                        j += 1;
                    }
                    for x in &arcs_a[i0..i] {
                        for y in &arcs_b[j0..j] {
                            let pair = (x.nextstate, y.nextstate);
                            let dest = *index.entry(pair).or_insert_with(|| {
                                queue.push(pair);
                                builder.add_state()
                            });
                            pending.push((id, Arc::new(label, label, x.weight + y.weight, dest)));
                        }
                    }
                }
            }
        }
    }
    for (src, arc) in pending {
        builder.add_arc(src, arc);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::{accept_cost, determinize, DeterminizeOptions};
    use proptest::prelude::*;

    fn union_of_strings(strings: &[(Vec<u32>, f32)]) -> Wfst {
        let mut b = WfstBuilder::new();
        let start = b.add_state();
        b.set_start(start);
        for (string, weight) in strings {
            let mut prev = start;
            for (i, &l) in string.iter().enumerate() {
                let s = b.add_state();
                b.add_arc(prev, Arc::new(l, l, if i == 0 { *weight } else { 0.0 }, s));
                prev = s;
            }
            b.set_final(prev, 0.0);
        }
        b.build()
    }

    #[test]
    fn minimize_shares_suffixes() {
        // Strings 1-3-4 and 2-3-4 share the suffix 3-4, which
        // determinization alone cannot merge (it shares prefixes).
        let f = union_of_strings(&[(vec![1, 3, 4], 0.0), (vec![2, 3, 4], 0.0)]);
        let d = determinize(&f, DeterminizeOptions::default());
        let m = minimize(&d);
        assert!(
            m.num_states() < d.num_states(),
            "{} !< {}",
            m.num_states(),
            d.num_states()
        );
        for s in [[1u32, 3, 4], [2, 3, 4]] {
            assert_eq!(accept_cost(&m, &s), Some(0.0));
        }
        assert_eq!(accept_cost(&m, &[1, 3]), None);
    }

    #[test]
    fn minimize_keeps_distinct_weights_apart() {
        // Same suffix labels but different weights: must NOT merge.
        let mut b = WfstBuilder::with_states(5);
        b.set_start(0);
        b.set_final(3, 0.0);
        b.set_final(4, 0.0);
        b.add_arc(0, Arc::new(1, 1, 0.0, 1));
        b.add_arc(0, Arc::new(2, 2, 0.0, 2));
        b.add_arc(1, Arc::new(9, 9, 1.0, 3));
        b.add_arc(2, Arc::new(9, 9, 2.0, 4));
        let f = b.build();
        let m = minimize(&f);
        // 3 and 4 merge (identical futures), 1 and 2 do not (weights differ).
        assert_eq!(m.num_states(), 4);
        assert_eq!(accept_cost(&m, &[1, 9]), Some(1.0));
        assert_eq!(accept_cost(&m, &[2, 9]), Some(2.0));
    }

    #[test]
    fn minimize_is_idempotent() {
        let f = union_of_strings(&[(vec![1, 2], 0.5), (vec![3, 2], 0.5), (vec![1, 4], 0.1)]);
        let m1 = minimize(&determinize(&f, DeterminizeOptions::default()));
        let m2 = minimize(&m1);
        assert_eq!(m1.num_states(), m2.num_states());
        assert_eq!(m1.num_arcs(), m2.num_arcs());
    }

    #[test]
    #[should_panic(expected = "must be deterministic")]
    fn minimize_rejects_nondeterministic() {
        let f = union_of_strings(&[(vec![1, 2], 0.0), (vec![1, 3], 0.0)]);
        let _ = minimize(&f);
    }

    #[test]
    fn intersect_keeps_common_strings_with_added_costs() {
        let mut a = union_of_strings(&[(vec![1, 2], 0.5), (vec![3], 1.0)]);
        let mut b = union_of_strings(&[(vec![1, 2], 0.25), (vec![4], 0.0)]);
        a.sort_arcs_by_ilabel();
        b.sort_arcs_by_ilabel();
        let i = intersect(&a, &b);
        assert_eq!(accept_cost(&i, &[1, 2]), Some(0.75));
        assert_eq!(accept_cost(&i, &[3]), None);
        assert_eq!(accept_cost(&i, &[4]), None);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let mut a = union_of_strings(&[(vec![1], 0.0)]);
        a.sort_arcs_by_ilabel();
        let e = WfstBuilder::new().build();
        assert_eq!(intersect(&a, &e).num_states(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// det → min preserves the weighted language.
        #[test]
        fn minimize_preserves_costs(
            strings in proptest::collection::vec(
                (proptest::collection::vec(1u32..5, 1..5), 0.0f32..3.0),
                1..6
            )
        ) {
            let f = union_of_strings(&strings);
            let d = determinize(&f, DeterminizeOptions::default());
            let m = minimize(&d);
            prop_assert!(m.num_states() <= d.num_states());
            for (s, _) in &strings {
                let want = accept_cost(&f, s).unwrap();
                let got = accept_cost(&m, s).unwrap();
                prop_assert!((want - got).abs() < 1e-2);
            }
        }

        /// Intersection cost = sum of the two machines' costs, for
        /// strings both accept.
        #[test]
        fn intersect_adds_costs(
            shared in proptest::collection::vec(1u32..5, 1..5),
            wa in 0.0f32..3.0,
            wb in 0.0f32..3.0,
        ) {
            let mut a = union_of_strings(&[(shared.clone(), wa)]);
            let mut b = union_of_strings(&[(shared.clone(), wb)]);
            a.sort_arcs_by_ilabel();
            b.sort_arcs_by_ilabel();
            let i = intersect(&a, &b);
            let got = accept_cost(&i, &shared).unwrap();
            prop_assert!((got - (wa + wb)).abs() < 1e-3);
        }
    }
}
