//! Arc and label primitives.
//!
//! A WFST arc maps an input label to an output label with a weight and a
//! destination state. In the paper's uncompressed memory layout each arc
//! is a 128-bit record: four 32-bit fields (§3.4). [`Arc`] mirrors that
//! layout exactly so that byte-size accounting on the uncompressed
//! datasets matches the paper's Table 1.

/// State identifier inside a single [`crate::Wfst`].
pub type StateId = u32;

/// Input/output label. `0` ([`EPSILON`]) means "no label".
pub type Label = u32;

/// The epsilon label: an arc that consumes (or emits) nothing.
///
/// In the acoustic model, an epsilon *output* label means "no word ends
/// on this arc"; an epsilon *input* label means the arc is traversed
/// without consuming an acoustic score. In the language model, back-off
/// arcs carry epsilon on both sides.
pub const EPSILON: Label = 0;

/// Sentinel for "no state" (used for absent back-off destinations).
pub const NO_STATE: StateId = u32::MAX;

/// A single transducer arc: 16 bytes, matching the 128-bit arc record of
/// the paper (§3.4: "Each arc consists of a 128-bit structure including
/// destination state index, input label, output word ID and weight").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Input label: a PDF/senone id in the AM, a word id in the LM.
    pub ilabel: Label,
    /// Output label: a word id on cross-word transitions, else epsilon.
    pub olabel: Label,
    /// Arc weight as a negative log-probability (tropical semiring).
    pub weight: f32,
    /// Destination state.
    pub nextstate: StateId,
}

impl Arc {
    /// Creates a new arc.
    ///
    /// ```
    /// use unfold_wfst::Arc;
    /// let a = Arc::new(1, 2, 0.5, 3);
    /// assert_eq!(a.nextstate, 3);
    /// ```
    #[inline]
    pub fn new(ilabel: Label, olabel: Label, weight: f32, nextstate: StateId) -> Self {
        Arc {
            ilabel,
            olabel,
            weight,
            nextstate,
        }
    }

    /// An epsilon:epsilon arc (used for back-off transitions in the LM).
    #[inline]
    pub fn epsilon(weight: f32, nextstate: StateId) -> Self {
        Arc::new(EPSILON, EPSILON, weight, nextstate)
    }

    /// Whether this arc consumes no input label.
    #[inline]
    pub fn is_input_epsilon(&self) -> bool {
        self.ilabel == EPSILON
    }

    /// Whether this arc emits a word (a "cross-word transition" in the
    /// paper's terminology).
    #[inline]
    pub fn is_cross_word(&self) -> bool {
        self.olabel != EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_is_128_bits() {
        // The paper's uncompressed layout stores four 32-bit fields.
        assert_eq!(std::mem::size_of::<Arc>(), 16);
    }

    #[test]
    fn cross_word_detection() {
        assert!(Arc::new(1, 5, 0.0, 2).is_cross_word());
        assert!(!Arc::new(1, EPSILON, 0.0, 2).is_cross_word());
    }

    #[test]
    fn epsilon_constructor() {
        let a = Arc::epsilon(1.5, 9);
        assert!(a.is_input_epsilon());
        assert!(!a.is_cross_word());
        assert_eq!(a.nextstate, 9);
        assert_eq!(a.weight, 1.5);
    }
}
