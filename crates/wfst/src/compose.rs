//! Offline AM ∘ LM composition with back-off (failure) semantics.
//!
//! This is the operation the paper's *baseline* systems perform at
//! training time to produce the huge unified WFST (Table 1: e.g. 33 MB
//! AM + 66 MB LM → 1090 MB composed). UNFOLD's whole point is to avoid
//! running this offline and instead expand pairs on demand; we implement
//! the offline variant because
//!
//! 1. the fully-composed decoder/accelerator is the paper's comparator,
//! 2. equivalence between offline and on-the-fly search is the key
//!    correctness invariant of the reproduction (checked in the
//!    integration tests).
//!
//! The LM here is a deterministic back-off n-gram automaton: a missing
//! word arc at a state means "follow the epsilon back-off arc, pay its
//! weight, retry". That is *failure* semantics — the back-off path may
//! only be taken when no direct arc exists — and the composition below
//! resolves it eagerly: for every (LM state, word) pair it walks the
//! back-off chain until a word arc is found, multiplying the weights,
//! exactly like the decoder does at run time.

use std::collections::HashMap;

use crate::arc::{Arc, Label, StateId, EPSILON};
use crate::fst::{Wfst, WfstBuilder};

/// Options controlling [`compose_am_lm`].
#[derive(Debug, Clone, Copy)]
pub struct ComposeOptions {
    /// Treat LM epsilon arcs as failure (back-off) arcs. This is the
    /// correct semantics for n-gram LMs and the default; turning it off
    /// composes epsilon arcs as ordinary free transitions (which
    /// over-counts paths, but is occasionally useful for debugging).
    pub backoff_as_failure: bool,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions {
            backoff_as_failure: true,
        }
    }
}

/// Resolves a word transition in a back-off LM: walks back-off arcs from
/// `state` until an arc with input `word` is found, accumulating weight.
///
/// Returns `(destination, total_weight, backoff_hops)`, or `None` if the
/// word cannot be found anywhere along the chain (which cannot happen
/// when the LM keeps all unigrams at its root, as the paper's §3.3
/// guarantees: "All the unigram likelihoods are maintained").
pub fn resolve_lm_word(lm: &Wfst, state: StateId, word: Label) -> Option<(StateId, f32, u32)> {
    let mut s = state;
    let mut acc = 0.0f32;
    let mut hops = 0u32;
    loop {
        let (hit, _) = lm.find_arc(s, word);
        if let Some(arc) = hit {
            return Some((arc.nextstate, acc + arc.weight, hops));
        }
        let back = lm.backoff_arc(s)?;
        acc += back.weight;
        s = back.nextstate;
        hops += 1;
        // A back-off chain longer than the n-gram order would mean a
        // cycle of epsilon arcs; 8 is far beyond any real model.
        assert!(hops <= 8, "back-off chain too long: LM is malformed");
    }
}

/// Composes an acoustic-model transducer with a back-off language model.
///
/// The AM's *output* labels (word ids) are matched against the LM's
/// *input* labels. AM arcs with epsilon output move only through the AM;
/// cross-word AM arcs trigger an LM transition resolved through the
/// back-off chain. The result is the paper's "fully-composed WFST": its
/// states are reachable (AM state, LM state) pairs.
///
/// The returned machine keeps the AM arc's input label (so acoustic
/// scores still drive the search) and the word id as its output label;
/// the arc weight is the AM weight plus any LM weight.
///
/// # Panics
/// Panics if the LM cannot resolve a word that the AM emits (i.e. the LM
/// root is missing a unigram), or if the LM arcs are not ilabel-sorted.
pub fn compose_am_lm(am: &Wfst, lm: &Wfst, opts: ComposeOptions) -> Wfst {
    assert!(lm.is_ilabel_sorted(), "compose: LM must be ilabel-sorted");
    let mut b = WfstBuilder::new();
    // Interned (am, lm) pair -> composed state id.
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: Vec<(StateId, StateId)> = Vec::new();

    let start_pair = (am.start(), lm.start());
    let start = b.add_state();
    index.insert(start_pair, start);
    b.set_start(start);
    queue.push(start_pair);

    // The builder requires destinations to exist before arcs are added,
    // so arcs are buffered per composed state and added after discovery.
    let mut pending: Vec<(StateId, Arc)> = Vec::new();

    while let Some((am_s, lm_s)) = queue.pop() {
        let src = index[&(am_s, lm_s)];
        if let (Some(wa), Some(_)) = (am.final_weight(am_s), Some(())) {
            // A composed state is final when its AM state is; the LM
            // contributes its own final weight if present (our synthetic
            // LMs make every state final with weight 0).
            let wl = lm.final_weight(lm_s).unwrap_or(f32::INFINITY);
            if wl.is_finite() {
                b.set_final(src, wa + wl);
            }
        }
        for arc in am.arcs(am_s) {
            let (lm_next, extra_w, word_out) = if arc.is_cross_word() {
                if opts.backoff_as_failure {
                    let (dest, w, _) = resolve_lm_word(lm, lm_s, arc.olabel)
                        .expect("compose: LM cannot emit word; missing unigram");
                    (dest, w, arc.olabel)
                } else {
                    match lm.find_arc(lm_s, arc.olabel).0 {
                        Some(lm_arc) => (lm_arc.nextstate, lm_arc.weight, arc.olabel),
                        None => continue,
                    }
                }
            } else {
                (lm_s, 0.0, EPSILON)
            };
            let pair = (arc.nextstate, lm_next);
            let dest = *index.entry(pair).or_insert_with(|| {
                queue.push(pair);
                b.add_state()
            });
            pending.push((
                src,
                Arc::new(arc.ilabel, word_out, arc.weight + extra_w, dest),
            ));
        }
    }

    for (src, arc) in pending {
        b.add_arc(src, arc);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy AM over two words: word 1 = phonemes [1,2], word 2 = [3].
    /// Cross-word arcs return to the root.
    fn toy_am() -> Wfst {
        let mut b = WfstBuilder::with_states(3);
        b.set_start(0);
        b.set_final(0, 0.0);
        b.add_arc(0, Arc::new(1, EPSILON, 0.1, 1)); // ph1
        b.add_arc(1, Arc::new(2, 1, 0.1, 0)); // ph2, emits word 1
        b.add_arc(0, Arc::new(3, 2, 0.2, 0)); // ph3, emits word 2 (one-phone word)
        b.build()
    }

    /// A toy bigram LM: root 0, history states 1 and 2 (for words 1, 2).
    /// State 1 has a bigram for word 2 only; word 1 after word 1 must
    /// back off to the root.
    fn toy_lm() -> Wfst {
        let mut b = WfstBuilder::with_states(3);
        b.set_start(0);
        for s in 0..3 {
            b.set_final(s, 0.0);
        }
        b.add_arc(0, Arc::new(1, 1, 1.0, 1)); // unigram w1
        b.add_arc(0, Arc::new(2, 2, 2.0, 2)); // unigram w2
        b.add_arc(1, Arc::new(2, 2, 0.5, 2)); // bigram w1->w2
        b.add_arc(1, Arc::epsilon(0.7, 0)); // back-off from h=w1
        b.add_arc(2, Arc::epsilon(0.9, 0)); // back-off from h=w2
        let mut fst = b.build();
        fst.sort_arcs_by_ilabel();
        fst
    }

    #[test]
    fn resolve_direct_hit() {
        let lm = toy_lm();
        let (dest, w, hops) = resolve_lm_word(&lm, 1, 2).unwrap();
        assert_eq!(dest, 2);
        assert_eq!(hops, 0);
        assert!((w - 0.5).abs() < 1e-6);
    }

    #[test]
    fn resolve_through_backoff() {
        let lm = toy_lm();
        // word 1 from history w1: no bigram, back off (0.7) then unigram (1.0).
        let (dest, w, hops) = resolve_lm_word(&lm, 1, 1).unwrap();
        assert_eq!(dest, 1);
        assert_eq!(hops, 1);
        assert!((w - 1.7).abs() < 1e-6);
    }

    #[test]
    fn resolve_missing_word_returns_none() {
        let lm = toy_lm();
        assert!(resolve_lm_word(&lm, 1, 99).is_none());
    }

    #[test]
    fn composed_has_pair_states() {
        let am = toy_am();
        let lm = toy_lm();
        let c = compose_am_lm(&am, &lm, ComposeOptions::default());
        // Reachable pairs: (0,0) (1,0) (0,1) (1,1) (0,2) (1,2) = 6.
        assert_eq!(c.num_states(), 6);
        assert!(
            c.num_arcs() >= am.num_arcs(),
            "composition must not lose arcs"
        );
        // Start state's arcs mirror AM root arcs.
        assert_eq!(c.arcs(c.start()).len(), am.arcs(am.start()).len());
    }

    #[test]
    fn composed_weights_include_lm_scores() {
        let am = toy_am();
        let lm = toy_lm();
        let c = compose_am_lm(&am, &lm, ComposeOptions::default());
        // Find the cross-word arc for word 2 out of the start pair:
        // weight must be AM 0.2 + unigram 2.0.
        let arc = c
            .arcs(c.start())
            .iter()
            .find(|a| a.olabel == 2)
            .expect("word-2 arc out of start");
        assert!((arc.weight - 2.2).abs() < 1e-6);
    }

    #[test]
    fn composed_is_larger_than_parts() {
        // The multiplicative state blow-up that motivates the paper:
        // composed states exceed max(|AM|, |LM|) once histories diverge.
        let am = toy_am();
        let lm = toy_lm();
        let c = compose_am_lm(&am, &lm, ComposeOptions::default());
        assert!(c.num_states() > am.num_states().max(lm.num_states()));
    }

    #[test]
    fn epsilon_output_keeps_lm_state() {
        let am = toy_am();
        let lm = toy_lm();
        let c = compose_am_lm(&am, &lm, ComposeOptions::default());
        // Arc with epsilon output out of the start must stay at LM state 0,
        // i.e. its destination equals pair (1, 0) which was discovered first.
        let eps_arc = c
            .arcs(c.start())
            .iter()
            .find(|a| !a.is_cross_word())
            .unwrap();
        // From that state the cross-word arc for word 1 must cost
        // AM 0.1 + unigram 1.0 (LM still at root).
        let next = eps_arc.nextstate;
        let w1 = c.arcs(next).iter().find(|a| a.olabel == 1).unwrap();
        assert!((w1.weight - 1.1).abs() < 1e-6);
    }
}
