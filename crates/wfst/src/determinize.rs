//! Weighted determinization (tropical semiring) and the string-cost
//! oracle used to verify it.
//!
//! Determinization is the operation that keeps real offline-composed
//! recognition networks tractable: equivalent-future states collapse so
//! the lexicon is shared across language-model contexts (see
//! `unfold::composed` for where this repository relies on that effect
//! structurally). The implementation here is the classical weighted
//! subset construction: a determinized state is a set of
//! `(state, residual weight)` pairs, normalized so the smallest
//! residual is zero (the surplus is pushed onto the incoming arc).
//!
//! Weighted determinization does not terminate for every cyclic
//! machine (the twins property); [`DeterminizeOptions::max_states`]
//! bounds the construction and the function panics with a clear
//! message rather than looping.

use std::collections::HashMap;

use crate::arc::{Arc, Label, StateId, EPSILON};
use crate::fst::{Wfst, WfstBuilder};

/// Cost of accepting `ilabels` (an exact DP over the machine, epsilon
/// arcs included) — the oracle the determinization tests compare
/// against. Returns `None` if the string is not accepted.
///
/// # Panics
/// Panics if epsilon relaxation exceeds its budget (negative-weight
/// epsilon cycle).
pub fn accept_cost(fst: &Wfst, ilabels: &[Label]) -> Option<f32> {
    let n = fst.num_states();
    if n == 0 {
        return None;
    }
    let budget = (n as u64 + 1) * (fst.num_arcs() as u64 + 1) + 1;
    // Relax epsilon-input arcs within one position.
    let eps_close = |dist: &mut Vec<f32>| {
        let mut queue: Vec<StateId> = (0..n as StateId)
            .filter(|&s| dist[s as usize].is_finite())
            .collect();
        let mut relaxations = 0u64;
        while let Some(s) = queue.pop() {
            let ds = dist[s as usize];
            for a in fst.arcs(s) {
                if a.ilabel != EPSILON {
                    continue;
                }
                relaxations += 1;
                assert!(relaxations <= budget, "accept_cost: negative epsilon cycle");
                let nd = ds + a.weight;
                if nd < dist[a.nextstate as usize] {
                    dist[a.nextstate as usize] = nd;
                    queue.push(a.nextstate);
                }
            }
        }
    };

    let mut dist = vec![f32::INFINITY; n];
    dist[fst.start() as usize] = 0.0;
    eps_close(&mut dist);
    for &label in ilabels {
        let mut next = vec![f32::INFINITY; n];
        for s in fst.states() {
            let ds = dist[s as usize];
            if !ds.is_finite() {
                continue;
            }
            for a in fst.arcs(s) {
                if a.ilabel == label {
                    let nd = ds + a.weight;
                    if nd < next[a.nextstate as usize] {
                        next[a.nextstate as usize] = nd;
                    }
                }
            }
        }
        eps_close(&mut next);
        dist = next;
    }
    let mut best = f32::INFINITY;
    for s in fst.states() {
        if let Some(fw) = fst.final_weight(s) {
            best = best.min(dist[s as usize] + fw);
        }
    }
    best.is_finite().then_some(best)
}

/// Whether every state has at most one outgoing arc per input label and
/// no epsilon-input arcs.
pub fn is_deterministic(fst: &Wfst) -> bool {
    fst.states().all(|s| {
        let mut seen = std::collections::HashSet::new();
        fst.arcs(s)
            .iter()
            .all(|a| a.ilabel != EPSILON && seen.insert(a.ilabel))
    })
}

/// Options for [`determinize`].
#[derive(Debug, Clone, Copy)]
pub struct DeterminizeOptions {
    /// Abort (panic) once this many determinized states exist — the
    /// guard against non-terminating cyclic cases.
    pub max_states: usize,
}

impl Default for DeterminizeOptions {
    fn default() -> Self {
        DeterminizeOptions {
            max_states: 1_000_000,
        }
    }
}

/// Residual weights are quantized to this resolution when forming
/// subset keys, so float jitter cannot spawn unbounded near-duplicate
/// subsets.
const RESIDUAL_QUANTUM: f32 = 1e-4;

/// Determinizes an epsilon-free weighted *acceptor*.
///
/// # Panics
/// Panics if the machine has epsilon-input arcs (run
/// [`crate::rm_epsilon`] first), if any arc is a transducer arc
/// (`ilabel != olabel`), or if the subset construction exceeds
/// `opts.max_states`.
pub fn determinize(fst: &Wfst, opts: DeterminizeOptions) -> Wfst {
    if fst.num_states() == 0 {
        return WfstBuilder::new().build();
    }
    for s in fst.states() {
        for a in fst.arcs(s) {
            assert_ne!(a.ilabel, EPSILON, "determinize: remove epsilons first");
            assert_eq!(a.ilabel, a.olabel, "determinize: acceptors only");
        }
    }

    // A determinized state: sorted (state, residual) pairs, residuals
    // quantized and normalized to min 0.
    type Subset = Vec<(StateId, i32)>;
    let quantize = |w: f32| (w / RESIDUAL_QUANTUM).round() as i32;
    let dequantize = |q: i32| q as f32 * RESIDUAL_QUANTUM;

    let mut b = WfstBuilder::new();
    let mut index: HashMap<Subset, StateId> = HashMap::new();
    let start_subset: Subset = vec![(fst.start(), 0)];
    let start = b.add_state();
    b.set_start(start);
    index.insert(start_subset.clone(), start);
    let mut queue: Vec<Subset> = vec![start_subset];
    let mut pending: Vec<(StateId, Arc)> = Vec::new();

    while let Some(subset) = queue.pop() {
        let id = index[&subset];
        // Final weight: min over members of residual + final weight.
        let mut fw = f32::INFINITY;
        for &(s, rq) in &subset {
            if let Some(w) = fst.final_weight(s) {
                fw = fw.min(dequantize(rq) + w);
            }
        }
        if fw.is_finite() {
            b.set_final(id, fw);
        }

        // Group successor (state, weight) pairs by label.
        let mut by_label: HashMap<Label, HashMap<StateId, f32>> = HashMap::new();
        for &(s, rq) in &subset {
            let res = dequantize(rq);
            for a in fst.arcs(s) {
                let entry = by_label.entry(a.ilabel).or_default();
                let w = res + a.weight;
                entry
                    .entry(a.nextstate)
                    .and_modify(|cur| *cur = cur.min(w))
                    .or_insert(w);
            }
        }
        let mut labels: Vec<Label> = by_label.keys().copied().collect();
        labels.sort_unstable();
        for label in labels {
            let members = &by_label[&label];
            let min_w = members.values().copied().fold(f32::INFINITY, f32::min);
            let mut next: Subset = members
                .iter()
                .map(|(&s, &w)| (s, quantize(w - min_w)))
                .collect();
            next.sort_unstable();
            let dest = match index.get(&next) {
                Some(&d) => d,
                None => {
                    assert!(
                        index.len() < opts.max_states,
                        "determinize: exceeded {} states — the machine may \
                         not be determinizable (twins property)",
                        opts.max_states
                    );
                    let d = b.add_state();
                    index.insert(next.clone(), d);
                    queue.push(next);
                    d
                }
            };
            pending.push((id, Arc::new(label, label, min_w, dest)));
        }
    }
    for (src, arc) in pending {
        b.add_arc(src, arc);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmepsilon::rm_epsilon;
    use proptest::prelude::*;

    /// Union of weighted strings: a deliberately nondeterministic
    /// acceptor (every string gets its own branch from the start).
    fn union_of_strings(strings: &[(Vec<Label>, f32)]) -> Wfst {
        let mut b = WfstBuilder::new();
        let start = b.add_state();
        b.set_start(start);
        for (string, weight) in strings {
            let mut prev = start;
            for (i, &l) in string.iter().enumerate() {
                let s = b.add_state();
                let w = if i == 0 { *weight } else { 0.0 };
                // Destination must exist before add_arc; it does (s).
                b.add_arc(prev, Arc::new(l, l, w, s));
                prev = s;
            }
            b.set_final(prev, 0.0);
        }
        b.build()
    }

    #[test]
    fn accept_cost_on_a_chain() {
        let f = union_of_strings(&[(vec![1, 2, 3], 0.5)]);
        assert_eq!(accept_cost(&f, &[1, 2, 3]), Some(0.5));
        assert_eq!(accept_cost(&f, &[1, 2]), None);
        assert_eq!(accept_cost(&f, &[3, 2, 1]), None);
    }

    #[test]
    fn determinize_merges_shared_prefixes() {
        let f = union_of_strings(&[
            (vec![1, 2, 3], 0.1),
            (vec![1, 2, 4], 0.2),
            (vec![1, 5], 0.3),
        ]);
        assert!(!is_deterministic(&f));
        let d = determinize(&f, DeterminizeOptions::default());
        assert!(is_deterministic(&d));
        // Prefix "1" is shared: the deterministic machine is smaller.
        assert!(d.num_states() < f.num_states());
        // Start state has exactly one arc (label 1).
        assert_eq!(d.arcs(d.start()).len(), 1);
        for (string, w) in [
            (vec![1u32, 2, 3], 0.1f32),
            (vec![1, 2, 4], 0.2),
            (vec![1, 5], 0.3),
        ] {
            let got = accept_cost(&d, &string).unwrap();
            assert!((got - w).abs() < 1e-3, "{string:?}: {got} vs {w}");
        }
        assert_eq!(accept_cost(&d, &[1, 2]), None);
    }

    #[test]
    fn duplicate_strings_keep_the_cheaper_weight() {
        let f = union_of_strings(&[(vec![7, 8], 2.0), (vec![7, 8], 0.5)]);
        let d = determinize(&f, DeterminizeOptions::default());
        assert!((accept_cost(&d, &[7, 8]).unwrap() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn deterministic_cyclic_machine_passes_through() {
        // A self-loop acceptor is already deterministic; determinize
        // must terminate and preserve it.
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::new(1, 1, 0.5, 1));
        b.add_arc(1, Arc::new(1, 1, 0.25, 1)); // loop
        let f = b.build();
        let d = determinize(&f, DeterminizeOptions::default());
        assert!(is_deterministic(&d));
        assert!((accept_cost(&d, &[1, 1, 1]).unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn lm_after_epsilon_removal_is_determinizable() {
        // A back-off LM is deterministic per state *except* for its
        // epsilon arcs; removing them yields an acceptor whose
        // determinization terminates and preserves string costs.
        // (The result is the "eagerly composed" LM real toolchains use.)
        use crate::compose::resolve_lm_word;
        let mut b = WfstBuilder::with_states(3);
        b.set_start(0);
        for s in 0..3 {
            b.set_final(s, 0.0);
        }
        b.add_arc(0, Arc::new(1, 1, 1.0, 1));
        b.add_arc(0, Arc::new(2, 2, 2.0, 2));
        b.add_arc(1, Arc::new(2, 2, 0.5, 2));
        b.add_arc(1, Arc::epsilon(0.7, 0));
        b.add_arc(2, Arc::epsilon(0.9, 0));
        let mut lm = b.build();
        lm.sort_arcs_by_ilabel();
        let noeps = rm_epsilon(&lm);
        let d = determinize(&noeps, DeterminizeOptions::default());
        assert!(is_deterministic(&d));
        // Cost of "1 2" via the bigram arc (cheaper than backoff path).
        let direct = resolve_lm_word(&lm, 1, 2).unwrap().1;
        let got = accept_cost(&d, &[1, 2]).unwrap();
        assert!((got - (1.0 + direct.min(0.7 + 2.0))).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "remove epsilons first")]
    fn epsilon_input_rejected() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::epsilon(0.0, 1));
        let _ = determinize(&b.build(), DeterminizeOptions::default());
    }

    #[test]
    #[should_panic(expected = "acceptors only")]
    fn transducer_rejected() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::new(1, 2, 0.0, 1));
        let _ = determinize(&b.build(), DeterminizeOptions::default());
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn state_budget_enforced() {
        // Classic non-determinizable machine: two cycles with different
        // weights on the same label (non-twin siblings).
        let mut b = WfstBuilder::with_states(3);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.set_final(2, 0.0);
        b.add_arc(0, Arc::new(1, 1, 0.0, 1));
        b.add_arc(0, Arc::new(1, 1, 0.5, 2));
        b.add_arc(1, Arc::new(1, 1, 1.0, 1));
        b.add_arc(2, Arc::new(1, 1, 2.0, 2));
        let _ = determinize(&b.build(), DeterminizeOptions { max_states: 100 });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Determinization preserves the weighted language on random
        /// string unions.
        #[test]
        fn preserves_costs_on_random_unions(
            strings in proptest::collection::vec(
                (proptest::collection::vec(1u32..6, 1..6), 0.0f32..5.0),
                1..8
            )
        ) {
            let f = union_of_strings(&strings);
            let d = determinize(&f, DeterminizeOptions::default());
            prop_assert!(is_deterministic(&d));
            for (string, _) in &strings {
                let orig = accept_cost(&f, string).expect("accepted by union");
                let det = accept_cost(&d, string).expect("accepted after determinization");
                prop_assert!((orig - det).abs() < 1e-2, "{string:?}: {orig} vs {det}");
            }
            // Strings outside the union stay outside.
            let probe = vec![5u32, 5, 5, 5, 5, 5, 5];
            prop_assert_eq!(
                accept_cost(&f, &probe).is_some(),
                accept_cost(&d, &probe).is_some()
            );
        }
    }
}
