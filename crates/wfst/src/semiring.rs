//! Semirings for shortest-path computations.
//!
//! The Viterbi search operates in the *tropical* semiring (min, +) over
//! negative log-probabilities: `plus` keeps the better hypothesis and
//! `times` accumulates costs along a path. The *log* semiring is provided
//! for completeness (it is what full-posterior lattice rescoring would
//! use) and to property-test the semiring laws against a second instance.

/// An abstract semiring over `f32`-backed weights.
///
/// Implementors must satisfy the semiring laws (associativity and
/// commutativity of `plus`, associativity of `times`, distributivity,
/// and identity/annihilator behavior of [`Semiring::zero`] and
/// [`Semiring::one`]); the property tests in this module check them.
pub trait Semiring: Copy + PartialEq + std::fmt::Debug {
    /// The additive identity (the "impossible" hypothesis).
    fn zero() -> Self;
    /// The multiplicative identity (the free transition).
    fn one() -> Self;
    /// Combines two alternative paths.
    fn plus(self, rhs: Self) -> Self;
    /// Extends a path with an additional arc.
    fn times(self, rhs: Self) -> Self;
    /// The raw cost value (negative log-probability).
    fn value(self) -> f32;
    /// Wraps a raw cost (negative log-probability) — the inverse of
    /// [`Semiring::value`]. Lets semiring-generic passes (forward /
    /// backward lattice scores, threshold folds) lift `f32` arc costs
    /// without naming a concrete weight type.
    fn from_cost(cost: f32) -> Self;
}

/// Tropical semiring: `plus` = min, `times` = +.
///
/// ```
/// use unfold_wfst::{Semiring, TropicalWeight};
/// let a = TropicalWeight::new(1.0);
/// let b = TropicalWeight::new(2.0);
/// assert_eq!(a.plus(b), a);
/// assert_eq!(a.times(b).value(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct TropicalWeight(f32);

impl TropicalWeight {
    /// Wraps a cost (negative log-probability).
    #[inline]
    pub fn new(cost: f32) -> Self {
        TropicalWeight(cost)
    }
}

impl Semiring for TropicalWeight {
    #[inline]
    fn zero() -> Self {
        TropicalWeight(f32::INFINITY)
    }
    #[inline]
    fn one() -> Self {
        TropicalWeight(0.0)
    }
    #[inline]
    fn plus(self, rhs: Self) -> Self {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
    #[inline]
    fn times(self, rhs: Self) -> Self {
        TropicalWeight(self.0 + rhs.0)
    }
    #[inline]
    fn value(self) -> f32 {
        self.0
    }
    #[inline]
    fn from_cost(cost: f32) -> Self {
        TropicalWeight(cost)
    }
}

impl Default for TropicalWeight {
    fn default() -> Self {
        Self::one()
    }
}

impl std::fmt::Display for TropicalWeight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Log semiring: `plus` = -log(e^-a + e^-b), `times` = +.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LogWeight(f32);

impl LogWeight {
    /// Wraps a cost (negative log-probability).
    #[inline]
    pub fn new(cost: f32) -> Self {
        LogWeight(cost)
    }
}

/// Numerically-stable `-ln(e^-a + e^-b)`.
fn log_add(a: f32, b: f32) -> f32 {
    if a == f32::INFINITY {
        return b;
    }
    if b == f32::INFINITY {
        return a;
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    lo - (1.0 + (-(hi - lo)).exp()).ln()
}

impl Semiring for LogWeight {
    #[inline]
    fn zero() -> Self {
        LogWeight(f32::INFINITY)
    }
    #[inline]
    fn one() -> Self {
        LogWeight(0.0)
    }
    #[inline]
    fn plus(self, rhs: Self) -> Self {
        LogWeight(log_add(self.0, rhs.0))
    }
    #[inline]
    fn times(self, rhs: Self) -> Self {
        LogWeight(self.0 + rhs.0)
    }
    #[inline]
    fn value(self) -> f32 {
        self.0
    }
    #[inline]
    fn from_cost(cost: f32) -> Self {
        LogWeight(cost)
    }
}

impl Default for LogWeight {
    fn default() -> Self {
        Self::one()
    }
}

impl std::fmt::Display for LogWeight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tropical_identities() {
        let w = TropicalWeight::new(3.5);
        assert_eq!(w.plus(TropicalWeight::zero()), w);
        assert_eq!(w.times(TropicalWeight::one()), w);
        assert_eq!(w.times(TropicalWeight::zero()), TropicalWeight::zero());
    }

    #[test]
    fn log_plus_is_probability_sum() {
        // P = 0.5 each => combined P = 1.0 => cost 0.
        let half = LogWeight::new(core::f32::consts::LN_2);
        let sum = half.plus(half);
        assert!(sum.value().abs() < 1e-6, "got {}", sum.value());
    }

    #[test]
    fn log_plus_with_zero() {
        let w = LogWeight::new(1.25);
        assert_eq!(w.plus(LogWeight::zero()), w);
        assert_eq!(LogWeight::zero().plus(w), w);
    }

    fn costs() -> impl Strategy<Value = f32> {
        prop_oneof![(0.0f32..50.0), Just(f32::INFINITY)]
    }

    proptest! {
        #[test]
        fn tropical_plus_commutative(a in costs(), b in costs()) {
            let (a, b) = (TropicalWeight::new(a), TropicalWeight::new(b));
            prop_assert_eq!(a.plus(b), b.plus(a));
        }

        #[test]
        fn tropical_plus_associative(a in costs(), b in costs(), c in costs()) {
            let (a, b, c) = (TropicalWeight::new(a), TropicalWeight::new(b), TropicalWeight::new(c));
            prop_assert_eq!(a.plus(b).plus(c), a.plus(b.plus(c)));
        }

        #[test]
        fn tropical_distributes(a in 0.0f32..50.0, b in 0.0f32..50.0, c in 0.0f32..50.0) {
            let (a, b, c) = (TropicalWeight::new(a), TropicalWeight::new(b), TropicalWeight::new(c));
            let lhs = a.times(b.plus(c));
            let rhs = a.times(b).plus(a.times(c));
            prop_assert!((lhs.value() - rhs.value()).abs() < 1e-4);
        }

        #[test]
        fn log_plus_commutative(a in 0.0f32..30.0, b in 0.0f32..30.0) {
            let (a, b) = (LogWeight::new(a), LogWeight::new(b));
            prop_assert!((a.plus(b).value() - b.plus(a).value()).abs() < 1e-4);
        }

        #[test]
        fn log_plus_never_worse_than_best(a in 0.0f32..30.0, b in 0.0f32..30.0) {
            // Combining alternatives can only increase total probability,
            // i.e. the resulting cost is <= min(a, b).
            let s = LogWeight::new(a).plus(LogWeight::new(b));
            prop_assert!(s.value() <= a.min(b) + 1e-5);
        }
    }
}
