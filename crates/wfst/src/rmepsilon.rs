//! Epsilon removal.
//!
//! Replaces epsilon-input transitions by folding their weights into the
//! following non-epsilon arcs (and final weights), preserving the
//! weighted input/output relation. Offline toolchains run this between
//! composition and decoding; here it also serves as a differential
//! oracle — removing epsilons must not change shortest-path costs.
//!
//! Output labels on epsilon-input arcs (cross-word transitions) are
//! *not* erasable without changing the relation, so arcs with
//! `ilabel == EPSILON` but `olabel != EPSILON` are kept as-is; only
//! pure epsilon:epsilon arcs are removed. That matches what the
//! decoding graphs in this repository contain (back-off arcs and
//! word-return arcs are the two epsilon-input kinds; only back-off
//! arcs are pure).

use crate::arc::{Arc, StateId, EPSILON};
use crate::fst::{Wfst, WfstBuilder};

/// Removes pure epsilon (epsilon:epsilon) arcs.
///
/// For every state, the weighted epsilon-closure is computed (cheapest
/// pure-epsilon distance to each reachable state); non-epsilon arcs and
/// final weights of closure states are copied over with the closure
/// distance folded in. States are preserved (ids unchanged); dead
/// states can be trimmed afterwards with [`crate::connect()`].
///
/// # Panics
/// Panics if the machine contains a pure-epsilon cycle with negative
/// total weight (the closure would not terminate); epsilon cycles with
/// non-negative weight are fine (they never improve a distance).
pub fn rm_epsilon(fst: &Wfst) -> Wfst {
    let n = fst.num_states();
    let mut b = WfstBuilder::with_states(n);
    if n == 0 {
        return b.build();
    }
    b.set_start(fst.start());

    for s in fst.states() {
        // Weighted epsilon-closure from `s` (label-correcting search).
        let mut dist: std::collections::HashMap<StateId, f32> = std::collections::HashMap::new();
        dist.insert(s, 0.0);
        let mut queue = std::collections::VecDeque::from([s]);
        let mut relaxations = 0u64;
        let budget = (n as u64 + 1) * (fst.num_arcs() as u64 + 1) + 1;
        while let Some(q) = queue.pop_front() {
            let dq = dist[&q];
            for a in fst.arcs(q) {
                if a.ilabel != EPSILON || a.olabel != EPSILON {
                    continue;
                }
                relaxations += 1;
                assert!(relaxations <= budget, "rm_epsilon: negative epsilon cycle");
                let nd = dq + a.weight;
                if dist.get(&a.nextstate).is_none_or(|&d| nd < d) {
                    dist.insert(a.nextstate, nd);
                    queue.push_back(a.nextstate);
                }
            }
        }

        // Emit: non-epsilon (or output-bearing) arcs and final weights
        // of every closure member, shifted by the closure distance.
        let mut best_final: Option<f32> = None;
        let mut sorted: Vec<(StateId, f32)> = dist.into_iter().collect();
        sorted.sort_unstable_by_key(|&(q, _)| q);
        for (q, d) in sorted {
            if let Some(fw) = fst.final_weight(q) {
                let total = d + fw;
                if best_final.is_none_or(|bf| total < bf) {
                    best_final = Some(total);
                }
            }
            for a in fst.arcs(q) {
                if a.ilabel == EPSILON && a.olabel == EPSILON {
                    continue;
                }
                b.add_arc(s, Arc::new(a.ilabel, a.olabel, d + a.weight, a.nextstate));
            }
        }
        if let Some(fw) = best_final {
            b.set_final(s, fw);
        }
    }
    b.build()
}

/// Whether the machine has any pure epsilon arcs left.
pub fn has_pure_epsilons(fst: &Wfst) -> bool {
    fst.states().any(|s| {
        fst.arcs(s)
            .iter()
            .any(|a| a.ilabel == EPSILON && a.olabel == EPSILON)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::shortest_path;

    fn with_epsilons() -> Wfst {
        let mut b = WfstBuilder::with_states(4);
        b.set_start(0);
        b.set_final(3, 0.5);
        b.add_arc(0, Arc::epsilon(0.2, 1)); // pure epsilon
        b.add_arc(1, Arc::new(5, 0, 1.0, 2));
        b.add_arc(2, Arc::epsilon(0.3, 3)); // pure epsilon
        b.add_arc(0, Arc::new(7, 0, 9.0, 3));
        b.build()
    }

    #[test]
    fn removes_all_pure_epsilons() {
        let f = with_epsilons();
        assert!(has_pure_epsilons(&f));
        let g = rm_epsilon(&f);
        assert!(!has_pure_epsilons(&g));
    }

    #[test]
    fn preserves_shortest_path() {
        let f = with_epsilons();
        let g = rm_epsilon(&f);
        let pf = shortest_path(&f).unwrap();
        let pg = shortest_path(&g).unwrap();
        assert!((pf.cost - pg.cost).abs() < 1e-6);
        assert_eq!(pf.ilabels, pg.ilabels);
    }

    #[test]
    fn closure_folds_final_weights() {
        // start --eps(0.1)--> final(0.2): start becomes final at 0.3.
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.2);
        b.add_arc(0, Arc::epsilon(0.1, 1));
        let g = rm_epsilon(&b.build());
        assert!((g.final_weight(0).unwrap() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn keeps_output_bearing_epsilon_input_arcs() {
        // A cross-word arc (eps input, word output) must survive.
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::new(EPSILON, 42, 0.7, 1));
        let g = rm_epsilon(&b.build());
        assert_eq!(g.arcs(0).len(), 1);
        assert_eq!(g.arcs(0)[0].olabel, 42);
    }

    #[test]
    fn positive_epsilon_cycle_is_tolerated() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::epsilon(1.0, 1));
        b.add_arc(1, Arc::epsilon(1.0, 0)); // cycle, but positive
        b.add_arc(1, Arc::new(3, 0, 0.5, 1));
        let g = rm_epsilon(&b.build());
        assert!(!has_pure_epsilons(&g));
        assert!(shortest_path(&g).is_some());
    }

    #[test]
    fn zero_weight_epsilon_cycle_terminates() {
        // Zero-weight cycles never strictly improve a distance, so the
        // closure converges.
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::epsilon(0.0, 1));
        b.add_arc(1, Arc::epsilon(0.0, 0));
        b.add_arc(1, Arc::new(3, 0, 0.5, 1));
        let g = rm_epsilon(&b.build());
        assert!(!has_pure_epsilons(&g));
    }

    #[test]
    #[should_panic(expected = "negative epsilon cycle")]
    fn negative_epsilon_cycle_panics() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::epsilon(1.0, 1));
        b.add_arc(1, Arc::epsilon(-2.0, 0));
        let _ = rm_epsilon(&b.build());
    }

    #[test]
    fn lm_backoff_arcs_are_removable() {
        // On a real back-off LM, removing epsilons keeps resolution
        // costs reachable as plain arcs (the closure pre-applies bow).
        // Miniature: root 0, unigram-history state 1 with a back-off.
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(0, 0.0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::new(1, 1, 2.0, 1)); // unigram w1
        b.add_arc(1, Arc::epsilon(0.4, 0)); // back-off
        let g = rm_epsilon(&b.build());
        // State 1 now reaches w1 directly at bow + unigram cost.
        let w1 = g.arcs(1).iter().find(|a| a.ilabel == 1).unwrap();
        assert!((w1.weight - 2.4).abs() < 1e-6);
    }
}
