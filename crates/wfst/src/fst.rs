//! The [`Wfst`] container and its builder.
//!
//! States and arcs live in two flat arrays (the layout of Choi et al.
//! that the paper's §3.4 adopts): a per-state record holding the offset
//! of its first arc plus the arc count, and a contiguous arc array. This
//! gives the single-indirection state fetch the accelerator's State
//! Issuer performs, and makes byte-size accounting straightforward.

use crate::arc::{Arc, Label, StateId, EPSILON, NO_STATE};

/// Mutable WFST under construction. Finish with [`WfstBuilder::build`].
///
/// ```
/// use unfold_wfst::{WfstBuilder, Arc};
/// let mut b = WfstBuilder::new();
/// let s = b.add_state();
/// let t = b.add_state();
/// b.set_start(s);
/// b.set_final(t, 1.0);
/// b.add_arc(s, Arc::new(1, 0, 0.25, t));
/// let fst = b.build();
/// assert_eq!(fst.num_arcs(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WfstBuilder {
    arcs: Vec<Vec<Arc>>,
    finals: Vec<f32>,
    start: StateId,
}

impl WfstBuilder {
    /// Creates an empty builder with no states.
    pub fn new() -> Self {
        WfstBuilder {
            arcs: Vec::new(),
            finals: Vec::new(),
            start: NO_STATE,
        }
    }

    /// Creates a builder pre-sized for `n` states (ids `0..n`).
    pub fn with_states(n: usize) -> Self {
        WfstBuilder {
            arcs: vec![Vec::new(); n],
            finals: vec![f32::INFINITY; n],
            start: NO_STATE,
        }
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.arcs.push(Vec::new());
        self.finals.push(f32::INFINITY);
        (self.arcs.len() - 1) as StateId
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.arcs.len()
    }

    /// Marks the start state.
    ///
    /// # Panics
    /// Panics if `s` has not been added.
    pub fn set_start(&mut self, s: StateId) {
        assert!(
            (s as usize) < self.arcs.len(),
            "set_start: unknown state {s}"
        );
        self.start = s;
    }

    /// Marks `s` final with the given cost.
    ///
    /// # Panics
    /// Panics if `s` has not been added.
    pub fn set_final(&mut self, s: StateId, weight: f32) {
        assert!(
            (s as usize) < self.arcs.len(),
            "set_final: unknown state {s}"
        );
        self.finals[s as usize] = weight;
    }

    /// Appends an outgoing arc to `s`.
    ///
    /// # Panics
    /// Panics if `s` or the arc's destination has not been added.
    pub fn add_arc(&mut self, s: StateId, arc: Arc) {
        assert!(
            (s as usize) < self.arcs.len(),
            "add_arc: unknown source {s}"
        );
        assert!(
            (arc.nextstate as usize) < self.arcs.len(),
            "add_arc: unknown destination {}",
            arc.nextstate
        );
        self.arcs[s as usize].push(arc);
    }

    /// Freezes the builder into an immutable CSR [`Wfst`].
    ///
    /// # Panics
    /// Panics if no start state was set on a non-empty machine.
    pub fn build(self) -> Wfst {
        assert!(
            self.arcs.is_empty() || self.start != NO_STATE,
            "build: start state not set"
        );
        let num_arcs: usize = self.arcs.iter().map(Vec::len).sum();
        let mut flat = Vec::with_capacity(num_arcs);
        let mut offsets = Vec::with_capacity(self.arcs.len() + 1);
        offsets.push(0u32);
        for state_arcs in &self.arcs {
            flat.extend_from_slice(state_arcs);
            offsets.push(flat.len() as u32);
        }
        Wfst {
            offsets,
            arcs: flat,
            finals: self.finals,
            start: self.start,
        }
    }
}

/// An immutable WFST in CSR form.
#[derive(Debug, Clone)]
pub struct Wfst {
    /// `offsets[s]..offsets[s+1]` indexes `arcs` for state `s`.
    offsets: Vec<u32>,
    arcs: Vec<Arc>,
    /// Final cost per state; `f32::INFINITY` means non-final.
    finals: Vec<f32>,
    start: StateId,
}

impl Wfst {
    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.finals.len()
    }

    /// Total number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Outgoing arcs of `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    #[inline]
    pub fn arcs(&self, s: StateId) -> &[Arc] {
        let lo = self.offsets[s as usize] as usize;
        let hi = self.offsets[s as usize + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// Byte offset of state `s`'s first arc in the flat arc array, under
    /// the paper's 16-bytes-per-arc uncompressed layout. The simulator
    /// uses this to derive memory addresses.
    #[inline]
    pub fn arc_base_offset(&self, s: StateId) -> u64 {
        self.offsets[s as usize] as u64 * std::mem::size_of::<Arc>() as u64
    }

    /// Final cost of `s`, or `None` if `s` is not final.
    #[inline]
    pub fn final_weight(&self, s: StateId) -> Option<f32> {
        let w = self.finals[s as usize];
        if w.is_finite() {
            Some(w)
        } else {
            None
        }
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        0..self.num_states() as StateId
    }

    /// Sorts each state's arcs by input label, ascending.
    ///
    /// Epsilon-labelled arcs (label 0) are moved to the *end* of each
    /// state's arc list rather than the front: in the LM these are
    /// back-off arcs, and the paper's compressed layout stores "the
    /// back-off arc ... always \[as\] the last outgoing arc of each state"
    /// (§3.4) so that binary search over the word-labelled prefix works.
    pub fn sort_arcs_by_ilabel(&mut self) {
        let n = self.num_states();
        for s in 0..n {
            let lo = self.offsets[s] as usize;
            let hi = self.offsets[s + 1] as usize;
            self.arcs[lo..hi].sort_by_key(|a| sort_key(a.ilabel));
        }
    }

    /// Whether every state's arcs are ilabel-sorted (epsilon last).
    pub fn is_ilabel_sorted(&self) -> bool {
        self.states().all(|s| {
            self.arcs(s)
                .windows(2)
                .all(|w| sort_key(w[0].ilabel) <= sort_key(w[1].ilabel))
        })
    }

    /// Binary-searches the ilabel-sorted arcs of `s` for `label`.
    ///
    /// Returns the matching arc and the number of probes the search
    /// performed (the paper's Arc Issuer issues one LM-arc fetch per
    /// probe, so the probe count drives the simulator's memory trace).
    /// Returns `None` (with the probe count) if no arc matches.
    pub fn find_arc(&self, s: StateId, label: Label) -> (Option<&Arc>, u32) {
        debug_assert_ne!(label, EPSILON, "find_arc: cannot search for epsilon");
        let arcs = self.arcs(s);
        // Exclude the trailing epsilon (back-off) arcs from the search range.
        let mut hi = arcs.len();
        while hi > 0 && arcs[hi - 1].ilabel == EPSILON {
            hi -= 1;
        }
        let mut lo = 0usize;
        let mut probes = 0u32;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            match arcs[mid].ilabel.cmp(&label) {
                std::cmp::Ordering::Equal => return (Some(&arcs[mid]), probes),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        (None, probes)
    }

    /// Linear-searches the arcs of `s` for `label`; returns the arc and
    /// probe count. This is the strawman the paper reports as a 10x
    /// slowdown before switching to binary search.
    pub fn find_arc_linear(&self, s: StateId, label: Label) -> (Option<&Arc>, u32) {
        let mut probes = 0;
        for a in self.arcs(s) {
            probes += 1;
            if a.ilabel == label {
                return (Some(a), probes);
            }
        }
        (None, probes)
    }

    /// The back-off arc of `s`: the trailing epsilon-input arc, if any.
    pub fn backoff_arc(&self, s: StateId) -> Option<&Arc> {
        self.arcs(s).last().filter(|a| a.ilabel == EPSILON)
    }

    /// Index of an arc within the flat arc array (for address modelling).
    ///
    /// # Panics
    /// Panics if `arc_idx` is out of range for `s`.
    pub fn global_arc_index(&self, s: StateId, arc_idx: usize) -> u64 {
        let lo = self.offsets[s as usize] as usize;
        let hi = self.offsets[s as usize + 1] as usize;
        assert!(
            lo + arc_idx < hi,
            "arc index {arc_idx} out of range for state {s}"
        );
        (lo + arc_idx) as u64
    }
}

/// Sort key placing epsilon (back-off) arcs after all word arcs.
#[inline]
fn sort_key(label: Label) -> u64 {
    if label == EPSILON {
        u64::from(u32::MAX) + 1
    } else {
        u64::from(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(n: usize) -> Wfst {
        let mut b = WfstBuilder::with_states(n);
        b.set_start(0);
        b.set_final((n - 1) as StateId, 0.0);
        for s in 0..n - 1 {
            b.add_arc(
                s as StateId,
                Arc::new(s as Label + 1, 0, 0.1, s as StateId + 1),
            );
        }
        b.build()
    }

    #[test]
    fn builder_roundtrip() {
        let fst = chain(4);
        assert_eq!(fst.num_states(), 4);
        assert_eq!(fst.num_arcs(), 3);
        assert_eq!(fst.start(), 0);
        assert_eq!(fst.arcs(1)[0].nextstate, 2);
        assert_eq!(fst.final_weight(3), Some(0.0));
        assert_eq!(fst.final_weight(0), None);
    }

    #[test]
    #[should_panic(expected = "start state not set")]
    fn build_without_start_panics() {
        let mut b = WfstBuilder::new();
        b.add_state();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "unknown destination")]
    fn arc_to_missing_state_panics() {
        let mut b = WfstBuilder::new();
        let s = b.add_state();
        b.add_arc(s, Arc::new(1, 0, 0.0, 99));
    }

    #[test]
    fn empty_machine_builds() {
        let fst = WfstBuilder::new().build();
        assert_eq!(fst.num_states(), 0);
        assert_eq!(fst.num_arcs(), 0);
    }

    #[test]
    fn sort_puts_epsilon_last() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::epsilon(0.5, 1)); // back-off first on purpose
        b.add_arc(0, Arc::new(7, 7, 0.1, 1));
        b.add_arc(0, Arc::new(3, 3, 0.2, 1));
        let mut fst = b.build();
        assert!(!fst.is_ilabel_sorted());
        fst.sort_arcs_by_ilabel();
        assert!(fst.is_ilabel_sorted());
        let labels: Vec<_> = fst.arcs(0).iter().map(|a| a.ilabel).collect();
        assert_eq!(labels, vec![3, 7, EPSILON]);
        assert!(fst.backoff_arc(0).is_some());
    }

    #[test]
    fn find_arc_skips_backoff() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        for w in [2u32, 4, 6, 8] {
            b.add_arc(0, Arc::new(w, w, 0.0, 1));
        }
        b.add_arc(0, Arc::epsilon(1.0, 1));
        let mut fst = b.build();
        fst.sort_arcs_by_ilabel();
        let (hit, _) = fst.find_arc(0, 6);
        assert_eq!(hit.unwrap().ilabel, 6);
        let (miss, _) = fst.find_arc(0, 5);
        assert!(miss.is_none());
        // The backoff arc must never be returned by a word search.
        let (eps_hit, _) = fst.find_arc(0, 1);
        assert!(eps_hit.is_none());
    }

    #[test]
    fn backoff_arc_absent_when_no_epsilon() {
        let fst = chain(3);
        assert!(fst.backoff_arc(0).is_none());
    }

    #[test]
    fn arc_base_offset_is_16_bytes_per_arc() {
        let fst = chain(4);
        assert_eq!(fst.arc_base_offset(0), 0);
        assert_eq!(fst.arc_base_offset(1), 16);
        assert_eq!(fst.arc_base_offset(2), 32);
    }

    proptest! {
        /// Binary search agrees with linear search on sorted arc lists.
        #[test]
        fn binary_matches_linear(labels in proptest::collection::btree_set(1u32..500, 0..60),
                                 query in 1u32..500) {
            let mut b = WfstBuilder::with_states(2);
            b.set_start(0);
            for &w in &labels {
                b.add_arc(0, Arc::new(w, w, 0.0, 1));
            }
            b.add_arc(0, Arc::epsilon(0.3, 1));
            let mut fst = b.build();
            fst.sort_arcs_by_ilabel();
            let (bin, probes) = fst.find_arc(0, query);
            let (lin, _) = fst.find_arc_linear(0, query);
            prop_assert_eq!(bin.map(|a| a.ilabel), lin.map(|a| a.ilabel));
            // log2 bound on probe count
            let n = labels.len().max(1) as f64;
            prop_assert!(probes as f64 <= n.log2().ceil() + 1.0);
        }
    }
}
