#![warn(missing_docs)]

//! Weighted finite-state transducer (WFST) substrate for the UNFOLD
//! reproduction.
//!
//! This crate provides the graph machinery that both the acoustic model
//! (AM) and language model (LM) of a WFST-based speech recognizer are
//! built on, plus the *offline* composition algorithm that the paper's
//! baseline systems rely on:
//!
//! * [`Wfst`] — a compact, arc-sorted transducer in CSR (compressed
//!   sparse row) form, with the 128-bit-per-arc memory layout the paper
//!   assumes for the uncompressed datasets,
//! * [`semiring`] — tropical and log semirings,
//! * [`compose`] — offline AM ∘ LM composition with failure (back-off)
//!   semantics, the operation UNFOLD moves from training time to decode
//!   time,
//! * [`connect()`] — trimming of inaccessible / non-coaccessible states,
//! * [`stats`] — byte-size and topology accounting used by the paper's
//!   Table 1 / Table 2 / Figure 8 experiments.
//!
//! # Example
//!
//! ```
//! use unfold_wfst::{Wfst, WfstBuilder, Arc, EPSILON};
//!
//! let mut b = WfstBuilder::new();
//! let s0 = b.add_state();
//! let s1 = b.add_state();
//! b.set_start(s0);
//! b.set_final(s1, 0.0);
//! b.add_arc(s0, Arc::new(3, 7, 0.5, s1));
//! let fst: Wfst = b.build();
//! assert_eq!(fst.num_states(), 2);
//! assert_eq!(fst.arcs(s0)[0].olabel, 7);
//! assert!(fst.final_weight(s1).is_some());
//! # let _ = EPSILON;
//! ```

pub mod arc;
pub mod compose;
pub mod connect;
pub mod determinize;
pub mod fst;
pub mod minimize;
pub mod ops;
pub mod rmepsilon;
pub mod semiring;
pub mod shortest;
pub mod stats;
pub mod symbols;

pub use arc::{Arc, Label, StateId, EPSILON, NO_STATE};
pub use compose::{compose_am_lm, ComposeOptions};
pub use connect::connect;
pub use determinize::{accept_cost, determinize, is_deterministic, DeterminizeOptions};
pub use fst::{Wfst, WfstBuilder};
pub use minimize::{intersect, minimize};
pub use ops::{
    invert, map_arcs, map_weights, project, relabel_states, reverse, to_dot, ProjectType,
};
pub use rmepsilon::{has_pure_epsilons, rm_epsilon};
pub use semiring::{LogWeight, Semiring, TropicalWeight};
pub use shortest::{shortest_distance, shortest_path, ShortestPath};
pub use stats::{FstStats, SizeModel};
pub use symbols::SymbolTable;
