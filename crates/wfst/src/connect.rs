//! Trimming: removes states that are unreachable from the start state or
//! cannot reach a final state. Offline toolchains (Kaldi's `fstconnect`)
//! run this after composition; we apply it so the composed-WFST sizes in
//! Table 1 are not inflated by dead states.

use crate::arc::{Arc, StateId, NO_STATE};
use crate::fst::{Wfst, WfstBuilder};

/// Returns a trimmed copy of `fst` containing only states that are both
/// accessible (reachable from the start) and coaccessible (can reach a
/// final state). State ids are renumbered densely in discovery order.
///
/// An empty machine (or one whose start state is useless) trims to an
/// empty machine.
pub fn connect(fst: &Wfst) -> Wfst {
    let n = fst.num_states();
    if n == 0 {
        return WfstBuilder::new().build();
    }

    // Forward reachability from the start.
    let mut accessible = vec![false; n];
    let mut stack = vec![fst.start()];
    accessible[fst.start() as usize] = true;
    while let Some(s) = stack.pop() {
        for a in fst.arcs(s) {
            if !accessible[a.nextstate as usize] {
                accessible[a.nextstate as usize] = true;
                stack.push(a.nextstate);
            }
        }
    }

    // Backward reachability from final states over reversed arcs.
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for s in fst.states() {
        for a in fst.arcs(s) {
            rev[a.nextstate as usize].push(s);
        }
    }
    let mut coaccessible = vec![false; n];
    let mut stack: Vec<StateId> = fst
        .states()
        .filter(|&s| fst.final_weight(s).is_some())
        .collect();
    for &s in &stack {
        coaccessible[s as usize] = true;
    }
    while let Some(s) = stack.pop() {
        for &p in &rev[s as usize] {
            if !coaccessible[p as usize] {
                coaccessible[p as usize] = true;
                stack.push(p);
            }
        }
    }

    let keep: Vec<bool> = (0..n).map(|i| accessible[i] && coaccessible[i]).collect();
    if !keep[fst.start() as usize] {
        return WfstBuilder::new().build();
    }

    let mut remap = vec![NO_STATE; n];
    let mut b = WfstBuilder::new();
    for s in 0..n {
        if keep[s] {
            remap[s] = b.add_state();
        }
    }
    b.set_start(remap[fst.start() as usize]);
    for s in 0..n {
        if !keep[s] {
            continue;
        }
        let ns = remap[s];
        if let Some(w) = fst.final_weight(s as StateId) {
            b.set_final(ns, w);
        }
        for a in fst.arcs(s as StateId) {
            if keep[a.nextstate as usize] {
                b.add_arc(
                    ns,
                    Arc::new(a.ilabel, a.olabel, a.weight, remap[a.nextstate as usize]),
                );
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arc::EPSILON;

    #[test]
    fn removes_unreachable_and_dead_states() {
        let mut b = WfstBuilder::with_states(5);
        b.set_start(0);
        b.set_final(1, 0.0);
        b.add_arc(0, Arc::new(1, EPSILON, 0.0, 1));
        b.add_arc(0, Arc::new(2, EPSILON, 0.0, 2)); // state 2 is a dead end
        b.add_arc(3, Arc::new(3, EPSILON, 0.0, 1)); // state 3 unreachable
                                                    // state 4 isolated
        let fst = b.build();
        let t = connect(&fst);
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.num_arcs(), 1);
        assert!(t.final_weight(t.arcs(t.start())[0].nextstate).is_some());
    }

    #[test]
    fn fully_connected_machine_is_unchanged_in_size() {
        let mut b = WfstBuilder::with_states(3);
        b.set_start(0);
        b.set_final(2, 0.5);
        b.add_arc(0, Arc::new(1, 0, 0.0, 1));
        b.add_arc(1, Arc::new(2, 0, 0.0, 2));
        b.add_arc(2, Arc::new(3, 0, 0.0, 0)); // loop back, still coaccessible
        let fst = b.build();
        let t = connect(&fst);
        assert_eq!(t.num_states(), 3);
        assert_eq!(t.num_arcs(), 3);
    }

    #[test]
    fn useless_start_trims_to_empty() {
        let mut b = WfstBuilder::with_states(2);
        b.set_start(0);
        b.set_final(1, 0.0); // unreachable final
        let fst = b.build();
        let t = connect(&fst);
        assert_eq!(t.num_states(), 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let t = connect(&WfstBuilder::new().build());
        assert_eq!(t.num_states(), 0);
    }
}
