//! Analytic NVIDIA Tegra X1 model.
//!
//! The paper measures its GPU baselines on a Jetson TX1 board (Table 4,
//! §4): CUDA Viterbi search, and GMM/DNN/RNN scoring that stays on the
//! GPU even in the accelerated system. Lacking the hardware, we model
//! the GPU analytically:
//!
//! * **Viterbi on GPU**: time proportional to the tokens the search
//!   creates (the same `DecodeStats` our decoders report), at a
//!   per-token cost calibrated so the GPU-vs-accelerator speed ratio
//!   lands in the paper's regime (GPU ≈ 9x real-time vs accelerator ≈
//!   155–188x on the full-size tasks — a 17–21x gap),
//! * **Acoustic scoring**: FLOPs from the `AcousticBackend` descriptor
//!   divided by the Tegra's sustained throughput.
//!
//! Absolute numbers therefore track workload scale, but every figure
//! that uses this model (1, 9, 12, 13, Table 5) compares *ratios*
//! between systems evaluated under the same model, which is the
//! property the reproduction preserves.

use unfold_am::AcousticBackend;
use unfold_decoder::DecodeStats;

/// Which scoring network runs on the GPU (naming follows Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoringKind {
    /// Gaussian mixture model (Kaldi-TEDLIUM, Kaldi-Voxforge).
    Gmm,
    /// Feed-forward DNN (Kaldi-Librispeech).
    Dnn,
    /// Bidirectional LSTM (EESEN-TEDLIUM).
    Lstm,
}

/// The Tegra X1 cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Microseconds the CUDA Viterbi spends per created token
    /// (kernel launch amortized; includes its memory traffic).
    pub viterbi_us_per_token: f64,
    /// Average GPU power while running the Viterbi search, W.
    pub viterbi_power_w: f64,
    /// Sustained throughput for dense feed-forward (DNN) kernels,
    /// FLOP/s — large GEMMs utilize the GPU well.
    pub dnn_flops_per_s: f64,
    /// Sustained throughput for GMM scoring — diagonal-covariance
    /// likelihood kernels are memory-bound and vectorize poorly.
    pub gmm_flops_per_s: f64,
    /// Sustained throughput for bidirectional-LSTM scoring — tiny
    /// sequential matrix-vector steps leave the GPU mostly idle (this
    /// is why EESEN's Figure 1 bar shows the LSTM eating ~45% of the
    /// decode despite modest FLOP counts).
    pub lstm_flops_per_s: f64,
    /// Average GPU power while scoring, W.
    pub scoring_power_w: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            viterbi_us_per_token: 1.0,
            viterbi_power_w: 1.0,
            dnn_flops_per_s: 7.0e10,
            gmm_flops_per_s: 2.0e10,
            lstm_flops_per_s: 5.0e8,
            scoring_power_w: 2.0,
        }
    }
}

impl GpuModel {
    /// Effective throughput for the given backend.
    pub fn effective_flops_per_s(&self, backend: &AcousticBackend) -> f64 {
        match backend {
            AcousticBackend::Gmm { .. } => self.gmm_flops_per_s,
            AcousticBackend::Dnn { .. } => self.dnn_flops_per_s,
            AcousticBackend::Lstm { .. } => self.lstm_flops_per_s,
        }
    }
}

impl GpuModel {
    /// Wall-clock seconds the GPU Viterbi needs for a decode that
    /// created `stats.tokens_created` tokens.
    pub fn viterbi_seconds(&self, stats: &DecodeStats) -> f64 {
        stats.tokens_created as f64 * self.viterbi_us_per_token / 1e6
    }

    /// Energy (mJ) of the GPU Viterbi for that decode.
    pub fn viterbi_energy_mj(&self, stats: &DecodeStats) -> f64 {
        self.viterbi_seconds(stats) * self.viterbi_power_w * 1e3
    }

    /// Wall-clock seconds to score `frames` frames with `backend`.
    pub fn scoring_seconds(&self, backend: &AcousticBackend, frames: usize) -> f64 {
        backend.flops_per_frame() as f64 * frames as f64 / self.effective_flops_per_s(backend)
    }

    /// Energy (mJ) of scoring `frames` frames.
    pub fn scoring_energy_mj(&self, backend: &AcousticBackend, frames: usize) -> f64 {
        self.scoring_seconds(backend, frames) * self.scoring_power_w * 1e3
    }

    /// Total GPU-only ASR time: scoring then search, sequential.
    pub fn gpu_only_seconds(
        &self,
        backend: &AcousticBackend,
        frames: usize,
        stats: &DecodeStats,
    ) -> f64 {
        self.scoring_seconds(backend, frames) + self.viterbi_seconds(stats)
    }

    /// Overall time for the hybrid system (paper §5.2): the GPU scores
    /// batch *i+1* while the accelerator decodes batch *i*, so the
    /// pipeline runs at the slower of the two, plus a small
    /// shared-buffer communication overhead.
    pub fn hybrid_seconds(
        &self,
        backend: &AcousticBackend,
        frames: usize,
        accel_seconds: f64,
    ) -> f64 {
        let scoring = self.scoring_seconds(backend, frames);
        scoring.max(accel_seconds) * 1.05
    }
}

/// Timing of the two-stage GPU → accelerator batch pipeline (§5.2:
/// "the input speech is split into batches of N frames and the GPU and
/// the accelerator work in parallel").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPipeline {
    /// End-to-end makespan in seconds.
    pub makespan_s: f64,
    /// Total time the GPU spends scoring.
    pub gpu_busy_s: f64,
    /// Total time the accelerator spends decoding.
    pub accel_busy_s: f64,
    /// Batches processed.
    pub batches: usize,
}

impl BatchPipeline {
    /// GPU occupancy over the makespan.
    pub fn gpu_utilization(&self) -> f64 {
        self.gpu_busy_s / self.makespan_s
    }

    /// Accelerator occupancy over the makespan.
    pub fn accel_utilization(&self) -> f64 {
        self.accel_busy_s / self.makespan_s
    }
}

/// Simulates the two-stage pipeline: the accelerator may start decoding
/// batch *i* only once the GPU has scored it (through the shared buffer
/// in main memory) and the accelerator has finished batch *i-1*.
///
/// # Panics
/// Panics if `batches == 0` or either per-batch time is negative.
pub fn batch_pipeline(
    scoring_per_batch_s: f64,
    accel_per_batch_s: f64,
    batches: usize,
) -> BatchPipeline {
    assert!(batches > 0, "batch_pipeline: need at least one batch");
    assert!(
        scoring_per_batch_s >= 0.0 && accel_per_batch_s >= 0.0,
        "batch_pipeline: negative stage time"
    );
    let mut gpu_done = 0.0f64;
    let mut accel_done = 0.0f64;
    for _ in 0..batches {
        gpu_done += scoring_per_batch_s;
        accel_done = gpu_done.max(accel_done) + accel_per_batch_s;
    }
    BatchPipeline {
        makespan_s: accel_done,
        gpu_busy_s: scoring_per_batch_s * batches as f64,
        accel_busy_s: accel_per_batch_s * batches as f64,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tokens: u64) -> DecodeStats {
        DecodeStats {
            tokens_created: tokens,
            frames: 100,
            ..Default::default()
        }
    }

    #[test]
    fn viterbi_time_scales_with_tokens() {
        let g = GpuModel::default();
        assert!(g.viterbi_seconds(&stats(200_000)) > g.viterbi_seconds(&stats(50_000)));
        // 100k tokens at 1 us/token = 0.1 s.
        assert!((g.viterbi_seconds(&stats(100_000)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn per_flop_efficiency_ordering() {
        // Dense DNN GEMMs use the GPU best; GMM kernels are memory
        // bound; tiny sequential LSTM steps are worst (the EESEN bar in
        // Figure 1).
        let g = GpuModel::default();
        let gmm = AcousticBackend::Gmm {
            num_pdfs: 4_000,
            mixtures: 32,
            feat_dim: 40,
        };
        let dnn = AcousticBackend::Dnn {
            layer_widths: [440, 2048, 2048, 2048, 2048, 8000],
        };
        let lstm = AcousticBackend::Lstm {
            input: 120,
            hidden: 100,
            layers: 4,
        };
        assert!(g.effective_flops_per_s(&dnn) > g.effective_flops_per_s(&gmm));
        assert!(g.effective_flops_per_s(&gmm) > g.effective_flops_per_s(&lstm));
        for b in [gmm, dnn, lstm] {
            assert!(g.scoring_seconds(&b, 100) > 0.0);
        }
    }

    #[test]
    fn hybrid_overlaps_scoring_and_search() {
        let g = GpuModel::default();
        let gmm = AcousticBackend::Gmm {
            num_pdfs: 4_000,
            mixtures: 32,
            feat_dim: 40,
        };
        let st = stats(100_000);
        let gpu_only = g.gpu_only_seconds(&gmm, 100, &st);
        let hybrid = g.hybrid_seconds(&gmm, 100, 0.001);
        assert!(hybrid < gpu_only, "offloading the search must help");
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // 10 batches, 2 ms scoring + 1 ms decode: pipelined makespan is
        // bounded by the slow stage, not the sum.
        let p = batch_pipeline(2e-3, 1e-3, 10);
        let serial = (2e-3 + 1e-3) * 10.0;
        assert!(p.makespan_s < serial, "{} !< {serial}", p.makespan_s);
        // Exactly: first score + 9 more scores (slow stage) + last decode.
        assert!((p.makespan_s - (2e-3 * 10.0 + 1e-3)).abs() < 1e-9);
        assert!(p.gpu_utilization() > 0.9);
        assert!(p.accel_utilization() < 0.6);
    }

    #[test]
    fn pipeline_degenerates_to_serial_for_one_batch() {
        let p = batch_pipeline(3e-3, 2e-3, 1);
        assert!((p.makespan_s - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn utilizations_bounded() {
        for (s, a, n) in [(1e-3, 1e-3, 5), (5e-3, 1e-4, 20), (1e-4, 5e-3, 20)] {
            let p = batch_pipeline(s, a, n);
            assert!(p.gpu_utilization() <= 1.0 + 1e-12);
            assert!(p.accel_utilization() <= 1.0 + 1e-12);
            assert!(p.makespan_s >= p.gpu_busy_s.max(p.accel_busy_s) - 1e-12);
            assert!(p.makespan_s <= p.gpu_busy_s + p.accel_busy_s + 1e-12);
        }
    }

    #[test]
    fn energies_are_time_times_power() {
        let g = GpuModel::default();
        let st = stats(100_000);
        let e = g.viterbi_energy_mj(&st);
        assert!((e - 0.1 * 1.0 * 1e3).abs() < 1e-6);
    }
}
