//! A batch-cost acoustic scorer backed by the Tegra GPU model.
//!
//! [`GpuBatchScorer`] is the serve-side face of [`crate::gpu`]: it
//! wraps any real [`AcousticScorer`] (the passthrough, a GMM frontend)
//! and *accounts* each call against the analytic GPU cost model —
//! per-call launch overhead plus per-frame FLOP time — without
//! changing a single score bit. The pipelined scheduler batches frames
//! across sessions into one `score_batch` call, so the launch overhead
//! amortizes over the batch; the accumulated modeled busy time is what
//! the saturation bench uses to compare lockstep (batch = 1) against
//! pipelined (batch = N) scoring cost per frame.
//!
//! The wrapper keeps the [`AcousticScorer`] purity contract: telemetry
//! lives in atomics, the rows come verbatim from the inner scorer, so
//! decode output stays bit-identical whatever the batching.

use crate::gpu::GpuModel;
use std::sync::atomic::{AtomicU64, Ordering};
use unfold_am::AcousticBackend;
use unfold_decoder::{AcousticScorer, FrameInput, ScoreError};

/// An [`AcousticScorer`] that delegates scoring to an inner scorer and
/// bills every call to a [`GpuModel`] cost account.
#[derive(Debug)]
pub struct GpuBatchScorer<S> {
    inner: S,
    model: GpuModel,
    backend: AcousticBackend,
    /// Modeled per-call (kernel launch + buffer hand-off) overhead.
    launch_overhead_us: f64,
    frames: AtomicU64,
    batches: AtomicU64,
    busy_ns: AtomicU64,
}

impl<S: AcousticScorer> GpuBatchScorer<S> {
    /// Wraps `inner`, billing calls as `backend` scoring under `model`
    /// with `launch_overhead_us` of fixed cost per scorer call.
    pub fn new(
        inner: S,
        model: GpuModel,
        backend: AcousticBackend,
        launch_overhead_us: f64,
    ) -> Self {
        GpuBatchScorer {
            inner,
            model,
            backend,
            launch_overhead_us,
            frames: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    fn bill(&self, frames_in_call: usize) {
        let secs = self.launch_overhead_us / 1e6
            + self.model.scoring_seconds(&self.backend, frames_in_call);
        self.frames
            .fetch_add(frames_in_call as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.busy_ns
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
    }

    /// Frames scored so far.
    pub fn frames_scored(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Scorer calls (batches) so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Accumulated modeled GPU busy time, seconds.
    pub fn modeled_busy_seconds(&self) -> f64 {
        self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Modeled mean cost per frame so far, microseconds (NaN before the
    /// first frame).
    pub fn modeled_us_per_frame(&self) -> f64 {
        self.modeled_busy_seconds() * 1e6 / self.frames_scored() as f64
    }
}

/// Modeled scoring cost per frame, microseconds, when frames arrive in
/// batches of `batch`: the analytic amortization curve the saturation
/// bench reports next to the measured knee. Strictly decreasing in
/// `batch` whenever the launch overhead is non-zero.
///
/// # Panics
/// Panics if `batch == 0`.
pub fn modeled_us_per_frame(
    model: &GpuModel,
    backend: &AcousticBackend,
    launch_overhead_us: f64,
    batch: usize,
) -> f64 {
    assert!(batch > 0, "modeled_us_per_frame: zero batch");
    (launch_overhead_us + model.scoring_seconds(backend, batch) * 1e6) / batch as f64
}

impl<S: AcousticScorer> AcousticScorer for GpuBatchScorer<S> {
    fn num_pdfs(&self) -> usize {
        self.inner.num_pdfs()
    }

    fn score_into(&self, frame: &FrameInput, out: &mut Vec<f32>) -> Result<(), ScoreError> {
        self.inner.score_into(frame, out)?;
        self.bill(1);
        Ok(())
    }

    fn score_batch(&self, frames: &[FrameInput]) -> Result<Vec<Vec<f32>>, ScoreError> {
        let rows = self.inner.score_batch(frames)?;
        if !frames.is_empty() {
            self.bill(frames.len());
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_decoder::PrecomputedScorer;

    fn backend() -> AcousticBackend {
        AcousticBackend::Gmm {
            num_pdfs: 400,
            mixtures: 8,
            feat_dim: 40,
        }
    }

    #[test]
    fn rows_pass_through_bit_identically() {
        let s = GpuBatchScorer::new(
            PrecomputedScorer::new(2),
            GpuModel::default(),
            backend(),
            25.0,
        );
        let frames = vec![
            FrameInput::Scores(vec![1.0, 2.0]),
            FrameInput::Scores(vec![3.0, 4.0]),
        ];
        assert_eq!(
            s.score_batch(&frames).unwrap(),
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        );
        assert_eq!(s.num_pdfs(), 2);
        let mut out = Vec::new();
        s.score_into(&frames[0], &mut out).unwrap();
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn batching_amortizes_the_launch_overhead() {
        let model = GpuModel::default();
        let b = backend();
        // One 16-frame batch must bill less than 16 single-frame calls.
        let batched = GpuBatchScorer::new(PrecomputedScorer::new(1), model, b, 25.0);
        let frames: Vec<FrameInput> = (0..16).map(|_| FrameInput::Scores(vec![0.0])).collect();
        batched.score_batch(&frames).unwrap();
        let single = GpuBatchScorer::new(PrecomputedScorer::new(1), model, b, 25.0);
        let mut out = Vec::new();
        for f in &frames {
            single.score_into(f, &mut out).unwrap();
        }
        assert_eq!(batched.frames_scored(), 16);
        assert_eq!(batched.batches(), 1);
        assert_eq!(single.batches(), 16);
        assert!(batched.modeled_busy_seconds() < single.modeled_busy_seconds());
        // And the analytic curve agrees on the direction.
        assert!(
            modeled_us_per_frame(&model, &b, 25.0, 16) < modeled_us_per_frame(&model, &b, 25.0, 1)
        );
    }

    #[test]
    fn failed_batches_are_not_billed() {
        let s = GpuBatchScorer::new(
            PrecomputedScorer::new(2),
            GpuModel::default(),
            backend(),
            25.0,
        );
        let bad = vec![FrameInput::Features(vec![0.0])];
        assert!(s.score_batch(&bad).is_err());
        assert_eq!(s.frames_scored(), 0);
        assert_eq!(s.batches(), 0);
    }
}
