//! The accelerator pipeline model.
//!
//! [`Accelerator`] implements [`unfold_decoder::TraceSink`]: the decoder
//! drives it online, event by event, and it models the paper's pipeline
//! (Figure 4) at event granularity:
//!
//! * one arc evaluation per cycle when everything hits (the pipeline's
//!   steady state),
//! * binary-search LM probes are *dependent* accesses — each probe waits
//!   for the previous one, which is why the paper's linear→binary→OLT
//!   ladder matters so much,
//! * independent cache misses overlap through the 32-entry memory
//!   controller (modeled as an amortization factor), while LM-probe
//!   misses stall their walk fully,
//! * an Offset Lookup Table hit replaces the whole binary search with a
//!   single LM-cache access (§3.1).
//!
//! The model is cycle-approximate, not RTL-exact; DESIGN.md documents
//! why that is sufficient for the paper's comparisons (all results are
//! ratios between two configurations simulated under the same model).

use unfold_decoder::{sources::addr, TraceSink};
use unfold_wfst::{Label, StateId};

use crate::cache::{Cache, CacheStats};
use crate::dram::DramModel;
use crate::hashtable::TokenHashTable;
use crate::olt::{OffsetLookupTable, OltStats};
use crate::report::{AcceleratorConfig, ComponentEnergy, SimReport, TrafficBreakdown};

/// Cycles per pipelined event (cache hit path).
const EVENT_CYCLES: u64 = 1;
/// Extra cycles per dependent LM probe (address generation + compare).
const LM_PROBE_CYCLES: u64 = 2;
/// Frame startup overhead (hash flip, threshold broadcast).
const FRAME_OVERHEAD_CYCLES: u64 = 12;

/// Per-frame cache behaviour: the hit rate each on-chip structure
/// achieved *within one frame* (deltas between frame boundaries, not
/// cumulative averages — a cumulative rate hides the cold-start ramp and
/// per-utterance working-set shifts that frame-granular telemetry is
/// for). A structure untouched during the frame reports `1.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameCacheSnapshot {
    /// Frame index the snapshot covers.
    pub frame: usize,
    /// State cache hit rate.
    pub state: f64,
    /// AM arc cache hit rate.
    pub am_arc: f64,
    /// LM arc cache hit rate (1.0 when the config has no LM cache).
    pub lm_arc: f64,
    /// Token cache hit rate.
    pub token: f64,
    /// Offset Lookup Table hit rate (1.0 when the config has no OLT).
    pub olt: f64,
}

/// Cumulative counters captured at a frame boundary, used to form the
/// per-frame deltas in [`FrameCacheSnapshot`].
#[derive(Debug, Clone, Copy, Default)]
struct CacheMarks {
    state: CacheStats,
    am_arc: CacheStats,
    lm_arc: CacheStats,
    token: CacheStats,
    olt: OltStats,
}

/// Hit rate of the accesses between two cumulative marks.
fn delta_hit_rate(before: CacheStats, after: CacheStats) -> f64 {
    let accesses = after.accesses - before.accesses;
    if accesses == 0 {
        1.0
    } else {
        1.0 - (after.misses - before.misses) as f64 / accesses as f64
    }
}

/// Event-driven accelerator model; feed it decoder traces, then call
/// [`Accelerator::finish`].
pub struct Accelerator {
    config: AcceleratorConfig,
    state_cache: Cache,
    am_arc_cache: Cache,
    lm_arc_cache: Option<Cache>,
    token_cache: Cache,
    olt: Option<OffsetLookupTable>,
    hash: TokenHashTable,
    dram: DramModel,
    cycles: u64,
    energy: ComponentEnergy,
    /// Pending LM arc fetches of the in-progress lookup.
    pending_lm: Vec<(u64, u32)>,
    /// Whether the in-progress lookup hit in the OLT.
    cur_olt_hit: bool,
    /// FP operations performed (likelihood evaluation).
    flops: u64,
    traffic: TrafficBreakdown,
    /// LM arc fetches actually charged (after OLT hits skip probes).
    lm_fetches_charged: u64,
    /// Counter values at the last frame boundary.
    marks: CacheMarks,
    /// Frame index the open interval belongs to, if a frame is open.
    open_frame: Option<usize>,
    /// Completed per-frame snapshots.
    frame_snaps: Vec<FrameCacheSnapshot>,
}

impl std::fmt::Debug for Accelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Accelerator")
            .field("config", &self.config.name)
            .field("cycles", &self.cycles)
            .finish_non_exhaustive()
    }
}

impl Accelerator {
    /// Builds a cold accelerator.
    pub fn new(config: AcceleratorConfig) -> Self {
        Accelerator {
            state_cache: Cache::new(config.state_cache),
            am_arc_cache: Cache::new(config.am_arc_cache),
            lm_arc_cache: config.lm_arc_cache.map(Cache::new),
            token_cache: Cache::new(config.token_cache),
            olt: config.offset_table_entries.map(OffsetLookupTable::new),
            hash: TokenHashTable::new(config.hash_entries, config.hash_entry_bytes),
            dram: DramModel::lpddr4(config.frequency_mhz),
            cycles: 0,
            energy: ComponentEnergy::default(),
            pending_lm: Vec::new(),
            cur_olt_hit: false,
            flops: 0,
            traffic: TrafficBreakdown::default(),
            lm_fetches_charged: 0,
            marks: CacheMarks::default(),
            open_frame: None,
            frame_snaps: Vec::new(),
            config,
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-frame cache hit-rate snapshots collected so far. One entry
    /// per completed frame (the frame in progress is closed by the next
    /// `frame_start` or by [`Accelerator::finish`]).
    pub fn frame_snapshots(&self) -> &[FrameCacheSnapshot] {
        &self.frame_snaps
    }

    /// Current cumulative counters of every on-chip structure.
    fn current_marks(&self) -> CacheMarks {
        CacheMarks {
            state: self.state_cache.stats(),
            am_arc: self.am_arc_cache.stats(),
            lm_arc: self
                .lm_arc_cache
                .as_ref()
                .map(|c| c.stats())
                .unwrap_or_default(),
            token: self.token_cache.stats(),
            olt: self.olt.as_ref().map(|t| t.stats()).unwrap_or_default(),
        }
    }

    /// Closes the open frame interval, if any: turns the counter deltas
    /// since the last boundary into a [`FrameCacheSnapshot`].
    fn close_frame(&mut self) {
        let Some(frame) = self.open_frame.take() else {
            return;
        };
        let now = self.current_marks();
        let olt_probes = now.olt.probes - self.marks.olt.probes;
        self.frame_snaps.push(FrameCacheSnapshot {
            frame,
            state: delta_hit_rate(self.marks.state, now.state),
            am_arc: delta_hit_rate(self.marks.am_arc, now.am_arc),
            lm_arc: delta_hit_rate(self.marks.lm_arc, now.lm_arc),
            token: delta_hit_rate(self.marks.token, now.token),
            olt: if olt_probes == 0 {
                1.0
            } else {
                (now.olt.hits - self.marks.olt.hits) as f64 / olt_probes as f64
            },
        });
        self.marks = now;
    }

    /// Amortized stall for an overlappable miss (independent accesses
    /// share the memory controller's in-flight slots).
    fn overlapped_stall(&self) -> u64 {
        let mlp = u64::from(self.config.max_inflight / 4).max(1);
        (self.dram.latency_cycles / mlp).max(1)
    }

    fn sram_pj(&self, capacity: u64) -> f64 {
        self.config.energy.sram_access_pj(capacity)
    }

    /// Finishes the in-progress LM lookup: charges its arc fetches.
    fn flush_lm(&mut self) {
        if self.pending_lm.is_empty() {
            return;
        }
        let fetches: Vec<(u64, u32)> = if self.cur_olt_hit {
            // OLT hit: the offset is known; fetch only the final arc.
            vec![*self.pending_lm.last().expect("non-empty pending")]
        } else {
            std::mem::take(&mut self.pending_lm)
        };
        self.pending_lm.clear();
        let cap = self
            .config
            .lm_arc_cache
            .map(|c| c.capacity_bytes)
            .unwrap_or(self.config.am_arc_cache.capacity_bytes);
        self.lm_fetches_charged += fetches.len() as u64;
        for (a, b) in fetches {
            let misses = match self.lm_arc_cache.as_mut() {
                Some(c) => c.access(a, b),
                None => self.am_arc_cache.access(a, b),
            };
            self.energy.lm_arc_cache += self.sram_pj(cap) / 1e9;
            self.cycles += LM_PROBE_CYCLES;
            for _ in 0..misses {
                self.dram.read();
                self.traffic.lm_arc_bursts += 1;
                // Dependent access: the walk stalls for the full latency.
                self.cycles += self.dram.latency_cycles;
            }
            self.flops += 1;
        }
    }

    /// Produces the report for everything simulated so far, attributing
    /// `audio_seconds` of decoded speech.
    ///
    /// # Panics
    /// Panics if `audio_seconds` is not positive.
    pub fn finish(&mut self, audio_seconds: f64) -> SimReport {
        assert!(audio_seconds > 0.0, "finish: non-positive audio time");
        self.flush_lm();
        self.close_frame();
        let seconds = self.cycles as f64 / (self.config.frequency_mhz as f64 * 1e6);

        let mut energy = self.energy;
        energy.dram = self.dram.dynamic_energy_mj();
        energy.pipeline += self.flops as f64 * self.config.energy.flop_pj / 1e9;

        // Static energy: SRAM + logic leakage + DRAM background, over
        // the decode wall-clock time.
        let leak_mw = self.config.energy.sram_leak_mw(self.config.sram_bytes())
            + self.config.energy.logic_leak_mw
            + self.dram.background_mw;
        energy.static_energy = leak_mw * seconds; // mW * s = mJ

        SimReport {
            config_name: self.config.name,
            cycles: self.cycles,
            seconds,
            audio_seconds,
            energy,
            dram: self.dram.stats(),
            traffic: self.traffic,
            state_cache: self.state_cache.stats(),
            am_arc_cache: self.am_arc_cache.stats(),
            lm_arc_cache: self
                .lm_arc_cache
                .as_ref()
                .map(|c| c.stats())
                .unwrap_or_default(),
            token_cache: self.token_cache.stats(),
            olt: self.olt.as_ref().map(|t| t.stats()).unwrap_or_default(),
            lm_fetches_charged: self.lm_fetches_charged,
            hash: self.hash.stats(),
            area_mm2: self.config.area_mm2(),
        }
    }
}

impl TraceSink for Accelerator {
    fn frame_start(&mut self, frame: usize, _active: usize) {
        self.flush_lm();
        self.close_frame();
        // Re-mark so pre-frame work (the utterance-initial epsilon
        // closure) never leaks into frame 0's delta.
        self.marks = self.current_marks();
        self.open_frame = Some(frame);
        self.hash.frame_flip();
        self.cycles += FRAME_OVERHEAD_CYCLES;
    }

    fn state_fetch(&mut self, a: u64) {
        let cap = self.config.state_cache.capacity_bytes;
        let misses = self.state_cache.access(a, addr::STATE_RECORD_BYTES as u32);
        self.energy.state_cache += self.sram_pj(cap) / 1e9;
        self.cycles += EVENT_CYCLES;
        for _ in 0..misses {
            self.dram.read();
            self.traffic.state_bursts += 1;
            self.cycles += self.overlapped_stall();
        }
    }

    fn am_arc_fetch(&mut self, a: u64, bytes: u32) {
        let cap = self.config.am_arc_cache.capacity_bytes;
        let misses = self.am_arc_cache.access(a, bytes);
        self.energy.am_arc_cache += self.sram_pj(cap) / 1e9;
        self.cycles += EVENT_CYCLES;
        self.flops += 2; // weight accumulate + beam compare
        for _ in 0..misses {
            self.dram.read();
            self.traffic.am_arc_bursts += 1;
            self.cycles += self.overlapped_stall();
        }
    }

    fn lm_lookup(&mut self, state: StateId, word: Label) {
        self.flush_lm();
        self.cur_olt_hit = match self.olt.as_mut() {
            Some(t) => {
                let cap = t.size_bytes();
                let hit = t.probe(state, word);
                self.energy.offset_table += self.sram_pj(cap) / 1e9;
                self.cycles += EVENT_CYCLES;
                hit
            }
            None => false,
        };
    }

    fn lm_arc_fetch(&mut self, a: u64, bytes: u32) {
        self.pending_lm.push((a, bytes));
    }

    fn lm_resolved(&mut self, state: StateId, word: Label, _backoff_hops: u32) {
        let hit = self.cur_olt_hit;
        self.flush_lm();
        if !hit {
            if let Some(t) = self.olt.as_mut() {
                t.insert(state, word);
            }
        }
        self.cur_olt_hit = false;
    }

    fn acoustic_fetch(&mut self, _frame: usize, _pdf: Label) {
        // On-chip buffer, overlapped with the arc pipeline: energy only.
        self.energy.acoustic_buffer += self.sram_pj(self.config.acoustic_buffer_bytes) / 1e9;
        self.flops += 1;
    }

    fn hash_insert(&mut self, key: u64) {
        let hash_bytes = self.config.hash_entries as u64 * self.config.hash_entry_bytes;
        let spills = self.hash.insert(key);
        self.energy.hash += self.sram_pj(hash_bytes) / 1e9;
        self.cycles += EVENT_CYCLES;
        self.flops += 2; // likelihood compare + update
        for _ in 0..spills {
            self.dram.write();
            self.traffic.hash_bursts += 1;
            self.cycles += self.overlapped_stall();
        }
    }

    fn token_store(&mut self, a: u64, bytes: u32) {
        let cap = self.config.token_cache.capacity_bytes;
        let misses = self.token_cache.access(a, bytes);
        self.energy.token_cache += self.sram_pj(cap) / 1e9;
        self.cycles += EVENT_CYCLES;
        for _ in 0..misses {
            self.dram.write();
            self.traffic.token_bursts += 1;
            self.cycles += self.overlapped_stall();
        }
    }

    fn preemptive_prune(&mut self) {
        // The abandoned walk's fetches up to this point are already
        // pending; they will be charged at the next boundary. The prune
        // itself is one comparator operation.
        self.flops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_accelerator_reports_zero_traffic() {
        let mut a = Accelerator::new(AcceleratorConfig::unfold());
        a.frame_start(0, 0);
        let r = a.finish(1.0);
        assert_eq!(r.dram.read_bursts, 0);
        assert!(r.cycles >= FRAME_OVERHEAD_CYCLES);
        assert!(r.total_energy_mj() > 0.0, "static energy must be accounted");
    }

    #[test]
    fn frame_snapshots_report_per_frame_deltas() {
        let mut a = Accelerator::new(AcceleratorConfig::unfold());
        // Frame 0: two cold AM arc fetches on distinct lines → 0% hit.
        a.frame_start(0, 1);
        a.am_arc_fetch(addr::AM_ARC_BASE, 16);
        a.am_arc_fetch(addr::AM_ARC_BASE + 256, 16);
        // Frame 1: the same two lines again → 100% hit, even though the
        // cumulative rate is only 50%.
        a.frame_start(1, 1);
        a.am_arc_fetch(addr::AM_ARC_BASE, 16);
        a.am_arc_fetch(addr::AM_ARC_BASE + 256, 16);
        let r = a.finish(1.0);
        let snaps = a.frame_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].frame, 0);
        assert_eq!(snaps[0].am_arc, 0.0);
        assert_eq!(snaps[1].frame, 1);
        assert_eq!(snaps[1].am_arc, 1.0);
        // Untouched structures report 1.0, not 0/0 noise.
        assert_eq!(snaps[0].state, 1.0);
        assert_eq!(snaps[0].olt, 1.0);
        // The cumulative report still shows the blended 50%.
        assert!((r.am_arc_cache.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pre_frame_work_does_not_leak_into_frame_zero() {
        let mut a = Accelerator::new(AcceleratorConfig::unfold());
        // Utterance-initial closure: cold fetches before any frame.
        a.am_arc_fetch(addr::AM_ARC_BASE, 16);
        a.frame_start(0, 1);
        // Warm re-fetch inside frame 0.
        a.am_arc_fetch(addr::AM_ARC_BASE, 16);
        let _ = a.finish(1.0);
        let snaps = a.frame_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(
            snaps[0].am_arc, 1.0,
            "the pre-frame cold miss is not frame 0's"
        );
    }

    #[test]
    fn cold_misses_generate_dram_reads() {
        let mut a = Accelerator::new(AcceleratorConfig::unfold());
        for i in 0..100u64 {
            a.am_arc_fetch(addr::AM_ARC_BASE + i * 256, 16);
        }
        let r = a.finish(1.0);
        assert_eq!(
            r.dram.read_bursts, 100,
            "every distinct line is a cold miss"
        );
        assert!(r.am_arc_cache.misses == 100);
    }

    #[test]
    fn olt_hit_skips_probe_fetches() {
        let run = |with_hit: bool| {
            let mut a = Accelerator::new(AcceleratorConfig::unfold());
            if with_hit {
                // Warm the OLT with a prior resolved lookup.
                a.lm_lookup(3, 7);
                for i in 0..6u64 {
                    a.lm_arc_fetch(addr::LM_ARC_BASE + i * 640, 6);
                }
                a.lm_resolved(3, 7, 0);
            }
            let cycles0 = a.cycles();
            a.lm_lookup(3, 7);
            for i in 0..6u64 {
                a.lm_arc_fetch(addr::LM_ARC_BASE + i * 640, 6);
            }
            a.lm_resolved(3, 7, 0);
            a.cycles() - cycles0
        };
        let cold = run(false);
        let warm = run(true);
        assert!(warm < cold, "OLT hit must be cheaper: {warm} vs {cold}");
    }

    #[test]
    fn lm_probe_misses_stall_fully() {
        // Two accelerators: one gets sequential (cache-friendly) LM
        // fetches, the other scattered ones. The scattered walk must be
        // much slower because LM misses pay the whole DRAM latency.
        let mut seq = Accelerator::new(AcceleratorConfig::unfold());
        let mut scat = Accelerator::new(AcceleratorConfig::unfold());
        for i in 0..50u64 {
            seq.lm_lookup(1, i as u32 + 1);
            seq.lm_arc_fetch(addr::LM_ARC_BASE + (i / 8) * 64, 6);
            seq.lm_resolved(1, i as u32 + 1, 0);
            scat.lm_lookup(1, i as u32 + 1);
            scat.lm_arc_fetch(addr::LM_ARC_BASE + i * 4096, 6);
            scat.lm_resolved(1, i as u32 + 1, 0);
        }
        assert!(scat.cycles() > seq.cycles() * 3);
    }

    #[test]
    fn token_writes_are_dram_writes_on_miss() {
        let mut a = Accelerator::new(AcceleratorConfig::unfold());
        // Sequential lattice writes: one miss per 64-byte line.
        for i in 0..64u64 {
            a.token_store(addr::TOKEN_BASE + i * 8, 8);
        }
        let r = a.finish(1.0);
        assert_eq!(r.dram.write_bursts, 8);
        let tc = r.token_cache;
        assert!(tc.miss_ratio() > 0.1 && tc.miss_ratio() < 0.2);
    }

    #[test]
    fn hash_overflow_spills_to_memory() {
        let mut cfg = AcceleratorConfig::unfold();
        cfg.hash_entries = 4;
        let mut a = Accelerator::new(cfg);
        for k in 0..10u64 {
            a.hash_insert(k);
        }
        let r = a.finish(1.0);
        assert_eq!(r.hash.overflows, 6);
        assert_eq!(r.dram.write_bursts, 6);
    }

    #[test]
    fn baseline_has_no_olt_or_lm_cache() {
        let mut a = Accelerator::new(AcceleratorConfig::reza());
        a.lm_lookup(1, 2);
        a.lm_arc_fetch(addr::LM_ARC_BASE, 16);
        a.lm_resolved(1, 2, 0);
        let r = a.finish(1.0);
        assert_eq!(r.olt.probes, 0);
        // LM fetches fall through to the (shared) arc cache.
        assert!(r.am_arc_cache.accesses > 0);
        assert_eq!(r.lm_arc_cache.accesses, 0);
    }
}
