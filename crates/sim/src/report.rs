//! Accelerator configurations (paper Table 3) and simulation reports.

use crate::cache::{CacheConfig, CacheStats};
use crate::dram::DramStats;
use crate::energy::EnergyModel;
use crate::hashtable::HashStats;
use crate::olt::OltStats;

/// Full accelerator configuration — the knobs of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Clock frequency in MHz.
    pub frequency_mhz: u64,
    /// State cache (shared by AM and LM state records).
    pub state_cache: CacheConfig,
    /// AM arc cache (the only arc cache in the baseline).
    pub am_arc_cache: CacheConfig,
    /// Dedicated LM arc cache (UNFOLD only).
    pub lm_arc_cache: Option<CacheConfig>,
    /// Token (word-lattice) cache.
    pub token_cache: CacheConfig,
    /// Acoustic Likelihood Buffer size in bytes.
    pub acoustic_buffer_bytes: u64,
    /// Token hash table slots (current + next frame tables).
    pub hash_entries: usize,
    /// Bytes per hash entry (compressed attributes are smaller in
    /// UNFOLD: 576 KB / 32 K = 18 B vs 768 KB / 32 K = 24 B).
    pub hash_entry_bytes: u64,
    /// Offset Lookup Table slots (UNFOLD only).
    pub offset_table_entries: Option<usize>,
    /// Memory controller in-flight request capacity.
    pub max_inflight: u32,
    /// Energy/area model constants.
    pub energy: EnergyModel,
}

impl AcceleratorConfig {
    /// UNFOLD's configuration (Table 3, left column).
    pub fn unfold() -> Self {
        AcceleratorConfig {
            name: "UNFOLD",
            frequency_mhz: 800,
            state_cache: CacheConfig::kib(256, 4, 64),
            am_arc_cache: CacheConfig::kib(512, 8, 64),
            lm_arc_cache: Some(CacheConfig::kib(32, 4, 64)),
            token_cache: CacheConfig::kib(128, 2, 64),
            acoustic_buffer_bytes: 64 * 1024,
            hash_entries: 32 * 1024,
            hash_entry_bytes: 18,
            offset_table_entries: Some(32 * 1024),
            max_inflight: 32,
            energy: EnergyModel::default(),
        }
    }

    /// The Reza et al. fully-composed baseline (Table 3, right column).
    pub fn reza() -> Self {
        AcceleratorConfig {
            name: "Reza et al.",
            frequency_mhz: 600,
            state_cache: CacheConfig::kib(512, 4, 64),
            am_arc_cache: CacheConfig::kib(1024, 4, 64),
            lm_arc_cache: None,
            token_cache: CacheConfig::kib(512, 2, 64),
            acoustic_buffer_bytes: 64 * 1024,
            hash_entries: 32 * 1024,
            hash_entry_bytes: 24,
            offset_table_entries: None,
            max_inflight: 32,
            energy: EnergyModel::default(),
        }
    }

    /// A capacity-scaled variant for the *scaled-machine* methodology:
    /// the reproduction's datasets are ~`factor`x smaller than the
    /// paper's (full-size models do not fit a CI machine), so cache and
    /// table capacities are divided by `factor` to recreate the paper's
    /// dataset-to-cache ratios — the quantity the miss ratios, DRAM
    /// traffic, and energy comparisons actually depend on. Clock, line
    /// size, associativity, and the energy model are left untouched.
    ///
    /// # Panics
    /// Panics if `factor` is 0 or shrinks a cache below one set.
    pub fn scaled_datasets(mut self, factor: u64) -> Self {
        assert!(factor > 0, "scaled_datasets: zero factor");
        let shrink = |c: crate::cache::CacheConfig| {
            let min = c.ways as u64 * c.line_bytes;
            let cap = (c.capacity_bytes / factor).max(min);
            // Round down to a power-of-two multiple of ways*line so the
            // set count stays integral.
            let raw = cap / min;
            let sets = if raw.is_power_of_two() {
                raw
            } else {
                raw.next_power_of_two() / 2
            };
            let sets = sets.max(1);
            crate::cache::CacheConfig {
                capacity_bytes: sets * min,
                ways: c.ways,
                line_bytes: c.line_bytes,
            }
        };
        self.state_cache = shrink(self.state_cache);
        self.am_arc_cache = shrink(self.am_arc_cache);
        self.lm_arc_cache = self.lm_arc_cache.map(shrink);
        self.token_cache = shrink(self.token_cache);
        self.hash_entries = (self.hash_entries / factor as usize).max(1024);
        self.offset_table_entries = self
            .offset_table_entries
            .map(|e| ((e / factor as usize).max(64)).next_power_of_two());
        self
    }

    /// Total on-chip SRAM in bytes.
    pub fn sram_bytes(&self) -> u64 {
        self.state_cache.capacity_bytes
            + self.am_arc_cache.capacity_bytes
            + self.lm_arc_cache.map_or(0, |c| c.capacity_bytes)
            + self.token_cache.capacity_bytes
            + self.acoustic_buffer_bytes
            + self.hash_entries as u64 * self.hash_entry_bytes
            + self
                .offset_table_entries
                .map_or(0, |e| e as u64 * crate::olt::OLT_ENTRY_BYTES)
    }

    /// Die area estimate in mm² (SRAM + pipeline logic).
    pub fn area_mm2(&self) -> f64 {
        self.energy.sram_mm2(self.sram_bytes()) + self.energy.logic_mm2
    }
}

/// DRAM bursts broken down by what was being fetched (Figure 11 splits
/// bandwidth into states / arcs / tokens).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// State-record fill bursts.
    pub state_bursts: u64,
    /// AM (or composed-graph) arc fill bursts.
    pub am_arc_bursts: u64,
    /// LM arc fill bursts.
    pub lm_arc_bursts: u64,
    /// Token / word-lattice write bursts.
    pub token_bursts: u64,
    /// Hash overflow write bursts.
    pub hash_bursts: u64,
}

impl TrafficBreakdown {
    /// All arc bursts (AM + LM).
    pub fn arc_bursts(&self) -> u64 {
        self.am_arc_bursts + self.lm_arc_bursts
    }
}

/// Per-component dynamic energy in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentEnergy {
    /// State cache.
    pub state_cache: f64,
    /// AM (or composed-graph) arc cache.
    pub am_arc_cache: f64,
    /// LM arc cache.
    pub lm_arc_cache: f64,
    /// Token cache.
    pub token_cache: f64,
    /// Token hash tables.
    pub hash: f64,
    /// Offset Lookup Table.
    pub offset_table: f64,
    /// Acoustic Likelihood Buffer.
    pub acoustic_buffer: f64,
    /// Pipeline logic + floating-point units.
    pub pipeline: f64,
    /// DRAM dynamic (bursts).
    pub dram: f64,
    /// All static/leakage energy (SRAM + logic + DRAM background).
    pub static_energy: f64,
}

impl ComponentEnergy {
    /// Total energy in millijoules.
    pub fn total(&self) -> f64 {
        self.state_cache
            + self.am_arc_cache
            + self.lm_arc_cache
            + self.token_cache
            + self.hash
            + self.offset_table
            + self.acoustic_buffer
            + self.pipeline
            + self.dram
            + self.static_energy
    }
}

/// Outcome of simulating one or more decodes on an accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Configuration name.
    pub config_name: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Wall-clock decode time in seconds.
    pub seconds: f64,
    /// Audio seconds decoded.
    pub audio_seconds: f64,
    /// Energy breakdown (mJ).
    pub energy: ComponentEnergy,
    /// DRAM traffic counters.
    pub dram: DramStats,
    /// DRAM traffic split by source (states / arcs / tokens).
    pub traffic: TrafficBreakdown,
    /// State cache counters.
    pub state_cache: CacheStats,
    /// AM arc cache counters.
    pub am_arc_cache: CacheStats,
    /// LM arc cache counters (zero when absent).
    pub lm_arc_cache: CacheStats,
    /// Token cache counters.
    pub token_cache: CacheStats,
    /// OLT counters (zero when absent).
    pub olt: OltStats,
    /// LM arc fetches charged by the pipeline (OLT hits collapse a
    /// whole binary search into one fetch, so this is the lookup
    /// hardware's real workload).
    pub lm_fetches_charged: u64,
    /// Hash table counters.
    pub hash: HashStats,
    /// Die area estimate in mm².
    pub area_mm2: f64,
}

impl SimReport {
    /// Real-time factor: how many times faster than real time.
    ///
    /// # Panics
    /// Panics if no time elapsed.
    pub fn times_real_time(&self) -> f64 {
        assert!(self.seconds > 0.0, "times_real_time: no simulated time");
        self.audio_seconds / self.seconds
    }

    /// Total energy (mJ).
    pub fn total_energy_mj(&self) -> f64 {
        self.energy.total()
    }

    /// Energy per second of speech (mJ/s) — Figure 9's metric.
    pub fn energy_mj_per_audio_second(&self) -> f64 {
        assert!(self.audio_seconds > 0.0, "no audio decoded");
        self.energy.total() / self.audio_seconds
    }

    /// Mean DRAM bandwidth during decode, MB/s — Figure 11's metric.
    pub fn bandwidth_mb_per_s(&self) -> f64 {
        assert!(self.seconds > 0.0, "no simulated time");
        self.dram.total_bytes() as f64 / 1e6 / self.seconds
    }

    /// Average power during decode, mW (mJ over seconds is mW directly).
    pub fn avg_power_mw(&self) -> f64 {
        assert!(self.seconds > 0.0, "no simulated time");
        self.energy.total() / self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sram_totals() {
        // UNFOLD: 256+512+32+128 caches + 64 buffer + 576 hash + 192 OLT.
        let u = AcceleratorConfig::unfold();
        assert_eq!(
            u.sram_bytes(),
            (256 + 512 + 32 + 128 + 64 + 576 + 192) * 1024
        );
        // Reza: 512+1024+512 caches + 64 buffer + 768 hash, no OLT.
        let r = AcceleratorConfig::reza();
        assert_eq!(r.sram_bytes(), (512 + 1024 + 512 + 64 + 768) * 1024);
        assert!(r.sram_bytes() > u.sram_bytes());
    }

    #[test]
    fn area_reduction_matches_paper_direction() {
        let u = AcceleratorConfig::unfold().area_mm2();
        let r = AcceleratorConfig::reza().area_mm2();
        assert!(u < r, "UNFOLD must be smaller: {u} vs {r}");
    }

    #[test]
    fn frequencies_match_table3() {
        assert_eq!(AcceleratorConfig::unfold().frequency_mhz, 800);
        assert_eq!(AcceleratorConfig::reza().frequency_mhz, 600);
    }

    #[test]
    fn scaled_datasets_shrinks_capacities_proportionally() {
        let base = AcceleratorConfig::unfold();
        let scaled = base.scaled_datasets(32);
        assert_eq!(
            scaled.state_cache.capacity_bytes,
            base.state_cache.capacity_bytes / 32
        );
        assert_eq!(
            scaled.am_arc_cache.capacity_bytes,
            base.am_arc_cache.capacity_bytes / 32
        );
        // Geometry stays valid: sets remain integral powers of two.
        assert!(scaled.state_cache.num_sets().is_power_of_two());
        assert!(scaled.am_arc_cache.num_sets() >= 1);
        // Clock and energy model untouched.
        assert_eq!(scaled.frequency_mhz, base.frequency_mhz);
        assert_eq!(scaled.energy, base.energy);
    }

    #[test]
    fn scaled_datasets_never_drops_below_one_set() {
        let tiny = AcceleratorConfig::unfold().scaled_datasets(1_000_000);
        assert!(tiny.state_cache.num_sets() >= 1);
        assert!(tiny.lm_arc_cache.unwrap().num_sets() >= 1);
        assert!(tiny.hash_entries >= 1024);
        assert!(tiny.offset_table_entries.unwrap().is_power_of_two());
    }

    #[test]
    fn scale_factor_one_is_identity_for_pow2_configs() {
        let base = AcceleratorConfig::unfold();
        let same = base.scaled_datasets(1);
        assert_eq!(same.state_cache, base.state_cache);
        assert_eq!(same.am_arc_cache, base.am_arc_cache);
        assert_eq!(same.token_cache, base.token_cache);
        assert_eq!(same.hash_entries, base.hash_entries);
    }

    #[test]
    fn avg_power_is_energy_over_time() {
        let energy = ComponentEnergy {
            pipeline: 12.5, // mJ
            ..Default::default()
        };
        let r = SimReport {
            config_name: "test",
            cycles: 1,
            seconds: 2.5,
            audio_seconds: 1.0,
            energy,
            dram: DramStats::default(),
            traffic: TrafficBreakdown::default(),
            state_cache: CacheStats::default(),
            am_arc_cache: CacheStats::default(),
            lm_arc_cache: CacheStats::default(),
            token_cache: CacheStats::default(),
            olt: OltStats::default(),
            lm_fetches_charged: 0,
            hash: HashStats::default(),
            area_mm2: 0.0,
        };
        // mJ / s = mW, with no hidden unit shuffling.
        assert_eq!(r.avg_power_mw(), r.total_energy_mj() / r.seconds);
        assert_eq!(r.avg_power_mw(), 5.0);
    }

    #[test]
    fn component_energy_total_sums_fields() {
        let e = ComponentEnergy {
            state_cache: 1.0,
            am_arc_cache: 2.0,
            lm_arc_cache: 3.0,
            token_cache: 4.0,
            hash: 5.0,
            offset_table: 6.0,
            acoustic_buffer: 7.0,
            pipeline: 8.0,
            dram: 9.0,
            static_energy: 10.0,
        };
        assert_eq!(e.total(), 55.0);
    }
}
