//! Offset Lookup Table (paper §3.1, Figure 7).
//!
//! A direct-mapped, on-chip table memoizing recent `(LM state, word id)`
//! → arc-offset results so that repeated LM lookups skip the binary
//! search entirely: "it is indexed using the XOR of the LM state index
//! and the word ID. Each entry contains a valid bit, a 24-bit tag and
//! the 23-bit offset for the arc." The paper picks 32K entries (192 KB).

use unfold_wfst::{Label, StateId};

/// Hit/probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OltStats {
    /// Probes issued.
    pub probes: u64,
    /// Probes that hit.
    pub hits: u64,
    /// Entries installed (on miss-then-resolve).
    pub inserts: u64,
}

impl OltStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        1.0 - self.hit_ratio()
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    tag: u32,
}

/// Direct-mapped memo table for LM arc offsets.
#[derive(Debug, Clone)]
pub struct OffsetLookupTable {
    entries: Vec<Entry>,
    mask: u64,
    stats: OltStats,
}

/// Bytes per entry: valid bit + 24-bit tag + 23-bit offset = 48 bits,
/// i.e. 6 bytes (the paper's 32K × 6 B = 192 KB).
pub const OLT_ENTRY_BYTES: u64 = 6;

impl OffsetLookupTable {
    /// Builds a table with `entries` slots.
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "new: entries must be a power of two"
        );
        OffsetLookupTable {
            entries: vec![
                Entry {
                    valid: false,
                    tag: 0
                };
                entries
            ],
            mask: entries as u64 - 1,
            stats: OltStats::default(),
        }
    }

    /// Number of slots.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.entries.len() as u64 * OLT_ENTRY_BYTES
    }

    /// Counters so far.
    pub fn stats(&self) -> OltStats {
        self.stats
    }

    fn index_and_tag(&self, state: StateId, word: Label) -> (usize, u32) {
        let idx = (u64::from(state) ^ u64::from(word)) & self.mask;
        // Tag disambiguates (state, word) pairs that alias to one slot;
        // 24 bits as in the paper.
        let tag = (u64::from(state)
            .wrapping_mul(0x9E37_79B1)
            .wrapping_add(u64::from(word).wrapping_mul(0x85EB_CA77))
            >> 8) as u32
            & 0x00FF_FFFF;
        (idx as usize, tag)
    }

    /// Probes for `(state, word)`; returns whether it hit.
    pub fn probe(&mut self, state: StateId, word: Label) -> bool {
        self.stats.probes += 1;
        let (idx, tag) = self.index_and_tag(state, word);
        let e = self.entries[idx];
        if e.valid && e.tag == tag {
            self.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// Installs `(state, word)` after a successful binary search.
    pub fn insert(&mut self, state: StateId, word: Label) {
        let (idx, tag) = self.index_and_tag(state, word);
        self.entries[idx] = Entry { valid: true, tag };
        self.stats.inserts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_insert_then_hit() {
        let mut t = OffsetLookupTable::new(1024);
        assert!(!t.probe(5, 9));
        t.insert(5, 9);
        assert!(t.probe(5, 9));
        assert_eq!(t.stats().probes, 2);
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn paper_size_is_192_kb() {
        let t = OffsetLookupTable::new(32 * 1024);
        assert_eq!(t.size_bytes(), 192 * 1024);
    }

    #[test]
    fn conflicting_entries_evict() {
        // Two pairs with identical index: (s^w) equal.
        let mut t = OffsetLookupTable::new(16);
        t.insert(0b0001, 0b0010); // idx 3
        assert!(t.probe(1, 2));
        t.insert(0b0010, 0b0001); // also idx 3, different tag
        assert!(!t.probe(1, 2), "conflict must evict the old entry");
        assert!(t.probe(2, 1));
    }

    #[test]
    fn bigger_table_hits_more_on_working_set() {
        let pairs: Vec<(u32, u32)> = (0..2000u32).map(|i| (i % 700, (i * 7) % 300 + 1)).collect();
        let run = |entries: usize| {
            let mut t = OffsetLookupTable::new(entries);
            for &(s, w) in pairs.iter().chain(pairs.iter()) {
                if !t.probe(s, w) {
                    t.insert(s, w);
                }
            }
            t.stats().hit_ratio()
        };
        let small = run(64);
        let large = run(8192);
        assert!(large > small, "large {large} should beat small {small}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = OffsetLookupTable::new(1000);
    }
}
