//! Energy / power / area model (CACTI-flavored, 32 nm).
//!
//! The paper derives component costs from Design Compiler (logic), CACTI
//! (SRAM) and the Micron model (DRAM). We replace those closed tools
//! with smooth analytic fits whose constants are calibrated to land the
//! same first-order relationships the paper's results rest on:
//!
//! 1. **DRAM burst energy ≫ SRAM access energy** (~8 nJ vs ~0.1–0.3 nJ:
//!    a factor of 30–80 — "orders of magnitude" once per-bit costs are
//!    considered),
//! 2. SRAM access energy and leakage grow with capacity (≈ √capacity
//!    for dynamic energy, linear for leakage and area),
//! 3. total accelerator power lands in the paper's sub-watt regime with
//!    main memory the largest single consumer (Figure 10).

/// Per-access, leakage, and area models for on-chip memories and logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Fixed part of an SRAM access, pJ.
    pub sram_base_pj: f64,
    /// Capacity-dependent part of an SRAM access, pJ per sqrt(KiB).
    pub sram_sqrt_pj: f64,
    /// SRAM leakage, mW per KiB.
    pub sram_leak_mw_per_kib: f64,
    /// SRAM area, mm² per KiB.
    pub sram_mm2_per_kib: f64,
    /// Energy of one pipeline-logic event (arc evaluation step), pJ.
    pub logic_event_pj: f64,
    /// Pipeline logic leakage, mW.
    pub logic_leak_mw: f64,
    /// Pipeline logic area, mm².
    pub logic_mm2: f64,
    /// One floating-point operation, pJ.
    pub flop_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            sram_base_pj: 20.0,
            sram_sqrt_pj: 8.0,
            sram_leak_mw_per_kib: 0.018,
            sram_mm2_per_kib: 0.0037,
            logic_event_pj: 4.0,
            logic_leak_mw: 25.0,
            logic_mm2: 12.0,
            flop_pj: 0.9,
        }
    }
}

impl EnergyModel {
    /// Energy of one access to an SRAM of `capacity_bytes`, in pJ.
    ///
    /// # Panics
    /// Panics if `capacity_bytes` is zero.
    pub fn sram_access_pj(&self, capacity_bytes: u64) -> f64 {
        assert!(capacity_bytes > 0, "sram_access_pj: zero capacity");
        let kib = capacity_bytes as f64 / 1024.0;
        self.sram_base_pj + self.sram_sqrt_pj * kib.sqrt()
    }

    /// Leakage of an SRAM of `capacity_bytes`, in mW.
    pub fn sram_leak_mw(&self, capacity_bytes: u64) -> f64 {
        self.sram_leak_mw_per_kib * capacity_bytes as f64 / 1024.0
    }

    /// Area of an SRAM of `capacity_bytes`, in mm².
    pub fn sram_mm2(&self, capacity_bytes: u64) -> f64 {
        self.sram_mm2_per_kib * capacity_bytes as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_energy_grows_sublinearly() {
        let m = EnergyModel::default();
        let e64 = m.sram_access_pj(64 * 1024);
        let e256 = m.sram_access_pj(256 * 1024);
        let e1m = m.sram_access_pj(1024 * 1024);
        assert!(e64 < e256 && e256 < e1m);
        // Quadrupling capacity must less-than-quadruple energy.
        assert!(e256 / e64 < 4.0);
    }

    #[test]
    fn dram_sram_gap_is_orders_of_magnitude() {
        let m = EnergyModel::default();
        let sram = m.sram_access_pj(512 * 1024);
        let dram = crate::dram::DramModel::lpddr4(800).energy_pj_per_burst;
        assert!(
            dram / sram > 30.0,
            "DRAM/SRAM energy ratio {} too small for the paper's argument",
            dram / sram
        );
    }

    #[test]
    fn paper_area_ballpark() {
        // UNFOLD: ~1.76 MB of SRAM + logic ≈ 21.5 mm²;
        // Reza et al.: ~2.88 MB ≈ 16% more (paper §5.1).
        let m = EnergyModel::default();
        let unfold_kib = 256 + 512 + 32 + 128 + 64 + 576 + 192;
        let reza_kib = 512 + 1024 + 512 + 64 + 768;
        let unfold = m.sram_mm2(unfold_kib * 1024) + m.logic_mm2;
        let reza = m.sram_mm2(reza_kib * 1024) + m.logic_mm2;
        assert!(
            (unfold - 21.5).abs() < 4.0,
            "UNFOLD area {unfold} off target"
        );
        assert!(reza > unfold, "baseline must be larger");
        let reduction = (reza - unfold) / reza;
        assert!(
            (0.05..0.30).contains(&reduction),
            "area reduction {reduction}"
        );
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_panics() {
        let _ = EnergyModel::default().sram_access_pj(0);
    }
}
