//! Off-chip DRAM model (LPDDR4-flavored).
//!
//! The paper models an 8 GB LPDDR4 with the Micron power model. Here a
//! burst-level abstraction suffices: every cache miss costs one 64-byte
//! burst, a fixed access latency, and a fixed per-burst energy; a
//! background (static) power covers refresh and standby. The single
//! load-bearing property, per the paper's energy argument, is that a
//! DRAM access costs *orders of magnitude* more energy than an SRAM
//! access — see `energy.rs` for the SRAM side.

/// Burst size in bytes (one cache line).
pub const BURST_BYTES: u64 = 64;

/// Traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read bursts (cache-line fills).
    pub read_bursts: u64,
    /// Write bursts (token/lattice spills and write-backs).
    pub write_bursts: u64,
}

impl DramStats {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        (self.read_bursts + self.write_bursts) * BURST_BYTES
    }
}

/// The DRAM timing/energy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Access latency in accelerator cycles.
    pub latency_cycles: u64,
    /// Dynamic energy per 64-byte burst, in picojoules.
    /// LPDDR4 ≈ 15 pJ/bit end-to-end → 64 B ≈ 8 nJ.
    pub energy_pj_per_burst: f64,
    /// Background power (refresh + standby) in milliwatts.
    pub background_mw: f64,
    stats: DramStats,
}

impl DramModel {
    /// LPDDR4-ish defaults at an 800 MHz accelerator clock.
    pub fn lpddr4(frequency_mhz: u64) -> Self {
        DramModel {
            // ~250 ns access time expressed in accelerator cycles.
            latency_cycles: (250 * frequency_mhz) / 1000,
            energy_pj_per_burst: 8_000.0,
            background_mw: 85.0,
            stats: DramStats::default(),
        }
    }

    /// Records a read burst.
    pub fn read(&mut self) {
        self.stats.read_bursts += 1;
    }

    /// Records a write burst.
    pub fn write(&mut self) {
        self.stats.write_bursts += 1;
    }

    /// Counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Dynamic energy consumed so far, in millijoules.
    pub fn dynamic_energy_mj(&self) -> f64 {
        (self.stats.read_bursts + self.stats.write_bursts) as f64 * self.energy_pj_per_burst / 1e9
    }

    /// Bandwidth in MB/s given the decode wall-clock time.
    ///
    /// # Panics
    /// Panics if `seconds` is not positive.
    pub fn bandwidth_mb_per_s(&self, seconds: f64) -> f64 {
        assert!(seconds > 0.0, "bandwidth: non-positive time");
        self.stats.total_bytes() as f64 / 1e6 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_frequency() {
        assert_eq!(DramModel::lpddr4(800).latency_cycles, 200);
        assert_eq!(DramModel::lpddr4(600).latency_cycles, 150);
    }

    #[test]
    fn traffic_accounting() {
        let mut d = DramModel::lpddr4(800);
        d.read();
        d.read();
        d.write();
        assert_eq!(d.stats().read_bursts, 2);
        assert_eq!(d.stats().total_bytes(), 3 * 64);
        assert!((d.dynamic_energy_mj() - 3.0 * 8_000.0 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_computation() {
        let mut d = DramModel::lpddr4(800);
        for _ in 0..1_000_000 {
            d.read();
        }
        // 64 MB in 0.01 s = 6400 MB/s.
        assert!((d.bandwidth_mb_per_s(0.01) - 6_400.0).abs() < 1.0);
    }
}
