//! Set-associative LRU cache model.
//!
//! Functional (hit/miss) modeling only — latency and energy are applied
//! by the pipeline model using these hit/miss outcomes. Accesses that
//! straddle a line boundary touch both lines, which matters for the
//! variable-width compressed arc records.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Convenience constructor with capacity in KiB.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sizes, capacity not
    /// divisible by `ways * line`).
    pub fn kib(capacity_kib: u64, ways: usize, line_bytes: u64) -> Self {
        let c = CacheConfig {
            capacity_bytes: capacity_kib * 1024,
            ways,
            line_bytes,
        };
        assert!(c.num_sets() > 0, "kib: degenerate cache geometry");
        c
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        assert!(
            self.ways > 0 && self.line_bytes > 0,
            "num_sets: zero ways/line"
        );
        let sets = self.capacity_bytes / (self.ways as u64 * self.line_bytes);
        assert_eq!(
            sets * self.ways as u64 * self.line_bytes,
            self.capacity_bytes,
            "num_sets: capacity not a multiple of ways*line"
        );
        sets as usize
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line-granular accesses.
    pub accesses: u64,
    /// Line fills (misses).
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.num_sets() * config.ways;
        Cache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    stamp: 0
                };
                n
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `bytes` bytes at `addr`; returns the number of line
    /// misses (0, 1, or 2 — records never span more than two lines).
    ///
    /// # Panics
    /// Panics if `bytes` is zero or larger than a line.
    pub fn access(&mut self, addr: u64, bytes: u32) -> u32 {
        assert!(bytes > 0, "access: zero-byte access");
        assert!(
            u64::from(bytes) <= self.config.line_bytes,
            "access: {bytes} bytes exceeds the line size"
        );
        let first = addr / self.config.line_bytes;
        let last = (addr + u64::from(bytes) - 1) / self.config.line_bytes;
        let mut misses = 0;
        for line_addr in first..=last {
            if !self.touch_line(line_addr) {
                misses += 1;
            }
        }
        misses
    }

    /// Touches one line; returns whether it hit.
    fn touch_line(&mut self, line_addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let sets = self.config.num_sets() as u64;
        let set = (line_addr % sets) as usize;
        let tag = line_addr / sets;
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.clock;
            return true;
        }
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("cache set cannot be empty");
        *victim = Line {
            tag,
            valid: true,
            stamp: self.clock,
        };
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::kib(4, 2, 64));
        assert_eq!(c.access(0x100, 8), 1);
        assert_eq!(c.access(0x104, 8), 0);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = Cache::new(CacheConfig::kib(4, 2, 64));
        // 8 bytes starting 4 before a line boundary.
        assert_eq!(c.access(64 - 4, 8), 2);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets, 2 ways, 64B lines = 256B cache.
        let cfg = CacheConfig {
            capacity_bytes: 256,
            ways: 2,
            line_bytes: 64,
        };
        let mut c = Cache::new(cfg);
        // Three lines mapping to set 0: line addrs 0, 2, 4.
        c.access(0, 1);
        c.access(2 * 64, 1);
        c.access(0, 1); // refresh line 0
        c.access(4 * 64, 1); // evicts line 2 (LRU)
        assert_eq!(c.access(0, 1), 0, "line 0 must still be resident");
        assert_eq!(c.access(2 * 64, 1), 1, "line 2 must have been evicted");
    }

    #[test]
    fn bigger_cache_misses_less() {
        let mut small = Cache::new(CacheConfig::kib(4, 4, 64));
        let mut big = Cache::new(CacheConfig::kib(64, 4, 64));
        // A working set of 16 KiB, swept twice.
        for _ in 0..2 {
            for a in (0..16 * 1024u64).step_by(64) {
                small.access(a, 8);
                big.access(a, 8);
            }
        }
        assert!(big.stats().misses < small.stats().misses);
        // The big cache holds the whole set: second sweep all hits.
        assert_eq!(big.stats().misses, 256);
    }

    #[test]
    #[should_panic(expected = "exceeds the line size")]
    fn oversized_access_panics() {
        let mut c = Cache::new(CacheConfig::kib(4, 2, 64));
        c.access(0, 128);
    }

    proptest! {
        #[test]
        fn miss_ratio_bounded(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
            let mut c = Cache::new(CacheConfig::kib(16, 4, 64));
            for a in addrs {
                c.access(a, 4);
            }
            let r = c.stats().miss_ratio();
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(c.stats().misses <= c.stats().accesses);
        }

        #[test]
        fn repeat_access_always_hits(addr in 0u64..1_000_000) {
            let mut c = Cache::new(CacheConfig::kib(16, 4, 64));
            c.access(addr, 4);
            prop_assert_eq!(c.access(addr, 4), 0);
        }
    }
}
