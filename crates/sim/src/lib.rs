#![warn(missing_docs)]

//! Accelerator model for the UNFOLD reproduction.
//!
//! The paper evaluates UNFOLD with a cycle-accurate simulator plus
//! Design Compiler / CACTI / Micron power models (§4). This crate is the
//! equivalent substrate, rebuilt as a *cycle-approximate, event-driven*
//! model that consumes the decoder's memory-access trace online (it
//! implements [`unfold_decoder::TraceSink`]):
//!
//! * [`cache`] — set-associative LRU caches (State / AM-Arc / LM-Arc /
//!   Token, Table 3),
//! * [`olt`] — the direct-mapped Offset Lookup Table (§3.1, Figure 7),
//! * [`hashtable`] — the token hash tables with overflow modeling,
//! * [`dram`] — LPDDR4-style burst traffic, latency, and energy,
//! * [`energy`] — CACTI-flavored per-access energies, leakage, and area
//!   (constants documented inline; see DESIGN.md for the calibration
//!   argument),
//! * [`accel`] — the pipeline model tying it all together and producing
//!   a [`report::SimReport`],
//! * [`gpu`] — an analytic Tegra X1 model for the GPU baselines and the
//!   GMM/DNN/RNN scoring stage (Figures 1, 9, 12, 13).
//!
//! # Example
//!
//! ```
//! use unfold_sim::{Accelerator, AcceleratorConfig};
//! use unfold_decoder::TraceSink;
//!
//! let mut accel = Accelerator::new(AcceleratorConfig::unfold());
//! // Normally the decoder drives the sink; here we poke it directly.
//! accel.frame_start(0, 10);
//! accel.state_fetch(0x40);
//! accel.am_arc_fetch(0x4000_0000, 16);
//! let report = accel.finish(0.01);
//! assert!(report.cycles > 0);
//! assert!(report.total_energy_mj() > 0.0);
//! ```

pub mod accel;
pub mod cache;
pub mod dram;
pub mod energy;
pub mod gpu;
pub mod hashtable;
pub mod olt;
pub mod report;
pub mod scorer;

pub use accel::{Accelerator, FrameCacheSnapshot};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use dram::DramModel;
pub use energy::EnergyModel;
pub use gpu::{batch_pipeline, BatchPipeline, GpuModel, ScoringKind};
pub use hashtable::TokenHashTable;
pub use olt::OffsetLookupTable;
pub use report::{AcceleratorConfig, ComponentEnergy, SimReport};
pub use scorer::{modeled_us_per_frame, GpuBatchScorer};
