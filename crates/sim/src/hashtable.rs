//! Token hash-table model (paper §3.2).
//!
//! Two on-chip hash tables hold the tokens of the current and next
//! frame, "indexed through a combination of IDs of AM and LM states".
//! Collisions chain within the table; when a frame's tokens exceed
//! capacity, the surplus spills to the Overflow Buffer in main memory —
//! which is what this model accounts for.

/// Counters for one decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashStats {
    /// Insert operations.
    pub inserts: u64,
    /// Inserts that collided with an occupied slot (extra probe).
    pub collisions: u64,
    /// Inserts that spilled to the in-memory overflow buffer.
    pub overflows: u64,
}

/// Frame-level token hash table with overflow accounting.
#[derive(Debug, Clone)]
pub struct TokenHashTable {
    num_entries: usize,
    entry_bytes: u64,
    /// Occupancy of the frame being built.
    occupied: std::collections::HashSet<u64>,
    live: usize,
    stats: HashStats,
}

impl TokenHashTable {
    /// Builds a table with `num_entries` slots of `entry_bytes` each
    /// (Table 3: 32K entries; 576 KB for UNFOLD's compressed token
    /// attributes vs 768 KB for the baseline).
    ///
    /// # Panics
    /// Panics if `num_entries` is zero.
    pub fn new(num_entries: usize, entry_bytes: u64) -> Self {
        assert!(num_entries > 0, "new: empty hash table");
        TokenHashTable {
            num_entries,
            entry_bytes,
            occupied: std::collections::HashSet::new(),
            live: 0,
            stats: HashStats::default(),
        }
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_entries as u64 * self.entry_bytes
    }

    /// Counters so far.
    pub fn stats(&self) -> HashStats {
        self.stats
    }

    /// Starts a new frame: the "next" table becomes "current" and the
    /// build-side table is cleared.
    pub fn frame_flip(&mut self) {
        self.occupied.clear();
        self.live = 0;
    }

    /// Inserts a token key; returns the number of extra memory writes
    /// (0 normally, 1 when the insert overflowed to main memory).
    pub fn insert(&mut self, key: u64) -> u32 {
        self.stats.inserts += 1;
        let slot = key % self.num_entries as u64;
        if !self.occupied.insert(slot) {
            self.stats.collisions += 1;
        }
        self.live += 1;
        if self.live > self.num_entries {
            self.stats.overflows += 1;
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_overflow_under_capacity() {
        let mut h = TokenHashTable::new(8, 16);
        for k in 0..8u64 {
            assert_eq!(h.insert(k), 0);
        }
        assert_eq!(h.stats().overflows, 0);
    }

    #[test]
    fn overflow_beyond_capacity() {
        let mut h = TokenHashTable::new(4, 16);
        let mut spills = 0;
        for k in 0..6u64 {
            spills += h.insert(k * 4); // same slot: collisions too
        }
        assert_eq!(spills, 2);
        assert_eq!(h.stats().overflows, 2);
        assert!(h.stats().collisions >= 4);
    }

    #[test]
    fn frame_flip_resets_occupancy() {
        let mut h = TokenHashTable::new(4, 16);
        for k in 0..4u64 {
            h.insert(k);
        }
        h.frame_flip();
        assert_eq!(h.insert(0), 0, "fresh frame must not overflow");
        // Lifetime counters survive the flip.
        assert_eq!(h.stats().inserts, 5);
    }

    #[test]
    fn size_accounting() {
        let h = TokenHashTable::new(32 * 1024, 18);
        assert_eq!(h.size_bytes(), 32 * 1024 * 18);
    }
}
