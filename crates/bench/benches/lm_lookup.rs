//! Criterion: LM arc-location strategies (the paper's linear / binary /
//! compressed-positional ladder) at the data-structure level.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unfold::{System, TaskSpec};
use unfold_decoder::{LinearLm, LmSource};

fn bench_lookup(c: &mut Criterion) {
    let system = System::build(&TaskSpec::tiny());
    let lm = &system.lm_fst;
    let clm = &system.lm_comp;
    let linear = LinearLm(lm);
    let states: Vec<u32> = (0..lm.num_states() as u32).step_by(7).collect();
    let mut group = c.benchmark_group("lm_lookup");

    group.bench_function("linear", |b| {
        b.iter(|| {
            for &s in &states {
                for w in (1..=80u32).step_by(11) {
                    black_box(linear.lookup_word(black_box(s), black_box(w)).arc);
                }
            }
        })
    });
    group.bench_function("binary", |b| {
        b.iter(|| {
            for &s in &states {
                for w in (1..=80u32).step_by(11) {
                    black_box(LmSource::lookup_word(lm, black_box(s), black_box(w)).arc);
                }
            }
        })
    });
    group.bench_function("compressed_binary", |b| {
        b.iter(|| {
            for &s in &states {
                for w in (1..=80u32).step_by(11) {
                    black_box(LmSource::lookup_word(clm, black_box(s), black_box(w)).arc);
                }
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_lookup
}
criterion_main!(benches);
