//! Criterion: compression/decompression throughput of the bit-packed
//! formats and the K-means quantizer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unfold::{System, TaskSpec};
use unfold_compress::{CompressedAm, CompressedLm, WeightQuantizer};

fn bench_compression(c: &mut Criterion) {
    let system = System::build(&TaskSpec::tiny());
    let mut group = c.benchmark_group("compression");

    group.bench_function("compress_am", |b| {
        b.iter(|| black_box(CompressedAm::compress(&system.am.fst, 64, 0)))
    });
    group.bench_function("compress_lm", |b| {
        b.iter(|| black_box(CompressedLm::compress(&system.lm_fst, 64, 0)))
    });
    group.bench_function("decode_am_arcs", |b| {
        let comp = CompressedAm::compress(&system.am.fst, 64, 0);
        b.iter(|| {
            for s in (0..comp.num_states() as u32).step_by(3) {
                black_box(comp.decode_arcs(s));
            }
        })
    });
    let weights: Vec<f32> = (0..20_000)
        .map(|i| ((i * 37) % 1000) as f32 / 83.0)
        .collect();
    group.bench_function("kmeans_fit_64", |b| {
        b.iter(|| black_box(WeightQuantizer::fit(&weights, 64, 0)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compression
}
criterion_main!(benches);
