//! Criterion: decode throughput of the two decoders over compressed and
//! uncompressed models (the software-side cost of on-the-fly
//! composition).

use criterion::{criterion_group, BatchSize, Criterion};
use unfold::{System, TaskSpec};
use unfold_decoder::{DecodeConfig, FullyComposedDecoder, MetricsSink, NullSink, OtfDecoder};

fn bench_decoders(c: &mut Criterion) {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(2);
    let composed = system.composed();
    let mut group = c.benchmark_group("decode");

    group.bench_function("otf_uncompressed", |b| {
        let dec = OtfDecoder::new(DecodeConfig::default());
        b.iter_batched(
            || (),
            |_| {
                dec.decode(
                    &system.am.fst,
                    &system.lm_fst,
                    &utts[0].scores,
                    &mut NullSink,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("otf_compressed", |b| {
        let dec = OtfDecoder::new(DecodeConfig::default());
        b.iter_batched(
            || (),
            |_| {
                dec.decode(
                    &system.am_comp,
                    &system.lm_comp,
                    &utts[0].scores,
                    &mut NullSink,
                )
            },
            BatchSize::SmallInput,
        )
    });
    // Same decode as otf_compressed but with telemetry attached: the
    // gap between the two is the observability overhead (kept ≤5%).
    group.bench_function("otf_compressed_metrics", |b| {
        let dec = OtfDecoder::new(DecodeConfig::default());
        b.iter_batched(
            MetricsSink::new,
            |mut sink| dec.decode(&system.am_comp, &system.lm_comp, &utts[0].scores, &mut sink),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("fully_composed", |b| {
        let dec = FullyComposedDecoder::new(DecodeConfig::default());
        b.iter_batched(
            || (),
            |_| dec.decode(&composed, &utts[0].scores, &mut NullSink),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_decoders
}

// Custom main (instead of criterion_main!): after the Criterion
// micro-benchmarks, measure the end-to-end decode hot path and write
// the machine-readable report (skip with UNFOLD_BENCH_SKIP_JSON=1).
fn main() {
    benches();
    if std::env::var("UNFOLD_BENCH_SKIP_JSON").is_ok_and(|v| v == "1") {
        return;
    }
    let report = unfold_bench::decode_bench::measure_default();
    let path = unfold_bench::decode_bench::default_path();
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => eprintln!(
            "decode bench: {:.0} frames/s single-thread ({:.2}x vs naive, {:.2}x vs legacy kernel, OLT hit rate {}) -> {path}",
            report.frames_per_sec,
            report.single_thread_speedup,
            report.kernel_speedup,
            report
                .olt_hit_rate
                .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}")),
        ),
        Err(e) => eprintln!("decode bench: failed to write {path}: {e}"),
    }
}
