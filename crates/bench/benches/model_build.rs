//! Criterion: model-construction throughput — LM training, WFST
//! conversion, AM building, and the offline composition the paper
//! avoids at decode time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unfold::{build_composed_lg, TaskSpec};
use unfold_am::{build_am, Lexicon};
use unfold_lm::{lm_to_wfst, NGramModel};

fn bench_builds(c: &mut Criterion) {
    let spec = TaskSpec::tiny();
    let corpus = spec.corpus_spec().generate(spec.seed);
    let model = NGramModel::train(&corpus, spec.vocab_size, spec.discount);
    let lexicon = Lexicon::generate(spec.vocab_size, spec.phonemes, 1);
    let mut group = c.benchmark_group("model_build");

    group.bench_function("ngram_train", |b| {
        b.iter(|| black_box(NGramModel::train(&corpus, spec.vocab_size, spec.discount)))
    });
    group.bench_function("lm_to_wfst", |b| b.iter(|| black_box(lm_to_wfst(&model))));
    group.bench_function("build_am", |b| {
        b.iter(|| black_box(build_am(&lexicon, spec.topology)))
    });
    group.bench_function("offline_composition", |b| {
        b.iter(|| black_box(build_composed_lg(&lexicon, spec.topology, &model)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_builds
}
criterion_main!(benches);
