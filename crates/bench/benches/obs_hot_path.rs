//! Criterion: serve-side observability hot paths.
//!
//! Every lease quantum pays one `LogHistogram::record`, and the loadgen
//! folds per-thread histograms with `merge_from`; session lifecycle
//! pays a `SpanLog` open/close pair per state change. These are the
//! always-on costs behind the ≤5% serve overhead budget (enforced
//! end-to-end by `examples/obs_overhead.rs`) — this bench tracks the
//! unit costs so a regression shows up before the budget does.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unfold_obs::{LogHistogram, SpanLog};

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_hot_path");

    // One lock-free bump, the per-quantum decode-latency record.
    let h = LogHistogram::new();
    let mut v = 1u64;
    group.bench_function("loghist_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 33));
        })
    });

    // Exact-count fold of a populated histogram (65 buckets).
    let src = LogHistogram::new();
    for i in 0..10_000u64 {
        src.record(i * i);
    }
    let dst = LogHistogram::new();
    group.bench_function("loghist_merge", |b| {
        b.iter(|| dst.merge_from(black_box(&src)))
    });

    // Full snapshot → quantile summary, the scrape-side cost.
    group.bench_function("loghist_summary", |b| {
        b.iter(|| black_box(src.summary().p99))
    });

    // Span open + attributed close on the logical clock (ring reuse —
    // the log stays at capacity, so this measures steady state).
    let mut spans = SpanLog::new();
    let mut t = 0u64;
    group.bench_function("span_open_close", |b| {
        b.iter(|| {
            t += 1;
            let id = spans.open("lease", black_box(t), 0, t);
            spans.close_with(id, t + 1, &[("frames", 16.0), ("slack_ms", 3.0)]);
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_obs
}
criterion_main!(benches);
