//! Criterion: accelerator-model overhead (events per second the sink
//! can absorb) and cache-model throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use unfold_decoder::TraceSink;
use unfold_sim::{Accelerator, AcceleratorConfig, Cache, CacheConfig};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");

    group.bench_function("cache_access", |b| {
        let mut cache = Cache::new(CacheConfig::kib(256, 4, 64));
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(4297);
            black_box(cache.access(a % (1 << 22), 16))
        })
    });
    group.bench_function("accel_arc_event", |b| {
        let mut accel = Accelerator::new(AcceleratorConfig::unfold());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(16);
            accel.am_arc_fetch(0x4000_0000 + (a % (1 << 20)), 16);
            black_box(accel.cycles())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sim
}
criterion_main!(benches);
