//! The paper's reported numbers, as printed in MICRO-50 (2017).
//!
//! Used purely for side-by-side "paper vs measured" reporting; nothing
//! in the reproduction is fit to these values at run time.

/// Task order used throughout: TEDLIUM(Kaldi), Librispeech, Voxforge,
/// TEDLIUM(EESEN).
pub const TASKS: [&str; 4] = [
    "Kaldi-TEDLIUM",
    "Kaldi-Librispeech",
    "Kaldi-Voxforge",
    "EESEN-TEDLIUM",
];

/// Table 1: AM WFST size in MB per task.
pub const TABLE1_AM_MB: [f64; 4] = [33.0, 40.0, 2.8, 34.0];
/// Table 1: LM WFST size in MB per task.
pub const TABLE1_LM_MB: [f64; 4] = [66.0, 59.0, 2.3, 102.0];
/// Table 1: composed WFST size in MB per task.
pub const TABLE1_COMPOSED_MB: [f64; 4] = [1090.0, 496.0, 37.0, 1226.0];

/// Table 2: compressed on-the-fly (AM+LM) sizes in MB per task.
pub const TABLE2_OTF_COMP_MB: [f64; 4] = [32.39, 21.32, 1.33, 39.35];
/// Table 2: compressed fully-composed sizes in MB per task.
pub const TABLE2_FULL_COMP_MB: [f64; 4] = [269.78, 136.82, 9.38, 414.28];

/// Figure 9 annotations: Tegra X1 search energy, mJ per second of
/// speech, per task.
pub const FIG9_TEGRA_MJ: [f64; 4] = [82.9, 46.6, 31.0, 236.4];

/// Table 5: average decode latency per utterance, ms (Tegra X1).
pub const TABLE5_TEGRA_AVG_MS: [f64; 4] = [1069.0, 1336.0, 450.0, 1412.0];
/// Table 5: average decode latency per utterance, ms (Reza et al.).
pub const TABLE5_REZA_AVG_MS: [f64; 4] = [76.7, 31.9, 15.5, 60.0];
/// Table 5: average decode latency per utterance, ms (UNFOLD).
pub const TABLE5_UNFOLD_AVG_MS: [f64; 4] = [92.5, 30.0, 4.2, 111.6];

/// Table 6: word error rate (%) per task.
pub const TABLE6_WER: [f64; 4] = [22.59, 10.62, 13.26, 27.72];

/// Headline: average footprint reduction vs the uncompressed composed
/// WFST ("31x on average ... minimum and maximum ... 23.3x and 34.7x").
pub const REDUCTION_VS_COMPOSED: f64 = 31.0;
/// Headline: reduction vs the compressed composed WFST ("8.8x").
pub const REDUCTION_VS_COMPOSED_COMP: f64 = 8.8;
/// Headline: average search-energy savings vs Reza et al. ("28%").
pub const ENERGY_SAVINGS_PCT: f64 = 28.0;
/// Headline: UNFOLD real-time factor ("155x faster than real-time").
pub const UNFOLD_XRT: f64 = 155.0;
/// Headline: baseline real-time factor ("188x").
pub const REZA_XRT: f64 = 188.0;
/// Headline: GPU real-time factor ("Tegra X1 runs 9x faster than
/// real-time").
pub const TEGRA_XRT: f64 = 9.0;
/// §3.3: hypotheses removed by preemptive pruning ("22.5%").
pub const PREEMPTIVE_PRUNED_PCT: f64 = 22.5;
/// §3.3: speedup from preemptive pruning ("16.3%").
pub const PREEMPTIVE_SPEEDUP_PCT: f64 = 16.3;
/// §2/§5.1 lookup ladder: slowdown vs the baseline with linear search.
pub const LINEAR_SEARCH_SLOWDOWN: f64 = 10.0;
/// §2/§5.1 lookup ladder: slowdown with binary search only.
pub const BINARY_SEARCH_SLOWDOWN: f64 = 3.0;
/// §5.1 lookup ladder: final slowdown with OLT + preemptive pruning.
pub const FINAL_SLOWDOWN: f64 = 1.18;
/// §5.1: average off-chip memory access reduction ("68%").
pub const DRAM_ACCESS_REDUCTION_PCT: f64 = 68.0;
/// Figure 11: average bandwidth reduction ("71%").
pub const BANDWIDTH_REDUCTION_PCT: f64 = 71.0;
/// §5.1: UNFOLD die area, mm².
pub const UNFOLD_AREA_MM2: f64 = 21.5;
/// §5.1: area reduction vs the baseline ("16%").
pub const AREA_REDUCTION_PCT: f64 = 16.0;
/// §5.2: overall-system speedup over GPU-only decoding ("3.4x").
pub const OVERALL_SPEEDUP_VS_GPU: f64 = 3.4;
/// §5.2: overall-system energy reduction vs GPU-only ("1.5x").
pub const OVERALL_ENERGY_REDUCTION: f64 = 1.5;
/// §5.2: dataset reduction with the acoustic models included ("15.6x").
pub const OVERALL_DATASET_REDUCTION: f64 = 15.6;
/// Figure 1: Viterbi share of GPU execution time (%), per task.
pub const FIG1_VITERBI_PCT: [f64; 4] = [78.0, 78.0, 88.0, 55.0];
