//! Machine-readable model cold-load benchmark: owned vs mmap bundles.
//!
//! `cargo run --release -p unfold-bench --bin load_bench` packs the
//! `UNFOLD_BENCH_TASK` preset (default `tedlium`) into a `.unfb`
//! bundle, then measures — in a **fresh subprocess per sample**, so
//! every open is process-cold — how long [`Models::open`] (owned:
//! read + heap copy + eager checksum) and [`Models::open_mmap`]
//! (zero-copy: map, parse the section table, then stream each model
//! section's checksum *in place* while binding the shared handles)
//! take, and what each does to the process's memory high-water mark.
//! Results land in `BENCH_load.json` (override with
//! `UNFOLD_BENCH_LOAD_JSON`) next to `BENCH_decode.json` /
//! `BENCH_serve.json`.
//!
//! The number this exists to pin: the mmap open must *not* copy the
//! arc bitstream. Both modes checksum every model payload before any
//! decode can run, but the owned open also pays an O(bundle bytes)
//! heap copy, while the mapped open leaves the streams as clean,
//! reclaimable file-backed pages — so the split shows up in
//! `anon_delta_kb` (near zero for mapped, the whole bundle for owned)
//! rather than in plain RSS, which the verifying CRC pass faults in
//! on both sides.

use std::path::Path;
use std::time::Instant;

use unfold::{Models, System, TaskSpec};

/// One cold-open probe, taken inside a child process.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSample {
    /// Wall-clock milliseconds for `Models::open{,_mmap}`.
    pub open_ms: f64,
    /// Resident-set growth across the open (KiB, from `/proc`). For
    /// mapped opens this includes clean file-backed pages the kernel's
    /// fault-around pulled in — reclaimable, not copies.
    pub rss_delta_kb: i64,
    /// *Anonymous* (heap) resident growth across the open (KiB,
    /// `RssAnon`). This is the actually-copied memory: an owned open
    /// pays the whole bundle here, a mapped open pays only parsed
    /// headers.
    pub anon_delta_kb: i64,
    /// Process peak RSS after the open (KiB, `VmHWM`).
    pub vm_hwm_kb: i64,
    /// LMs the opened facade exposes (sanity: the open really parsed).
    pub lms: usize,
    /// Total arc-stream payload across all model sections (KiB) — the
    /// bytes a mapped open must not *copy*. Both open modes stream a
    /// verifying CRC over them, so they fault in as (reclaimable,
    /// file-backed) RSS either way; only the owned open also pays for
    /// them in `anon_delta_kb`.
    pub arc_stream_kb: i64,
}

/// `VmHWM` / `VmRSS` / `RssAnon` in KiB from `/proc/self/status`;
/// zeros where procfs is unavailable (the bench is then timing-only).
pub fn vm_status_kb() -> (i64, i64, i64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0, 0);
    };
    let field = |key: &str| -> i64 {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("VmHWM:"), field("VmRSS:"), field("RssAnon:"))
}

/// Opens `path` in `mode` (`"owned"` or `"mmap"`) once, measuring the
/// open. Runs in the child process of the subprocess protocol, but is
/// callable in-process for tests.
pub fn probe(mode: &str, path: &Path) -> LoadSample {
    let (_, rss_before, anon_before) = vm_status_kb();
    let t0 = Instant::now();
    let models = match mode {
        "mmap" => Models::open_mmap(path),
        _ => Models::open(path),
    }
    .expect("bundle opens");
    let open_ms = t0.elapsed().as_secs_f64() * 1e3;
    let lms = models.lm_names().len();
    let (hwm, rss_after, anon_after) = vm_status_kb();
    // After the RSS read: re-derive the arc-stream totals from the
    // section headers (pages the verifying open already faulted, so
    // this perturbs no RSS reading).
    let arc_stream_bytes = models.bundle().map_or(0, |b| {
        let am = b.am_layout().map_or(0, |l| l.arc_stream_bytes());
        let lm: usize = b
            .lm_names()
            .iter()
            .map(|n| b.lm_layout(n).map_or(0, |l| l.arc_stream_bytes()))
            .sum();
        am + lm
    });
    LoadSample {
        open_ms,
        rss_delta_kb: rss_after - rss_before,
        anon_delta_kb: anon_after - anon_before,
        vm_hwm_kb: hwm,
        lms,
        arc_stream_kb: (arc_stream_bytes / 1024) as i64,
    }
}

/// Serializes a probe as the one-line JSON the parent process parses.
pub fn sample_to_json(s: &LoadSample) -> String {
    format!(
        "{{\"open_ms\": {:.4}, \"rss_delta_kb\": {}, \"anon_delta_kb\": {}, \"vm_hwm_kb\": {}, \"lms\": {}, \"arc_stream_kb\": {}}}",
        s.open_ms, s.rss_delta_kb, s.anon_delta_kb, s.vm_hwm_kb, s.lms, s.arc_stream_kb
    )
}

/// Pulls `"key": <number>` out of a one-line JSON object — enough of a
/// parser for our own [`sample_to_json`] output, no serde needed.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a child's stdout line back into a [`LoadSample`].
pub fn sample_from_json(line: &str) -> Option<LoadSample> {
    Some(LoadSample {
        open_ms: json_num(line, "open_ms")?,
        rss_delta_kb: json_num(line, "rss_delta_kb")? as i64,
        anon_delta_kb: json_num(line, "anon_delta_kb")? as i64,
        vm_hwm_kb: json_num(line, "vm_hwm_kb")? as i64,
        lms: json_num(line, "lms")? as usize,
        arc_stream_kb: json_num(line, "arc_stream_kb")? as i64,
    })
}

/// Median open-time / RSS summary of one mode's samples.
#[derive(Debug, Clone)]
pub struct ModeSummary {
    /// `"owned"` or `"mmap"`.
    pub mode: String,
    /// Median cold-open wall clock (ms).
    pub open_ms: f64,
    /// Median resident-set growth across the open (KiB).
    pub rss_delta_kb: i64,
    /// Median anonymous (heap) growth across the open (KiB) — the
    /// actually-copied bytes.
    pub anon_delta_kb: i64,
    /// Median peak RSS after the open (KiB).
    pub vm_hwm_kb: i64,
}

/// The full cold-load report, serialized to `BENCH_load.json`.
#[derive(Debug, Clone)]
pub struct LoadBenchReport {
    /// Task preset the bundle was packed from.
    pub task: String,
    /// Bundle size on disk (bytes).
    pub bundle_bytes: u64,
    /// Total arc-stream payload across all model sections (KiB).
    pub arc_stream_kb: i64,
    /// LMs in the bundle.
    pub lms: usize,
    /// Cold-open subprocesses per mode.
    pub reps: usize,
    /// Per-mode medians, owned first.
    pub modes: Vec<ModeSummary>,
}

impl LoadBenchReport {
    /// Median mmap-open speedup over owned (`owned_ms / mmap_ms`).
    pub fn mmap_speedup(&self) -> f64 {
        let get = |m: &str| {
            self.modes
                .iter()
                .find(|s| s.mode == m)
                .map_or(f64::NAN, |s| s.open_ms)
        };
        get("owned") / get("mmap")
    }

    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"model_cold_load\",\n");
        s.push_str(&format!("  \"task\": \"{}\",\n", self.task));
        s.push_str(&format!("  \"bundle_bytes\": {},\n", self.bundle_bytes));
        s.push_str(&format!("  \"arc_stream_kb\": {},\n", self.arc_stream_kb));
        s.push_str(&format!("  \"lms\": {},\n", self.lms));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str(&format!(
            "  \"mmap_open_speedup\": {:.2},\n",
            self.mmap_speedup()
        ));
        s.push_str("  \"modes\": [\n");
        for (i, m) in self.modes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"mode\": \"{}\", \"open_ms\": {:.4}, \"rss_delta_kb\": {}, \"anon_delta_kb\": {}, \"vm_hwm_kb\": {}}}{}\n",
                m.mode,
                m.open_ms,
                m.rss_delta_kb,
                m.anon_delta_kb,
                m.vm_hwm_kb,
                if i + 1 < self.modes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

fn median_f64(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn median_i64(mut xs: Vec<i64>) -> i64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Summarizes one mode's samples by medians.
pub fn summarize(mode: &str, samples: &[LoadSample]) -> ModeSummary {
    ModeSummary {
        mode: mode.to_string(),
        open_ms: median_f64(samples.iter().map(|s| s.open_ms).collect()),
        rss_delta_kb: median_i64(samples.iter().map(|s| s.rss_delta_kb).collect()),
        anon_delta_kb: median_i64(samples.iter().map(|s| s.anon_delta_kb).collect()),
        vm_hwm_kb: median_i64(samples.iter().map(|s| s.vm_hwm_kb).collect()),
    }
}

/// Resolves the bench task preset by name (same names as
/// `decode_bench`).
pub fn task_by_name(task: &str) -> TaskSpec {
    match task {
        "tedlium" => TaskSpec::tedlium_kaldi(),
        "librispeech" => TaskSpec::librispeech(),
        "voxforge" => TaskSpec::voxforge(),
        "eesen" => TaskSpec::tedlium_eesen(),
        _ => TaskSpec::tiny(),
    }
}

/// Builds `task`, packs it (with one variant LM so the bundle carries
/// a registry-shaped payload), and writes the bundle to a temp path
/// the caller must remove. Returns the path.
pub fn pack_bench_bundle(task: &str) -> std::path::PathBuf {
    let spec = task_by_name(task);
    let system = System::build(&spec);
    let bytes = unfold::pack_system(&system, &[1]).expect("pack succeeds");
    let path = std::env::temp_dir().join(format!(
        "unfold-load-bench-{}-{}.unfb",
        std::process::id(),
        task
    ));
    std::fs::write(&path, bytes).expect("bundle written");
    path
}

/// Output path: `UNFOLD_BENCH_LOAD_JSON`, or `BENCH_load.json` at the
/// workspace root.
pub fn default_path() -> String {
    std::env::var("UNFOLD_BENCH_LOAD_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_load.json", env!("CARGO_MANIFEST_DIR")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_roundtrips_and_mmap_does_not_copy() {
        let path = pack_bench_bundle("tiny");
        let bytes = std::fs::metadata(&path).unwrap().len() as i64;

        let owned = probe("owned", &path);
        let mapped = probe("mmap", &path);
        std::fs::remove_file(&path).ok();

        assert_eq!(owned.lms, 2, "default + one variant");
        assert_eq!(mapped.lms, 2);
        assert!(owned.open_ms > 0.0 && mapped.open_ms > 0.0);
        assert!(mapped.arc_stream_kb > 0, "layouts report arc streams");
        assert!(mapped.arc_stream_kb <= bytes / 1024);

        // In-process RSS deltas are noisy (the two probes share one
        // heap), so only pin the direction procfs can actually show:
        // a mapped open must never grow residency by more than the
        // owned copy does, give or take a page-granularity fudge.
        if owned.vm_hwm_kb > 0 {
            assert!(
                mapped.rss_delta_kb <= owned.rss_delta_kb.max(bytes / 1024) + 64,
                "mmap open copied the bundle: owned {owned:?} vs mapped {mapped:?}"
            );
        }

        for s in [&owned, &mapped] {
            let line = sample_to_json(s);
            let back = sample_from_json(&line).expect("parses");
            // open_ms is serialized at 4 decimals; the rest is exact.
            assert!(
                (back.open_ms - s.open_ms).abs() < 1e-4,
                "round-trip of {line}"
            );
            assert_eq!(back.rss_delta_kb, s.rss_delta_kb);
            assert_eq!(back.anon_delta_kb, s.anon_delta_kb);
            assert_eq!(back.vm_hwm_kb, s.vm_hwm_kb);
            assert_eq!(back.lms, s.lms);
            assert_eq!(back.arc_stream_kb, s.arc_stream_kb);
        }
    }

    #[test]
    fn report_serializes_with_all_keys() {
        let report = LoadBenchReport {
            task: "tiny".into(),
            bundle_bytes: 1234,
            arc_stream_kb: 1,
            lms: 2,
            reps: 3,
            modes: vec![
                summarize(
                    "owned",
                    &[LoadSample {
                        open_ms: 10.0,
                        rss_delta_kb: 800,
                        anon_delta_kb: 780,
                        vm_hwm_kb: 9000,
                        lms: 2,
                        arc_stream_kb: 1,
                    }],
                ),
                summarize(
                    "mmap",
                    &[LoadSample {
                        open_ms: 0.5,
                        rss_delta_kb: 16,
                        anon_delta_kb: 4,
                        vm_hwm_kb: 8200,
                        lms: 2,
                        arc_stream_kb: 1,
                    }],
                ),
            ],
        };
        assert!((report.mmap_speedup() - 20.0).abs() < 1e-9);
        let json = report.to_json();
        for key in [
            "\"bench\": \"model_cold_load\"",
            "\"bundle_bytes\"",
            "\"mmap_open_speedup\"",
            "\"modes\": [",
            "\"rss_delta_kb\"",
            "\"anon_delta_kb\"",
            "\"arc_stream_kb\"",
            "\"vm_hwm_kb\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
