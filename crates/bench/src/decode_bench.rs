//! Machine-readable decode-throughput benchmark.
//!
//! `cargo bench --bench decode_throughput` finishes by measuring the
//! software decode hot path end to end and writing the numbers as JSON
//! (default `BENCH_decode.json`, override with `UNFOLD_BENCH_JSON`).
//! Unlike the per-figure Markdown tables, this file is meant for
//! machines: CI trend lines and before/after comparisons in PRs.
//!
//! Four configurations are measured on the same utterance batch:
//!
//! * **naive** — fresh working memory per utterance, software OLT off,
//!   legacy scalar kernel (the decode path as it was before the
//!   zero-alloc refactor and the SoA kernel),
//! * **optimized, single thread** — one warm [`DecodeScratch`] reused
//!   across utterances, the software OLT, and the SoA frame kernel,
//! * **legacy-kernel optimized** — identical to the above but with the
//!   scalar kernel, timed in the *same* repetition so the
//!   `kernel_speedup` ratio is immune to machine-speed drift,
//! * **optimized, multi-worker** — the utterance-parallel pool across
//!   a cores-aware worker ladder (`{1, 2, 4}` ∪ powers of two up to
//!   the core count ∪ the core count itself); points with
//!   `jobs > cores` measure scheduler thrash, not the pool, so they
//!   are skipped and listed in `skipped_oversubscribed` instead of
//!   being reported as if they meant something.
//!
//! All configurations produce bit-identical transcripts (pinned by
//! tests and asserted again here); only the wall clock may differ.

use std::time::Instant;

use unfold::{decode_batch, System, TaskSpec};
use unfold_am::Utterance;
use unfold_decoder::{DecodeConfig, DecodeKernel, DecodeScratch, NullSink, OtfDecoder};

/// Software-OLT capacity used by the optimized configurations. The
/// paper's hardware table holds 32K entries (Fig 7); the software memo
/// has no SRAM budget, so it simply matches that.
pub const BENCH_OLT_ENTRIES: usize = 32 * 1024;

/// Throughput of one worker-count configuration.
#[derive(Debug, Clone)]
pub struct JobsPoint {
    /// Worker count.
    pub jobs: usize,
    /// Decoded frames per wall-clock second.
    pub frames_per_sec: f64,
    /// Speedup over the `jobs = 1` point.
    pub speedup: f64,
    /// Pool occupancy (1.0 = every worker busy the whole batch).
    pub occupancy: f64,
}

/// The full decode-throughput report.
#[derive(Debug, Clone)]
pub struct DecodeBenchReport {
    /// Task preset the batch came from.
    pub task: String,
    /// Hardware threads available on the measuring machine — read this
    /// before judging the `jobs` scaling numbers.
    pub cores: usize,
    /// Utterances in the batch.
    pub utterances: usize,
    /// Frames in the batch.
    pub frames: usize,
    /// Audio seconds in the batch.
    pub audio_seconds: f64,
    /// Frames/sec with fresh scratch per utterance, the OLT off, and
    /// the legacy kernel.
    pub naive_frames_per_sec: f64,
    /// Frames/sec with warm scratch + OLT + SoA kernel, single thread.
    pub frames_per_sec: f64,
    /// Frames/sec of the legacy-kernel twin of the optimized
    /// configuration (warm scratch + OLT, scalar loops), timed in the
    /// same repetitions as `frames_per_sec`.
    pub legacy_frames_per_sec: f64,
    /// `frames_per_sec / naive_frames_per_sec`.
    pub single_thread_speedup: f64,
    /// `frames_per_sec / legacy_frames_per_sec` — the SoA kernel's
    /// isolated contribution, drift-immune because both sides were
    /// interleaved within each repetition.
    pub kernel_speedup: f64,
    /// Real-time factor of the optimized single-thread configuration
    /// (audio seconds decoded per wall second).
    pub rtf: f64,
    /// Software-OLT probes issued in the optimized run.
    pub olt_probes: u64,
    /// Software-OLT hit rate in the optimized run; `None` (JSON
    /// `null`) when the run issued zero probes — a 0-probe run has no
    /// hit rate, and reporting `0.0` would read as "probed and always
    /// missed".
    pub olt_hit_rate: Option<f64>,
    /// Scaling across worker counts that fit this machine
    /// (`jobs <= cores`, plus `jobs = 1` always).
    pub jobs: Vec<JobsPoint>,
    /// Worker counts *not* measured because they exceed the machine's
    /// cores — an oversubscribed pool benchmarks the OS scheduler, not
    /// the decoder.
    pub skipped_oversubscribed: Vec<usize>,
}

impl DecodeBenchReport {
    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"decode_throughput\",\n");
        s.push_str(&format!("  \"task\": \"{}\",\n", self.task));
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str(&format!("  \"utterances\": {},\n", self.utterances));
        s.push_str(&format!("  \"frames\": {},\n", self.frames));
        s.push_str(&format!(
            "  \"audio_seconds\": {:.6},\n",
            self.audio_seconds
        ));
        s.push_str(&format!(
            "  \"naive_frames_per_sec\": {:.1},\n",
            self.naive_frames_per_sec
        ));
        s.push_str(&format!(
            "  \"frames_per_sec\": {:.1},\n",
            self.frames_per_sec
        ));
        s.push_str(&format!(
            "  \"legacy_frames_per_sec\": {:.1},\n",
            self.legacy_frames_per_sec
        ));
        s.push_str(&format!(
            "  \"single_thread_speedup\": {:.3},\n",
            self.single_thread_speedup
        ));
        s.push_str(&format!(
            "  \"kernel_speedup\": {:.3},\n",
            self.kernel_speedup
        ));
        s.push_str(&format!("  \"rtf\": {:.1},\n", self.rtf));
        s.push_str(&format!("  \"olt_probes\": {},\n", self.olt_probes));
        match self.olt_hit_rate {
            Some(rate) => s.push_str(&format!("  \"olt_hit_rate\": {rate:.4},\n")),
            None => s.push_str("  \"olt_hit_rate\": null,\n"),
        }
        s.push_str(&format!("  \"olt_entries\": {},\n", BENCH_OLT_ENTRIES));
        s.push_str("  \"jobs\": [\n");
        for (i, p) in self.jobs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"jobs\": {}, \"frames_per_sec\": {:.1}, \"speedup\": {:.3}, \"occupancy\": {:.3}}}{}\n",
                p.jobs,
                p.frames_per_sec,
                p.speedup,
                p.occupancy,
                if i + 1 < self.jobs.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"skipped_oversubscribed\": [{}]\n",
            self.skipped_oversubscribed
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("}\n");
        s
    }
}

/// The worker-count ladder for the jobs scaling curve: the historical
/// `{1, 2, 4}` floor, every power of two up to the machine's core
/// count, and the core count itself — so the curve always ends at full
/// hardware width instead of stopping at whatever constant was wired
/// in when the bench was written.
pub fn jobs_candidates(cores: usize) -> Vec<usize> {
    let cores = cores.max(1);
    let mut c = vec![1usize, 2, 4];
    let mut p = 8usize;
    while p <= cores {
        c.push(p);
        p *= 2;
    }
    c.push(cores);
    c.sort_unstable();
    c.dedup();
    c
}

/// Median of a sample set (destructive).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Measures decode throughput on `utts` with `reps` timed repetitions
/// per configuration (median taken).
///
/// All configurations are timed **strictly interleaved** within each
/// repetition — the same discipline `examples/obs_overhead.rs` uses —
/// so slow machine-speed drift (this box swings ±15% over minutes)
/// hits every configuration equally instead of biasing whichever block
/// ran during the slow stretch.
pub fn measure(system: &System, utts: &[Utterance], reps: usize) -> DecodeBenchReport {
    let reps = reps.max(1);
    let frames: usize = utts.iter().map(|u| u.scores.num_frames()).sum();
    let audio_seconds: f64 = utts.iter().map(|u| u.audio_seconds()).sum();

    // Naive: the pre-optimization shape — fresh scratch, OLT off,
    // legacy scalar kernel.
    let naive_dec = OtfDecoder::new(
        DecodeConfig::builder()
            .kernel(DecodeKernel::Legacy)
            .build()
            .expect("valid bench config"),
    );
    let naive_words: Vec<Vec<u32>> = utts
        .iter()
        .map(|u| {
            naive_dec
                .decode(&system.am_comp, &system.lm_comp, &u.scores, &mut NullSink)
                .words
        })
        .collect();

    // Optimized: warm scratch + software OLT + SoA kernel.
    let opt_dec = OtfDecoder::new(
        DecodeConfig::builder()
            .olt_entries(BENCH_OLT_ENTRIES)
            .kernel(DecodeKernel::Soa)
            .build()
            .expect("valid bench config"),
    );
    // The optimized configuration's legacy-kernel twin, timed in the
    // same repetitions so kernel_speedup cancels machine-speed drift.
    let legacy_dec = OtfDecoder::new(
        DecodeConfig::builder()
            .olt_entries(BENCH_OLT_ENTRIES)
            .kernel(DecodeKernel::Legacy)
            .build()
            .expect("valid bench config"),
    );
    let mut scratch = DecodeScratch::new();
    let mut olt_probes = 0u64;
    let mut olt_hits = 0u64;
    for (u, naive) in utts.iter().zip(&naive_words) {
        let r = opt_dec.decode_with(
            &system.am_comp,
            &system.lm_comp,
            &u.scores,
            &mut scratch,
            &mut NullSink,
        );
        assert_eq!(r.words, *naive, "optimizations must not change output");
        let l = legacy_dec.decode_with(
            &system.am_comp,
            &system.lm_comp,
            &u.scores,
            &mut scratch,
            &mut NullSink,
        );
        assert_eq!(l.words, *naive, "kernels must not change output");
        olt_probes += r.stats.olt_probes;
        olt_hits += r.stats.olt_hits;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let candidates = jobs_candidates(cores);
    // An oversubscribed pool (jobs > cores) time-slices workers on the
    // same core and measures the OS scheduler, not the decoder — its
    // "speedup" is noise below 1.0. Record those points as skipped
    // rather than publishing misleading numbers.
    let measured: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&j| j <= cores.max(1))
        .collect();
    let skipped: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&j| j > cores.max(1))
        .collect();
    let mut naive_samples = Vec::with_capacity(reps);
    let mut opt_samples = Vec::with_capacity(reps);
    let mut legacy_samples = Vec::with_capacity(reps);
    let mut jobs_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); measured.len()];
    let mut occupancies = vec![0.0f64; measured.len()];
    for _ in 0..reps {
        let t0 = Instant::now();
        for u in utts {
            naive_dec.decode(&system.am_comp, &system.lm_comp, &u.scores, &mut NullSink);
        }
        naive_samples.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for u in utts {
            opt_dec.decode_with(
                &system.am_comp,
                &system.lm_comp,
                &u.scores,
                &mut scratch,
                &mut NullSink,
            );
        }
        opt_samples.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for u in utts {
            legacy_dec.decode_with(
                &system.am_comp,
                &system.lm_comp,
                &u.scores,
                &mut scratch,
                &mut NullSink,
            );
        }
        legacy_samples.push(t0.elapsed().as_secs_f64());

        for (ji, &jobs) in measured.iter().enumerate() {
            let t0 = Instant::now();
            let (_, pool) = decode_batch(utts, jobs, |_i, u, scratch| {
                opt_dec.decode_with(
                    &system.am_comp,
                    &system.lm_comp,
                    &u.scores,
                    scratch,
                    &mut NullSink,
                )
            });
            jobs_samples[ji].push(t0.elapsed().as_secs_f64());
            occupancies[ji] = pool.occupancy();
        }
    }
    let naive_secs = median(naive_samples);
    let opt_secs = median(opt_samples);
    let legacy_secs = median(legacy_samples);

    let mut jobs_points = Vec::new();
    let mut serial_fps = 0.0;
    for (ji, &jobs) in measured.iter().enumerate() {
        let fps = frames as f64 / median(std::mem::take(&mut jobs_samples[ji]));
        if jobs == 1 {
            serial_fps = fps;
        }
        jobs_points.push(JobsPoint {
            jobs,
            frames_per_sec: fps,
            speedup: fps / serial_fps,
            occupancy: occupancies[ji],
        });
    }

    DecodeBenchReport {
        task: system.spec.name.to_string(),
        cores,
        utterances: utts.len(),
        frames,
        audio_seconds,
        naive_frames_per_sec: frames as f64 / naive_secs,
        frames_per_sec: frames as f64 / opt_secs,
        legacy_frames_per_sec: frames as f64 / legacy_secs,
        single_thread_speedup: naive_secs / opt_secs,
        kernel_speedup: legacy_secs / opt_secs,
        rtf: audio_seconds / opt_secs,
        olt_probes,
        olt_hit_rate: if olt_probes > 0 {
            Some(olt_hits as f64 / olt_probes as f64)
        } else {
            None
        },
        jobs: jobs_points,
        skipped_oversubscribed: skipped,
    }
}

/// Measures the default configuration: the `UNFOLD_BENCH_TASK` preset
/// (default `tedlium`, the paper's headline task — its LM binary
/// search is deep enough for the OLT and warm scratch to matter;
/// `tiny` is available for smoke runs), [`crate::utterance_count`]
/// utterances, `UNFOLD_BENCH_REPS` timed repetitions (default 30).
pub fn measure_default() -> DecodeBenchReport {
    let task = std::env::var("UNFOLD_BENCH_TASK").unwrap_or_else(|_| "tedlium".into());
    let spec = match task.as_str() {
        "tedlium" => TaskSpec::tedlium_kaldi(),
        "librispeech" => TaskSpec::librispeech(),
        "voxforge" => TaskSpec::voxforge(),
        "eesen" => TaskSpec::tedlium_eesen(),
        _ => TaskSpec::tiny(),
    };
    let system = System::build(&spec);
    let utts = system.test_utterances(crate::utterance_count());
    let reps = std::env::var("UNFOLD_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    measure(&system, &utts, reps)
}

/// Output path: `UNFOLD_BENCH_JSON`, or `BENCH_decode.json` at the
/// workspace root (cargo runs benches with the package directory as
/// CWD, so a bare relative path would land in `crates/bench/`).
pub fn default_path() -> String {
    std::env::var("UNFOLD_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_decode.json", env!("CARGO_MANIFEST_DIR")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_measures_and_serializes() {
        let system = System::build(&TaskSpec::tiny());
        let utts = system.test_utterances(2);
        let report = measure(&system, &utts, 2);
        assert!(report.frames_per_sec > 0.0);
        assert!(report.naive_frames_per_sec > 0.0);
        assert!(report.legacy_frames_per_sec > 0.0);
        assert!(report.kernel_speedup > 0.0);
        assert!(report.rtf > 0.0);
        assert!(report.olt_probes > 0, "tiny task must probe the OLT");
        assert!(
            report.olt_hit_rate.expect("probes > 0 means a rate") > 0.0,
            "tiny task must hit the OLT"
        );
        // Every candidate jobs point is either measured or listed as
        // skipped-oversubscribed; jobs=1 is always measured.
        assert_eq!(
            report.jobs.len() + report.skipped_oversubscribed.len(),
            jobs_candidates(report.cores).len()
        );
        assert_eq!(report.jobs[0].jobs, 1);
        assert!((report.jobs[0].speedup - 1.0).abs() < 1e-9);
        for p in &report.jobs {
            assert!(
                p.jobs == 1 || p.jobs <= report.cores,
                "oversubscribed point jobs={} on {} cores must be skipped",
                p.jobs,
                report.cores
            );
        }
        for &j in &report.skipped_oversubscribed {
            assert!(j > report.cores);
        }
        let json = report.to_json();
        for key in [
            "\"cores\"",
            "\"frames_per_sec\"",
            "\"legacy_frames_per_sec\"",
            "\"kernel_speedup\"",
            "\"rtf\"",
            "\"olt_probes\"",
            "\"olt_hit_rate\"",
            "\"single_thread_speedup\"",
            "\"jobs\": [",
            "\"skipped_oversubscribed\": [",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn zero_probe_runs_report_null_hit_rate() {
        // A 0-probe run has no hit rate: the JSON must carry `null`
        // plus the probe count, never a misleading `0.0`.
        let report = DecodeBenchReport {
            task: "tiny".into(),
            cores: 1,
            utterances: 0,
            frames: 0,
            audio_seconds: 0.0,
            naive_frames_per_sec: 0.0,
            frames_per_sec: 0.0,
            legacy_frames_per_sec: 0.0,
            single_thread_speedup: 1.0,
            kernel_speedup: 1.0,
            rtf: 0.0,
            olt_probes: 0,
            olt_hit_rate: None,
            jobs: Vec::new(),
            skipped_oversubscribed: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.contains("\"olt_hit_rate\": null"), "{json}");
        assert!(json.contains("\"olt_probes\": 0"), "{json}");
    }

    #[test]
    fn jobs_ladder_is_cores_aware() {
        assert_eq!(jobs_candidates(1), vec![1, 2, 4]);
        assert_eq!(jobs_candidates(4), vec![1, 2, 4]);
        assert_eq!(jobs_candidates(6), vec![1, 2, 4, 6]);
        assert_eq!(jobs_candidates(8), vec![1, 2, 4, 8]);
        assert_eq!(jobs_candidates(12), vec![1, 2, 4, 8, 12]);
        assert_eq!(jobs_candidates(16), vec![1, 2, 4, 8, 16]);
    }
}
