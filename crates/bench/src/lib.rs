#![warn(missing_docs)]

//! Benchmark harness for the UNFOLD reproduction.
//!
//! One binary per paper table/figure (see `src/bin/`), each printing a
//! Markdown table with the paper's reported value next to the measured
//! one, plus Criterion micro-benchmarks (see `benches/`). DESIGN.md
//! carries the experiment index; EXPERIMENTS.md records the outcomes.
//!
//! Environment knobs honored by every binary:
//!
//! * `UNFOLD_UTTS` — test utterances per task (default 8),
//! * `UNFOLD_SMOKE` — set to `1` to run on the tiny task only (CI).

pub mod decode_bench;
pub mod harness;
pub mod load_bench;
pub mod paper;

pub use harness::{
    build_all, export_metrics, fmt1, fmt2, header, metrics_arg, row, run_unfold_with_metrics,
    utterance_count, TaskRun,
};
