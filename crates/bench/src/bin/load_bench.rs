//! Cold-load benchmark driver: owned vs mmap bundle opens.
//!
//! Parent mode (no args): packs the `UNFOLD_BENCH_TASK` preset
//! (default `tedlium`) into a temp `.unfb` bundle, then re-invokes
//! this same binary `UNFOLD_BENCH_LOAD_REPS` times (default 5) per
//! mode with `--child <mode> <bundle>`. Each child is a fresh process,
//! so every open is process-cold and its `VmHWM` isolates what *that*
//! open made resident. Medians go to `BENCH_load.json`.
//!
//! Child mode (`--child owned|mmap <path>`): opens the bundle once and
//! prints a one-line JSON sample on stdout.

use std::process::Command;

use unfold_bench::load_bench::{
    default_path, pack_bench_bundle, probe, sample_from_json, sample_to_json, summarize,
    LoadBenchReport, LoadSample,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        let mode = args.get(1).expect("--child needs a mode");
        let path = std::path::Path::new(args.get(2).expect("--child needs a bundle path"));
        println!("{}", sample_to_json(&probe(mode, path)));
        return;
    }

    let task = std::env::var("UNFOLD_BENCH_TASK").unwrap_or_else(|_| "tedlium".into());
    let reps: usize = std::env::var("UNFOLD_BENCH_LOAD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .max(1);
    let exe = std::env::current_exe().expect("own path");

    eprintln!("packing '{task}' bundle ...");
    let bundle = pack_bench_bundle(&task);
    let bundle_bytes = std::fs::metadata(&bundle).expect("bundle stat").len();

    let mut modes = Vec::new();
    let mut lms = 0;
    let mut arc_stream_kb = 0;
    for mode in ["owned", "mmap"] {
        let mut samples: Vec<LoadSample> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let out = Command::new(&exe)
                .args(["--child", mode, bundle.to_str().expect("utf-8 temp path")])
                .output()
                .expect("child runs");
            assert!(
                out.status.success(),
                "child ({mode}) failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let line = String::from_utf8_lossy(&out.stdout);
            let sample = sample_from_json(line.trim()).expect("child printed a sample");
            lms = sample.lms;
            arc_stream_kb = sample.arc_stream_kb;
            samples.push(sample);
        }
        modes.push(summarize(mode, &samples));
    }
    std::fs::remove_file(&bundle).ok();

    let report = LoadBenchReport {
        task,
        bundle_bytes,
        arc_stream_kb,
        lms,
        reps,
        modes,
    };
    let path = default_path();
    std::fs::write(&path, report.to_json()).expect("report written");
    eprintln!(
        "wrote {path}: bundle {} KiB, mmap open {:.2}x faster than owned",
        bundle_bytes / 1024,
        report.mmap_speedup()
    );
    print!("{}", report.to_json());
}
