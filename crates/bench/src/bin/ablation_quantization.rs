//! §3.4 ablation: K-means weight-quantization cluster count.
//!
//! The paper picks K = 64 (6-bit indices) and reports < 0.01% WER
//! impact. Sweeping K shows the size/accuracy trade-off.

use unfold_bench::{build_all, header, row};
use unfold_compress::{CompressedAm, CompressedLm};
use unfold_decoder::{wer, DecodeConfig, NullSink, OtfDecoder, WerReport};

fn main() {
    println!("# Ablation — weight quantization clusters (paper: K=64)\n");
    let tasks = build_all();
    let task = &tasks[0];
    println!("Task: {}\n", task.name());
    let s = &task.system;
    let dec = OtfDecoder::new(DecodeConfig::default());

    // Reference decode on unquantized models.
    let mut reference = WerReport::default();
    for utt in &task.utterances {
        let r = dec.decode(&s.am.fst, &s.lm_fst, &utt.scores, &mut NullSink);
        reference.accumulate(wer(&utt.words, &r.words));
    }

    header(&[
        "K",
        "index bits",
        "AM+LM KiB",
        "WER %",
        "WER delta vs float",
    ]);
    for k in [4usize, 8, 16, 32, 64] {
        let am = CompressedAm::compress(&s.am.fst, k, s.spec.seed);
        let lm = CompressedLm::compress(&s.lm_fst, k, s.spec.seed);
        let mut rep = WerReport::default();
        for utt in &task.utterances {
            let r = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
            rep.accumulate(wer(&utt.words, &r.words));
        }
        row(&[
            k.to_string(),
            format!("{}", (usize::BITS - (k - 1).leading_zeros()).max(1)),
            format!("{}", (am.size_bytes() + lm.size_bytes()) / 1024),
            format!("{:.2}", rep.percent()),
            format!("{:+.2}", rep.percent() - reference.percent()),
        ]);
    }
    println!("\nPaper claim: K=64 changes WER by < 0.01%.");
}
