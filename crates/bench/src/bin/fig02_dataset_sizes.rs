//! Figure 2: sizes of the ASR datasets (acoustic model vs WFST); the
//! WFST dominates, taking 87-97% of the total.

use unfold_bench::{build_all, fmt1, fmt2, header, row};

fn main() {
    println!("# Figure 2 — dataset sizes per decoder (scaled task instances)\n");
    header(&[
        "Task",
        "GMM/DNN/LSTM (MiB)",
        "Composed WFST (MiB)",
        "WFST share % (paper: 87-97%)",
    ]);
    for task in build_all() {
        let sizes = task.system.sizes();
        let share = 100.0 * sizes.composed_mib / (sizes.composed_mib + sizes.backend_mib);
        row(&[
            task.name().into(),
            fmt2(sizes.backend_mib),
            fmt2(sizes.composed_mib),
            fmt1(share),
        ]);
    }
}
