//! Table 1: sizes of the individual AM and LM WFSTs vs the
//! fully-composed WFST.

use unfold_bench::{build_all, fmt1, fmt2, header, paper, row};

fn main() {
    println!("# Table 1 — AM / LM / composed WFST sizes\n");
    println!("(absolute values are ~75x scaled; the explosion *ratio* is the result)\n");
    header(&[
        "Task",
        "AM MiB",
        "LM MiB",
        "Composed MiB",
        "Composed/(AM+LM) measured",
        "Composed/(AM+LM) paper",
    ]);
    for (i, task) in build_all().iter().enumerate() {
        let s = task.system.sizes();
        let measured = s.composed_mib / s.on_the_fly_mib();
        let paper_ratio = match (
            paper::TABLE1_COMPOSED_MB.get(i),
            paper::TABLE1_AM_MB.get(i),
            paper::TABLE1_LM_MB.get(i),
        ) {
            (Some(c), Some(a), Some(l)) => c / (a + l),
            _ => f64::NAN,
        };
        row(&[
            task.name().into(),
            fmt2(s.am_mib),
            fmt2(s.lm_mib),
            fmt2(s.composed_mib),
            fmt1(measured),
            fmt1(paper_ratio),
        ]);
    }
}
