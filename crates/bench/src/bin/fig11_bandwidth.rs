//! Figure 11: main-memory bandwidth usage (states / arcs / tokens) for
//! the baseline and UNFOLD.

use unfold::experiments::{run_baseline_on, run_unfold};
use unfold_bench::{build_all, header, paper, row};
use unfold_sim::SimReport;

fn split(sim: &SimReport) -> (f64, f64, f64) {
    let to_mb = |bursts: u64| bursts as f64 * 64.0 / 1e6 / sim.seconds;
    (
        to_mb(sim.traffic.state_bursts),
        to_mb(sim.traffic.arc_bursts()),
        to_mb(sim.traffic.token_bursts + sim.traffic.hash_bursts),
    )
}

fn main() {
    println!("# Figure 11 — memory bandwidth usage (MB/s): states / arcs / tokens\n");
    header(&[
        "Task",
        "Reza states",
        "Reza arcs",
        "Reza tokens",
        "Reza total",
        "UNFOLD states",
        "UNFOLD arcs",
        "UNFOLD tokens",
        "UNFOLD total",
        "Saving",
    ]);
    let mut savings = Vec::new();
    for task in build_all() {
        let composed = task.system.composed();
        let reza = run_baseline_on(&task.system, &composed, &task.utterances);
        let unf = run_unfold(&task.system, &task.utterances);
        let (rs, ra, rt) = split(&reza.sim);
        let (us, ua, ut) = split(&unf.sim);
        let saving = (1.0 - unf.sim.bandwidth_mb_per_s() / reza.sim.bandwidth_mb_per_s()) * 100.0;
        savings.push(saving);
        row(&[
            task.name().into(),
            format!("{rs:.0}"),
            format!("{ra:.0}"),
            format!("{rt:.0}"),
            format!("{:.0}", reza.sim.bandwidth_mb_per_s()),
            format!("{us:.0}"),
            format!("{ua:.0}"),
            format!("{ut:.0}"),
            format!("{:.0}", unf.sim.bandwidth_mb_per_s()),
            format!("{saving:.0}%"),
        ]);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "\nAverage bandwidth saving: {:.0}% measured (paper {:.0}%).",
        avg,
        paper::BANDWIDTH_REDUCTION_PCT
    );
}
