//! Table 5: maximum and average decoding time per utterance across
//! the three platforms.

use unfold::experiments::{run_baseline_on, run_gpu, run_unfold};
use unfold_bench::{build_all, header, paper, row};

fn main() {
    println!("# Table 5 — decode latency per utterance (ms)\n");
    println!("(absolute latencies track the ~75x workload scale; orderings are the result)\n");
    header(&[
        "Task",
        "Tegra max",
        "Tegra avg",
        "Reza max",
        "Reza avg",
        "UNFOLD max",
        "UNFOLD avg",
    ]);
    for task in build_all() {
        let composed = task.system.composed();
        let gpu = run_gpu(&task.system, &task.utterances);
        let reza = run_baseline_on(&task.system, &composed, &task.utterances);
        let unf = run_unfold(&task.system, &task.utterances);
        let gmax = gpu
            .per_utterance_seconds
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            * 1e3;
        let gavg = gpu.per_utterance_seconds.iter().sum::<f64>()
            / gpu.per_utterance_seconds.len() as f64
            * 1e3;
        row(&[
            task.name().into(),
            format!("{gmax:.2}"),
            format!("{gavg:.2}"),
            format!("{:.3}", reza.max_latency_ms()),
            format!("{:.3}", reza.avg_latency_ms()),
            format!("{:.3}", unf.max_latency_ms()),
            format!("{:.3}", unf.avg_latency_ms()),
        ]);
    }
    println!(
        "\nPaper (full scale) averages, ms: Tegra {:?}, Reza {:?}, UNFOLD {:?}.",
        paper::TABLE5_TEGRA_AVG_MS,
        paper::TABLE5_REZA_AVG_MS,
        paper::TABLE5_UNFOLD_AVG_MS
    );
    println!("Both accelerators answer orders of magnitude faster than the GPU.");
}
