//! Figure 1: percentage of GPU execution time spent in the Viterbi
//! search vs the GMM/DNN/LSTM acoustic scoring, per ASR decoder.

use unfold_bench::{build_all, fmt1, header, paper, row};

fn main() {
    println!("# Figure 1 — GPU execution-time breakdown (Tegra X1 model)\n");
    header(&[
        "Task",
        "Viterbi % (paper)",
        "Viterbi % (measured)",
        "Scoring % (measured)",
    ]);
    for (i, task) in build_all().iter().enumerate() {
        let gpu = unfold::run_gpu(&task.system, &task.utterances);
        let viterbi = gpu.viterbi_fraction() * 100.0;
        let paper_pct = paper::FIG1_VITERBI_PCT.get(i).copied().unwrap_or(f64::NAN);
        row(&[
            task.name().into(),
            fmt1(paper_pct),
            fmt1(viterbi),
            fmt1(100.0 - viterbi),
        ]);
    }
    println!("\nPaper's claim: the Viterbi search dominates (55-88%) across");
    println!("GMM-, DNN-, and LSTM-based decoders, motivating a search accelerator.");
}
