//! Figure 9: Viterbi-search energy per second of speech on the Tegra
//! X1, the Reza et al. baseline, and UNFOLD.

use unfold::experiments::{run_baseline_on, run_gpu, run_unfold};
use unfold_bench::{build_all, fmt1, header, paper, row};

fn main() {
    println!("# Figure 9 — search energy (mJ per second of speech)\n");
    header(&[
        "Task",
        "Tegra X1",
        "Reza et al.",
        "UNFOLD",
        "UNFOLD saving vs Reza",
    ]);
    let mut savings = Vec::new();
    for task in build_all() {
        let composed = task.system.composed();
        let gpu = run_gpu(&task.system, &task.utterances);
        let reza = run_baseline_on(&task.system, &composed, &task.utterances);
        let unf = run_unfold(&task.system, &task.utterances);
        let saving = (1.0
            - unf.sim.energy_mj_per_audio_second() / reza.sim.energy_mj_per_audio_second())
            * 100.0;
        savings.push(saving);
        row(&[
            task.name().into(),
            format!("{:.2}", gpu.search_energy_mj / gpu.audio_seconds),
            format!("{:.4}", reza.sim.energy_mj_per_audio_second()),
            format!("{:.4}", unf.sim.energy_mj_per_audio_second()),
            format!("{:.0}%", saving),
        ]);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "\nAverage energy saving vs baseline: {:.0}% measured (paper {:.0}%).",
        avg,
        paper::ENERGY_SAVINGS_PCT
    );
    println!("GPU energy is orders of magnitude above both accelerators, as in the paper.");
    let _ = fmt1(paper::FIG9_TEGRA_MJ[0]);
}
