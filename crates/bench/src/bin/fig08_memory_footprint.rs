//! Figure 8: dataset sizes under the four storage configurations, and
//! the paper's headline 31x / 8.8x reductions.

use unfold_bench::{build_all, fmt2, header, paper, row};

fn main() {
    println!("# Figure 8 — memory footprint of the four configurations (MiB)\n");
    header(&[
        "Task",
        "Fully-Composed",
        "Fully-Composed+Comp",
        "On-the-fly",
        "On-the-fly+Comp (UNFOLD)",
        "Reduction",
    ]);
    let mut reductions = Vec::new();
    for task in build_all() {
        let s = task.system.sizes();
        let red = s.reduction_vs_composed();
        reductions.push(red);
        row(&[
            task.name().into(),
            fmt2(s.composed_mib),
            fmt2(s.composed_comp_mib),
            fmt2(s.on_the_fly_mib()),
            fmt2(s.unfold_mib()),
            format!("{:.1}x", red),
        ]);
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let min = reductions.iter().copied().fold(f64::INFINITY, f64::min);
    let max = reductions.iter().copied().fold(0.0, f64::max);
    println!(
        "\nReduction vs Fully-Composed: avg {:.1}x (paper {:.0}x), range {:.1}-{:.1}x (paper 23.3-34.7x).",
        avg,
        paper::REDUCTION_VS_COMPOSED,
        min,
        max
    );
}
