//! Table 6: word error rate per task, plus the quantization-impact
//! check (paper: the compressed models change WER by < 0.01%).

use unfold::experiments::run_unfold;
use unfold_bench::{build_all, fmt2, header, paper, row};
use unfold_decoder::{wer, DecodeConfig, NullSink, OtfDecoder, WerReport};

fn main() {
    println!("# Table 6 — word error rate (%)\n");
    header(&[
        "Task",
        "WER paper",
        "WER measured (UNFOLD)",
        "WER uncompressed models",
        "Delta",
    ]);
    for (i, task) in build_all().iter().enumerate() {
        let comp = run_unfold(&task.system, &task.utterances);
        // Same decode against the *uncompressed* models: quantization impact.
        let decoder = OtfDecoder::new(DecodeConfig::default());
        let mut plain = WerReport::default();
        for utt in &task.utterances {
            let res = decoder.decode(
                &task.system.am.fst,
                &task.system.lm_fst,
                &utt.scores,
                &mut NullSink,
            );
            plain.accumulate(wer(&utt.words, &res.words));
        }
        let paper_wer = paper::TABLE6_WER.get(i).copied().unwrap_or(f64::NAN);
        row(&[
            task.name().into(),
            fmt2(paper_wer),
            fmt2(comp.wer.percent()),
            fmt2(plain.percent()),
            fmt2((comp.wer.percent() - plain.percent()).abs()),
        ]);
    }
    println!("\nPaper claim: compression/quantization adds < 0.01% WER.");
}
