//! §3.1 ablation: dedicated LM arc cache vs routing LM fetches through
//! the AM arc cache ("we found it beneficial for performance to have a
//! dedicated cache for this task").

use unfold::experiments::run_unfold_configured;
use unfold_bench::{build_all, header, row};
use unfold_decoder::DecodeConfig;
use unfold_sim::{AcceleratorConfig, CacheConfig};

fn main() {
    println!("# Ablation — split AM/LM arc caches vs a unified arc cache\n");
    header(&[
        "Task",
        "Split cycles",
        "Unified cycles",
        "Split advantage %",
        "LM miss % (split)",
    ]);
    for task in build_all() {
        // Scaled-machine configs so the arc working sets exceed the
        // caches, as at full scale.
        // Split: UNFOLD default geometry (16x AM + 1x LM after scaling).
        let split_cfg = AcceleratorConfig::unfold().scaled_datasets(32);
        // Unified: one arc cache of the combined size serving both.
        let mut unified_cfg = AcceleratorConfig::unfold().scaled_datasets(32);
        let combined = split_cfg.am_arc_cache.capacity_bytes
            + split_cfg.lm_arc_cache.map_or(0, |c| c.capacity_bytes);
        unified_cfg.am_arc_cache = CacheConfig::kib(combined / 1024, 8, 64);
        unified_cfg.lm_arc_cache = None;
        let a = run_unfold_configured(
            &task.system,
            &task.utterances,
            split_cfg,
            DecodeConfig::default(),
        );
        let b = run_unfold_configured(
            &task.system,
            &task.utterances,
            unified_cfg,
            DecodeConfig::default(),
        );
        row(&[
            task.name().into(),
            a.sim.cycles.to_string(),
            b.sim.cycles.to_string(),
            format!(
                "{:+.2}",
                (b.sim.cycles as f64 / a.sim.cycles as f64 - 1.0) * 100.0
            ),
            format!("{:.1}", a.sim.lm_arc_cache.miss_ratio() * 100.0),
        ]);
    }
    println!("\nThe paper keeps the split because the two streams are disjoint and");
    println!("the LM stream needs its own port; with a shared cache LM probes");
    println!("contend with the AM pipeline.");
}
