//! Table 2: compressed WFST sizes, on-the-fly vs fully-composed, and
//! the paper's 8.8x advantage of the split models.

use unfold_bench::{build_all, fmt1, fmt2, header, paper, row};

fn main() {
    println!("# Table 2 — compressed sizes: on-the-fly vs fully-composed\n");
    header(&[
        "Task",
        "On-the-fly+Comp MiB",
        "Fully-Composed+Comp MiB",
        "Advantage measured",
        "Advantage paper",
    ]);
    let mut ratios = Vec::new();
    for (i, task) in build_all().iter().enumerate() {
        let s = task.system.sizes();
        let adv = s.reduction_vs_composed_comp();
        ratios.push(adv);
        let paper_adv = match (
            paper::TABLE2_FULL_COMP_MB.get(i),
            paper::TABLE2_OTF_COMP_MB.get(i),
        ) {
            (Some(f), Some(o)) => f / o,
            _ => f64::NAN,
        };
        row(&[
            task.name().into(),
            fmt2(s.unfold_mib()),
            fmt2(s.composed_comp_mib),
            fmt1(adv),
            fmt1(paper_adv),
        ]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\nAverage advantage: {:.1}x measured vs {:.1}x paper.",
        avg,
        paper::REDUCTION_VS_COMPOSED_COMP
    );
}
