//! §2's pruning trade-off: beam width vs accuracy, search effort, and
//! accelerator speed. "Due to the large search space, pruning of the
//! search graph is also applied to discard unlikely hypotheses."

use unfold::experiments::run_unfold_configured;
use unfold_bench::{build_all, header, row};
use unfold_decoder::DecodeConfig;
use unfold_sim::AcceleratorConfig;

fn main() {
    println!("# Ablation — beam width vs WER / effort / speed\n");
    let tasks = build_all();
    let task = &tasks[0];
    println!("Task: {}\n", task.name());
    header(&[
        "Beam",
        "WER %",
        "Mean active tokens",
        "Tokens created",
        "xRT",
    ]);
    for beam in [2.0f32, 4.0, 6.0, 8.0, 11.0, 14.0, 18.0] {
        let run = run_unfold_configured(
            &task.system,
            &task.utterances,
            AcceleratorConfig::unfold(),
            DecodeConfig::builder()
                .beam(beam)
                .build()
                .expect("valid ablation config"),
        );
        row(&[
            format!("{beam}"),
            format!("{:.2}", run.wer.percent()),
            format!("{:.0}", run.stats.mean_active()),
            run.stats.tokens_created.to_string(),
            format!("{:.0}", run.sim.times_real_time()),
        ]);
    }
    println!("\nShape: WER saturates once the beam covers the true hypothesis;");
    println!("search effort (and decode time) keeps growing — the knee is where");
    println!("production decoders operate.");
}
