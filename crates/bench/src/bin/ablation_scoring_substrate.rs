//! Methodology cross-check: the calibrated score-table synthesizer vs
//! the real GMM front-end.
//!
//! The reproduction's WER numbers come from a controlled error model
//! (DESIGN.md §2). This ablation re-runs a task with an actual
//! diagonal-covariance GMM — features sampled per frame, likelihoods
//! computed with real arithmetic — and shows the same qualitative
//! behavior: near-zero WER when PDFs are separable, graceful
//! degradation as they overlap, and identical system-level orderings.

use unfold::experiments::run_unfold;
use unfold::{System, TaskSpec};
use unfold_bench::{header, row};

fn main() {
    println!("# Ablation — score-table synthesis vs real GMM front-end\n");
    let base = TaskSpec::tiny();
    header(&["Scoring substrate", "WER %", "xRT", "LM lookups", "Audio s"]);

    let table_sys = System::build(&base);
    let utts = table_sys.test_utterances(6);
    let table_run = run_unfold(&table_sys, &utts);
    row(&[
        "calibrated table (default)".into(),
        format!("{:.2}", table_run.wer.percent()),
        format!("{:.0}", table_run.sim.times_real_time()),
        table_run.stats.lm_lookups.to_string(),
        format!("{:.2}", table_run.audio_seconds),
    ]);

    for (label, separation) in [
        ("real GMM, separation 5.0", 5.0f32),
        ("real GMM, separation 0.5", 0.5),
        ("real GMM, separation 0.2", 0.2),
    ] {
        let spec = base.with_real_gmm(12, 2, separation);
        let sys = System::build(&spec);
        let utts = sys.test_utterances(6);
        let run = run_unfold(&sys, &utts);
        row(&[
            label.into(),
            format!("{:.2}", run.wer.percent()),
            format!("{:.0}", run.sim.times_real_time()),
            run.stats.lm_lookups.to_string(),
            format!("{:.2}", run.audio_seconds),
        ]);
    }
    println!("\nThe table substrate controls WER exactly (Table 6 calibration);");
    println!("the GMM substrate produces the same decoding behavior with errors");
    println!("arising from genuine Gaussian overlap.");
}
