//! One-stop summary: the paper's abstract-level claims, measured.

use unfold::experiments::{run_baseline_on, run_gpu, run_unfold};
use unfold_bench::{
    build_all, export_metrics, header, metrics_arg, paper, row, run_unfold_with_metrics,
};

fn main() {
    println!("# UNFOLD reproduction — headline summary\n");
    header(&["Claim", "Paper", "Measured (scaled tasks)"]);
    let tasks = build_all();
    let metrics_path = metrics_arg();
    let mut red = Vec::new();
    let mut red_comp = Vec::new();
    let mut energy_save = Vec::new();
    let mut bw_save = Vec::new();
    let mut dataset_red = Vec::new();
    for task in &tasks {
        let sizes = task.system.sizes();
        red.push(sizes.reduction_vs_composed());
        red_comp.push(sizes.reduction_vs_composed_comp());
        let composed = task.system.composed();
        let reza = run_baseline_on(&task.system, &composed, &task.utterances);
        let unf = match &metrics_path {
            Some(base) => {
                let (unf, metrics) = run_unfold_with_metrics(task);
                let path = if tasks.len() == 1 {
                    base.clone()
                } else {
                    format!("{base}.{}", task.name())
                };
                export_metrics(&metrics, &path);
                unf
            }
            None => run_unfold(&task.system, &task.utterances),
        };
        let gpu = run_gpu(&task.system, &task.utterances);
        energy_save.push(
            (1.0 - unf.sim.energy_mj_per_audio_second() / reza.sim.energy_mj_per_audio_second())
                * 100.0,
        );
        bw_save.push((1.0 - unf.sim.bandwidth_mb_per_s() / reza.sim.bandwidth_mb_per_s()) * 100.0);
        dataset_red.push(
            (sizes.composed_mib + sizes.backend_mib) / (sizes.unfold_mib() + sizes.backend_mib),
        );
        let _ = gpu;
    }
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    row(&[
        "Footprint reduction vs composed".into(),
        format!("{:.0}x", paper::REDUCTION_VS_COMPOSED),
        format!("{:.1}x", avg(&red)),
    ]);
    row(&[
        "Footprint reduction vs composed+comp".into(),
        format!("{:.1}x", paper::REDUCTION_VS_COMPOSED_COMP),
        format!("{:.1}x", avg(&red_comp)),
    ]);
    row(&[
        "Search energy saving vs baseline".into(),
        format!("{:.0}%", paper::ENERGY_SAVINGS_PCT),
        format!("{:.0}%", avg(&energy_save)),
    ]);
    row(&[
        "Memory bandwidth saving".into(),
        format!("{:.0}%", paper::BANDWIDTH_REDUCTION_PCT),
        format!("{:.0}%", avg(&bw_save)),
    ]);
    row(&[
        "Whole-dataset reduction (incl. acoustic model)".into(),
        format!("{:.1}x", paper::OVERALL_DATASET_REDUCTION),
        format!("{:.1}x", avg(&dataset_red)),
    ]);
}
