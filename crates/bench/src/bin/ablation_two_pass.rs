//! §6 ablation: one-pass on-the-fly composition (UNFOLD's choice) vs a
//! two-pass pipeline (AM search with a weak unigram LM, then full-LM
//! rescoring of the n-best list).
//!
//! The paper: "the rescoring phase of the two-pass method cannot be
//! executed until the end of AM search, \[so\] it typically leads to
//! larger latencies ... we selected the one-pass approach".

use unfold_bench::{build_all, header, row};
use unfold_decoder::{wer, DecodeConfig, NullSink, OtfDecoder, TwoPassDecoder, WerReport};

fn main() {
    println!("# Ablation — one-pass vs two-pass on-the-fly decoding (§6)\n");
    header(&[
        "Task",
        "One-pass WER %",
        "Two-pass WER % (n=8)",
        "Avg candidates",
        "Post-utterance LM evals/utt",
    ]);
    for task in build_all() {
        let s = &task.system;
        let one_dec = OtfDecoder::new(DecodeConfig::default());
        let two_dec = TwoPassDecoder::new(DecodeConfig::default(), 8);
        let mut one = WerReport::default();
        let mut two = WerReport::default();
        let mut cands = 0usize;
        let mut evals = 0u64;
        for utt in &task.utterances {
            let r1 = one_dec.decode(&s.am_comp, &s.lm_comp, &utt.scores, &mut NullSink);
            one.accumulate(wer(&utt.words, &r1.words));
            let r2 = two_dec.decode(&s.am_comp, &s.lm_model, &utt.scores, &mut NullSink);
            two.accumulate(wer(&utt.words, &r2.result.words));
            cands += r2.num_candidates;
            evals += r2.rescoring_evals;
        }
        let n = task.utterances.len();
        row(&[
            task.name().into(),
            format!("{:.2}", one.percent()),
            format!("{:.2}", two.percent()),
            format!("{:.1}", cands as f64 / n as f64),
            format!("{:.0}", evals as f64 / n as f64),
        ]);
    }
    println!("\nOne-pass integrates the full LM during the beam search, so it never");
    println!("trails two-pass accuracy, and all its LM work overlaps the search —");
    println!("the two-pass column's LM evaluations all land after the utterance");
    println!("ends, which is the latency penalty the paper cites for rejecting it.");
}
