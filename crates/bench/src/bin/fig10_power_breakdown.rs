//! Figure 10: average power dissipation breakdown, UNFOLD vs the
//! baseline accelerator.

use unfold::experiments::{run_baseline_on, run_unfold};
use unfold_bench::{build_all, header, row};

fn main() {
    println!("# Figure 10 — power breakdown (mW, averaged over decode time)\n");
    let tasks = build_all();
    let task = &tasks[0];
    println!("Task: {}\n", task.name());
    let composed = task.system.composed();
    let unf = run_unfold(&task.system, &task.utterances);
    let reza = run_baseline_on(&task.system, &composed, &task.utterances);

    // Energy is in mJ and time in s, so mJ/s is mW directly.
    let u = &unf.sim;
    let r = &reza.sim;
    header(&["Component", "UNFOLD mW", "Reza et al. mW"]);
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "State cache",
            u.energy.state_cache / u.seconds,
            r.energy.state_cache / r.seconds,
        ),
        (
            "Arc cache(s)",
            (u.energy.am_arc_cache + u.energy.lm_arc_cache) / u.seconds,
            (r.energy.am_arc_cache + r.energy.lm_arc_cache) / r.seconds,
        ),
        (
            "Token cache",
            u.energy.token_cache / u.seconds,
            r.energy.token_cache / r.seconds,
        ),
        (
            "Hash tables",
            u.energy.hash / u.seconds,
            r.energy.hash / r.seconds,
        ),
        (
            "Offset lookup table",
            u.energy.offset_table / u.seconds,
            r.energy.offset_table / r.seconds,
        ),
        (
            "Pipeline",
            u.energy.pipeline / u.seconds,
            r.energy.pipeline / r.seconds,
        ),
        (
            "Main memory (dynamic)",
            u.energy.dram / u.seconds,
            r.energy.dram / r.seconds,
        ),
        (
            "Static (leakage + DRAM background)",
            u.energy.static_energy / u.seconds,
            r.energy.static_energy / r.seconds,
        ),
    ];
    for (name, a, b) in &rows {
        row(&[(*name).into(), format!("{a:.1}"), format!("{b:.1}")]);
    }
    let ut: f64 = rows.iter().map(|x| x.1).sum();
    let rt: f64 = rows.iter().map(|x| x.2).sum();
    row(&["TOTAL".into(), format!("{ut:.1}"), format!("{rt:.1}")]);
    println!("\nPaper shape: main memory dominates and shrinks under UNFOLD; the");
    println!("OLT is a small overhead; UNFOLD dissipates less overall.");
    let olt_share = u.energy.offset_table / u.energy.total() * 100.0;
    println!("Measured OLT share of UNFOLD power: {olt_share:.1}% (paper: 5%).");
}
