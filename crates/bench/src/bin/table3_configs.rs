//! Table 3: accelerator configuration parameters, plus the area
//! estimates of §5.1.

use unfold_bench::paper;
use unfold_sim::AcceleratorConfig;

fn print_config(c: &AcceleratorConfig) {
    println!("## {}", c.name);
    println!("- frequency: {} MHz", c.frequency_mhz);
    let kib = |b: u64| b / 1024;
    println!(
        "- state cache: {} KiB, {}-way, {} B lines",
        kib(c.state_cache.capacity_bytes),
        c.state_cache.ways,
        c.state_cache.line_bytes
    );
    println!(
        "- arc cache (AM/composed): {} KiB, {}-way",
        kib(c.am_arc_cache.capacity_bytes),
        c.am_arc_cache.ways
    );
    match c.lm_arc_cache {
        Some(l) => println!(
            "- LM arc cache: {} KiB, {}-way",
            kib(l.capacity_bytes),
            l.ways
        ),
        None => println!("- LM arc cache: (none)"),
    }
    println!(
        "- token cache: {} KiB, {}-way",
        kib(c.token_cache.capacity_bytes),
        c.token_cache.ways
    );
    println!(
        "- acoustic likelihood buffer: {} KiB",
        kib(c.acoustic_buffer_bytes)
    );
    println!(
        "- hash tables: {} entries, {} KiB",
        c.hash_entries,
        kib(c.hash_entries as u64 * c.hash_entry_bytes)
    );
    match c.offset_table_entries {
        Some(e) => println!(
            "- offset lookup table: {} entries, {} KiB",
            e,
            kib(e as u64 * 6)
        ),
        None => println!("- offset lookup table: (none)"),
    }
    println!("- memory controller: {} in-flight requests", c.max_inflight);
    println!("- total SRAM: {} KiB", kib(c.sram_bytes()));
    println!("- estimated area: {:.1} mm2", c.area_mm2());
    println!();
}

fn main() {
    println!("# Table 3 — accelerator configurations\n");
    let u = AcceleratorConfig::unfold();
    let r = AcceleratorConfig::reza();
    print_config(&u);
    print_config(&r);
    let reduction = (r.area_mm2() - u.area_mm2()) / r.area_mm2() * 100.0;
    println!(
        "Area: UNFOLD {:.1} mm2 (paper {:.1}), reduction vs baseline {:.0}% (paper {:.0}%).",
        u.area_mm2(),
        paper::UNFOLD_AREA_MM2,
        reduction,
        paper::AREA_REDUCTION_PCT
    );
}
