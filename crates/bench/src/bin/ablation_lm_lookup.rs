//! §2 / §5.1 ablation: the LM arc-location ladder.
//!
//! Linear search (paper: 10x slowdown) → sorted arcs + binary search
//! (3x) → binary search + Offset Lookup Table + preemptive pruning
//! (1.18x, the shipped design). We report simulated cycles per audio
//! second for each strategy, normalized to the best configuration; at
//! reproduction scale the absolute factors are smaller (LM states have
//! ~50 arcs instead of thousands) but the ordering is the result.

use unfold_bench::{build_all, header, paper, row};
use unfold_decoder::{DecodeConfig, LinearLm, OtfDecoder};
use unfold_sim::{Accelerator, AcceleratorConfig};

fn main() {
    println!("# Ablation — LM arc-location strategy\n");
    let tasks = build_all();
    let task = tasks.last().expect("a task"); // EESEN: most LM traffic
    println!("Task: {}\n", task.name());
    let s = &task.system;

    // Scaled-machine configs (see DESIGN.md) so LM fetches actually
    // miss, as they do at full scale.
    const SCALE: u64 = 32;
    let no_preempt = DecodeConfig::builder()
        .preemptive_pruning(false)
        .build()
        .expect("valid ablation config");
    let mut no_olt = AcceleratorConfig::unfold().scaled_datasets(SCALE);
    no_olt.offset_table_entries = None;

    // Linear search, no OLT, no preemptive pruning.
    let mut accel = Accelerator::new(no_olt);
    let dec = OtfDecoder::new(no_preempt);
    let mut audio = 0.0;
    for utt in &task.utterances {
        dec.decode(&s.am_comp, &LinearLm(&s.lm_fst), &utt.scores, &mut accel);
        audio += utt.audio_seconds();
    }
    let linear_rep = accel.finish(audio);
    let linear = linear_rep.cycles as f64;

    // Binary search, no OLT, no preemptive pruning.
    let mut accel = Accelerator::new(no_olt);
    for utt in &task.utterances {
        dec.decode(&s.am_comp, &s.lm_comp, &utt.scores, &mut accel);
    }
    let binary_rep = accel.finish(audio);
    let binary = binary_rep.cycles as f64;

    // Binary + OLT + preemptive pruning (the shipped UNFOLD).
    let mut accel = Accelerator::new(AcceleratorConfig::unfold().scaled_datasets(SCALE));
    let dec_full = OtfDecoder::new(DecodeConfig::default());
    for utt in &task.utterances {
        dec_full.decode(&s.am_comp, &s.lm_comp, &utt.scores, &mut accel);
    }
    let full_rep = accel.finish(audio);
    let full = full_rep.cycles as f64;

    header(&[
        "Strategy",
        "Cycles (norm.)",
        "LM arc fetches",
        "Paper slowdown vs baseline",
    ]);
    row(&[
        "linear search".into(),
        format!("{:.2}", linear / full),
        linear_rep.lm_fetches_charged.to_string(),
        format!("{:.1}x", paper::LINEAR_SEARCH_SLOWDOWN),
    ]);
    row(&[
        "binary search".into(),
        format!("{:.2}", binary / full),
        binary_rep.lm_fetches_charged.to_string(),
        format!("{:.1}x", paper::BINARY_SEARCH_SLOWDOWN),
    ]);
    row(&[
        "binary + OLT + preemptive pruning".into(),
        "1.00".into(),
        full_rep.lm_fetches_charged.to_string(),
        format!("{:.2}x", paper::FINAL_SLOWDOWN),
    ]);
    assert!(
        linear >= binary && binary >= full,
        "ladder ordering must hold"
    );
    assert!(
        linear_rep.lm_fetches_charged > binary_rep.lm_fetches_charged
            && binary_rep.lm_fetches_charged > full_rep.lm_fetches_charged,
        "fetch-count ladder must hold"
    );
    println!("\nOrdering preserved (cycles and fetch counts):");
    println!("linear > binary > binary+OLT+pruning. At reproduction scale the");
    println!("compressed LM is nearly cache-resident, so the cycle gap is far");
    println!("smaller than the paper's full-size 10x/3x/1.18x; the fetch-count");
    println!("column shows the architectural mechanism at full strength.");
}
