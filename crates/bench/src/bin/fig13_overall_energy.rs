//! Figure 13: overall ASR-system energy (scoring on GPU + search on
//! each platform).

use unfold::experiments::{run_baseline_on, run_gpu, run_unfold};
use unfold_bench::{build_all, header, paper, row};

fn main() {
    println!("# Figure 13 — overall ASR energy per second of speech (mJ)\n");
    header(&[
        "Task",
        "Tegra X1 only",
        "GPU + Reza",
        "GPU + UNFOLD",
        "Reduction vs GPU",
    ]);
    let mut reductions = Vec::new();
    for task in build_all() {
        let composed = task.system.composed();
        let gpu = run_gpu(&task.system, &task.utterances);
        let reza = run_baseline_on(&task.system, &composed, &task.utterances);
        let unf = run_unfold(&task.system, &task.utterances);
        let audio = gpu.audio_seconds;
        let gpu_only = (gpu.search_energy_mj + gpu.scoring_energy_mj) / audio;
        let hybrid_reza = (gpu.scoring_energy_mj + reza.sim.total_energy_mj()) / audio;
        let hybrid_unfold = (gpu.scoring_energy_mj + unf.sim.total_energy_mj()) / audio;
        let red = gpu_only / hybrid_unfold;
        reductions.push(red);
        row(&[
            task.name().into(),
            format!("{gpu_only:.2}"),
            format!("{hybrid_reza:.2}"),
            format!("{hybrid_unfold:.2}"),
            format!("{red:.1}x"),
        ]);
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!(
        "\nAverage overall energy reduction vs GPU-only: {:.1}x measured (paper ~{:.1}x);",
        avg,
        paper::OVERALL_ENERGY_REDUCTION
    );
    println!("after accelerating the search, scoring on the GPU dominates, so the");
    println!("two hybrid systems land close together — exactly the paper's point.");
}
