//! Figure 12: overall ASR-system decoding time (acoustic scoring on the
//! GPU + search on each platform).

use unfold::experiments::{run_baseline_on, run_gpu, run_unfold};
use unfold_bench::{build_all, header, paper, row};
use unfold_sim::{batch_pipeline, GpuModel};

fn main() {
    println!("# Figure 12 — overall ASR decode time per second of speech (ms)\n");
    header(&[
        "Task",
        "Tegra X1 only",
        "GPU + Reza",
        "GPU + UNFOLD",
        "Speedup vs GPU",
    ]);
    let gpu_model = GpuModel::default();
    let mut speedups = Vec::new();
    for task in build_all() {
        let composed = task.system.composed();
        let gpu = run_gpu(&task.system, &task.utterances);
        let reza = run_baseline_on(&task.system, &composed, &task.utterances);
        let unf = run_unfold(&task.system, &task.utterances);
        let frames = (gpu.audio_seconds * 100.0) as usize;
        let gpu_only = gpu.total_seconds();
        // §5.2 batch pipeline: 100-frame (1 s) batches through the
        // shared score buffer.
        let batches = (frames / 100).max(1);
        let scoring_per_batch =
            gpu_model.scoring_seconds(&task.system.spec.backend, frames) / batches as f64;
        let hybrid_reza = batch_pipeline(
            scoring_per_batch,
            reza.sim.seconds / batches as f64,
            batches,
        )
        .makespan_s;
        let hybrid_unfold =
            batch_pipeline(scoring_per_batch, unf.sim.seconds / batches as f64, batches).makespan_s;
        let per_s = 1e3 / gpu.audio_seconds;
        let speedup = gpu_only / hybrid_unfold;
        speedups.push(speedup);
        row(&[
            task.name().into(),
            format!("{:.2}", gpu_only * per_s),
            format!("{:.2}", hybrid_reza * per_s),
            format!("{:.2}", hybrid_unfold * per_s),
            format!("{speedup:.1}x"),
        ]);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "\nAverage overall speedup vs GPU-only: {:.1}x measured (paper ~{:.1}x);",
        avg,
        paper::OVERALL_SPEEDUP_VS_GPU
    );
    println!("the two hybrid systems perform similarly, as in the paper.");
}
