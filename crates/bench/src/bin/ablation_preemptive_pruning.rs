//! §3.3 ablation: preemptive pruning in the back-off mechanism.
//!
//! Paper: 22.5% of hypotheses pruned, 16.3% performance improvement,
//! with zero accuracy impact (only doomed hypotheses are discarded).

use unfold_bench::{build_all, header, paper, row};
use unfold_decoder::{DecodeConfig, OtfDecoder};
use unfold_sim::{Accelerator, AcceleratorConfig};

fn main() {
    println!("# Ablation — preemptive pruning (§3.3)\n");
    header(&[
        "Task",
        "LM fetches saved %",
        "Hypotheses pruned (of LM walks) %",
        "Cycle speedup %",
        "Words identical",
    ]);
    for task in build_all() {
        let s = &task.system;
        let run = |preempt: bool| {
            let dec = OtfDecoder::new(
                DecodeConfig::builder()
                    .preemptive_pruning(preempt)
                    .build()
                    .expect("valid ablation config"),
            );
            let mut accel = Accelerator::new(AcceleratorConfig::unfold().scaled_datasets(32));
            let mut words = Vec::new();
            let mut stats = unfold_decoder::DecodeStats::default();
            let mut audio = 0.0;
            for utt in &task.utterances {
                let r = dec.decode(&s.am_comp, &s.lm_comp, &utt.scores, &mut accel);
                words.push(r.words);
                stats.lm_fetches += r.stats.lm_fetches;
                stats.lm_lookups += r.stats.lm_lookups;
                stats.preemptive_prunes += r.stats.preemptive_prunes;
                audio += utt.audio_seconds();
            }
            (accel.finish(audio).cycles, stats, words)
        };
        let (c_on, s_on, w_on) = run(true);
        let (c_off, s_off, w_off) = run(false);
        let fetch_saved = (1.0 - s_on.lm_fetches as f64 / s_off.lm_fetches.max(1) as f64) * 100.0;
        let pruned_pct = 100.0 * s_on.preemptive_prunes as f64 / s_on.lm_lookups.max(1) as f64;
        let speedup = (c_off as f64 / c_on as f64 - 1.0) * 100.0;
        row(&[
            task.name().into(),
            format!("{fetch_saved:.1}"),
            format!("{pruned_pct:.1}"),
            format!("{speedup:.2}"),
            (w_on == w_off).to_string(),
        ]);
    }
    println!(
        "\nPaper: {:.1}% of hypotheses pruned, {:.1}% speedup, no accuracy change.",
        paper::PREEMPTIVE_PRUNED_PCT,
        paper::PREEMPTIVE_SPEEDUP_PCT
    );
    println!("(At reproduction scale back-off walks are shorter, so the measured");
    println!("magnitudes are smaller; correctness-neutrality is exact.)");
}
