//! Figure 6: cache miss ratio vs capacity for the State, AM-arc,
//! LM-arc, and Token caches.
//!
//! The paper sweeps 32 KB - 1 MB on the full-size models; the
//! reproduction's datasets are ~75x smaller, so the sweep covers a
//! proportionally smaller range (1-64 KiB) — the curve *shape* (misses
//! collapse once the working set fits; token misses stay compulsory) is
//! the result.

use unfold_bench::{build_all, fmt1, header, row};
use unfold_decoder::{DecodeConfig, OtfDecoder, TraceRecorder};
use unfold_sim::{Accelerator, AcceleratorConfig, CacheConfig};

fn main() {
    println!("# Figure 6 — miss ratio (%) vs cache capacity\n");
    let tasks = build_all();
    let task = &tasks[0];
    println!("Task: {}\n", task.name());

    // Record the decode trace once; replay it through every cache
    // configuration (the trace is configuration-independent).
    let decoder = OtfDecoder::new(DecodeConfig::default());
    let mut trace = TraceRecorder::new();
    let mut audio = 0.0;
    for utt in &task.utterances {
        decoder.decode(
            &task.system.am_comp,
            &task.system.lm_comp,
            &utt.scores,
            &mut trace,
        );
        audio += utt.audio_seconds();
    }

    header(&["Capacity KiB", "State", "AM arc", "LM arc", "Token"]);
    for kib in [1u64, 2, 4, 8, 16, 32, 64] {
        let mut cfg = AcceleratorConfig::unfold();
        cfg.state_cache = CacheConfig::kib(kib, 4, 64);
        cfg.am_arc_cache = CacheConfig::kib(kib, 8.min(kib as usize * 16), 64);
        cfg.lm_arc_cache = Some(CacheConfig::kib(kib, 4, 64));
        cfg.token_cache = CacheConfig::kib(kib, 2, 64);
        let mut accel = Accelerator::new(cfg);
        trace.replay(&mut accel);
        let sim = accel.finish(audio);
        row(&[
            kib.to_string(),
            fmt1(sim.state_cache.miss_ratio() * 100.0),
            fmt1(sim.am_arc_cache.miss_ratio() * 100.0),
            fmt1(sim.lm_arc_cache.miss_ratio() * 100.0),
            fmt1(sim.token_cache.miss_ratio() * 100.0),
        ]);
    }
    println!("\nPaper shape: state/arc misses fall below 1% once capacity covers");
    println!("the working set; token misses flatten at compulsory-miss levels.");
}
