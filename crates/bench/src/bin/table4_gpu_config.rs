//! Table 4: GPU configuration parameters — the Tegra X1 the paper's
//! software baselines run on, next to this reproduction's analytic
//! model constants.

use unfold_bench::{header, row};
use unfold_sim::GpuModel;

fn main() {
    println!("# Table 4 — GPU configuration\n");
    println!("## Paper (NVIDIA Tegra X1, measured hardware)\n");
    header(&["Parameter", "Value"]);
    row(&[
        "Streaming multiprocessors".into(),
        "2 (2,048 threads each)".into(),
    ]);
    row(&["Technology".into(), "20 nm".into()]);
    row(&["Frequency".into(), "1.0 GHz".into()]);
    row(&["Level-2 cache".into(), "256 KiB".into()]);
    println!("\n## This reproduction (analytic model; see `unfold_sim::gpu`)\n");
    let g = GpuModel::default();
    header(&["Parameter", "Value"]);
    row(&[
        "Viterbi cost".into(),
        format!("{} µs per created token", g.viterbi_us_per_token),
    ]);
    row(&["Viterbi power".into(), format!("{} W", g.viterbi_power_w)]);
    row(&[
        "DNN scoring throughput".into(),
        format!("{:.0} GFLOP/s sustained", g.dnn_flops_per_s / 1e9),
    ]);
    row(&[
        "GMM scoring throughput".into(),
        format!("{:.0} GFLOP/s sustained", g.gmm_flops_per_s / 1e9),
    ]);
    row(&[
        "LSTM scoring throughput".into(),
        format!("{:.1} GFLOP/s sustained", g.lstm_flops_per_s / 1e9),
    ]);
    row(&["Scoring power".into(), format!("{} W", g.scoring_power_w)]);
    println!("\nThe hardware parameters are replaced by sustained-rate constants");
    println!("calibrated to the paper's own reported breakdowns (Figure 1, §5.1);");
    println!("DESIGN.md §2 documents the substitution.");
}
