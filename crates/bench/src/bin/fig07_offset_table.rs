//! Figure 7: Offset Lookup Table capacity vs miss ratio and speedup.

use unfold_bench::{build_all, fmt1, header, row};
use unfold_decoder::{DecodeConfig, OtfDecoder, TraceRecorder};
use unfold_sim::{Accelerator, AcceleratorConfig};

fn main() {
    println!("# Figure 7 — Offset Lookup Table size vs miss ratio / speedup\n");
    let tasks = build_all();
    let task = tasks.last().expect("at least one task"); // EESEN: most LM traffic
    println!("Task: {}\n", task.name());

    // Scaled-machine methodology (see DESIGN.md): capacities shrink by
    // the dataset scale factor so the LM working set exceeds its cache,
    // as at full scale — otherwise every probe hits and the OLT's DRAM
    // savings are invisible.
    const SCALE: u64 = 32;

    // Record once, replay per OLT size.
    let decoder = OtfDecoder::new(DecodeConfig::default());
    let mut trace = TraceRecorder::new();
    let mut audio = 0.0;
    for utt in &task.utterances {
        decoder.decode(
            &task.system.am_comp,
            &task.system.lm_comp,
            &utt.scores,
            &mut trace,
        );
        audio += utt.audio_seconds();
    }
    let simulate = |entries: Option<usize>| {
        let mut cfg = AcceleratorConfig::unfold().scaled_datasets(SCALE);
        cfg.offset_table_entries = entries;
        let mut accel = Accelerator::new(cfg);
        trace.replay(&mut accel);
        accel.finish(audio)
    };

    // Reference: no OLT at all.
    let base = simulate(None);
    println!("LM arc fetches without OLT: {}\n", base.lm_fetches_charged);
    header(&[
        "OLT entries",
        "Miss ratio %",
        "LM fetches eliminated %",
        "Speedup vs no-OLT",
    ]);
    for entries in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let sim = simulate(Some(entries));
        row(&[
            entries.to_string(),
            fmt1(sim.olt.miss_ratio() * 100.0),
            fmt1((1.0 - sim.lm_fetches_charged as f64 / base.lm_fetches_charged as f64) * 100.0),
            format!("{:.3}", base.cycles as f64 / sim.cycles as f64),
        ]);
    }
    println!("\nPaper shape: bigger tables miss less and speed up the search;");
    println!("the paper picks 32K entries (192 KB) at ~1.3x over small tables.");
}
