//! Shared machinery for the per-figure binaries.

use unfold::{System, TaskSpec};
use unfold_am::Utterance;

/// One built task plus its test batch.
pub struct TaskRun {
    /// The built system.
    pub system: System,
    /// Test utterances.
    pub utterances: Vec<Utterance>,
}

impl TaskRun {
    /// The task name.
    pub fn name(&self) -> &'static str {
        self.system.spec.name
    }
}

/// Test utterances per task (`UNFOLD_UTTS`, default 8).
pub fn utterance_count() -> usize {
    std::env::var("UNFOLD_UTTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Builds every paper task (or just the tiny task under
/// `UNFOLD_SMOKE=1`) with its utterance batch.
pub fn build_all() -> Vec<TaskRun> {
    let smoke = std::env::var("UNFOLD_SMOKE").map_or(false, |v| v == "1");
    let specs = if smoke { vec![TaskSpec::tiny()] } else { TaskSpec::all_paper_tasks() };
    let n = utterance_count();
    specs
        .into_iter()
        .map(|spec| {
            let system = System::build(&spec);
            let utterances = system.test_utterances(n);
            TaskRun { system, utterances }
        })
        .collect()
}

/// Prints a Markdown header row + separator.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Prints a Markdown data row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats with one decimal.
pub fn fmt1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats with two decimals.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_utterance_count() {
        // (environment-dependent, but the default path must parse)
        assert!(utterance_count() >= 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt1(3.14159), "3.1");
        assert_eq!(fmt2(3.14159), "3.14");
    }
}
