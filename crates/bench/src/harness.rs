//! Shared machinery for the per-figure binaries.

use unfold::experiments::{run_unfold_traced, SystemRun};
use unfold::{System, TaskSpec};
use unfold_am::Utterance;
use unfold_decoder::MetricsSink;

/// One built task plus its test batch.
pub struct TaskRun {
    /// The built system.
    pub system: System,
    /// Test utterances.
    pub utterances: Vec<Utterance>,
}

impl TaskRun {
    /// The task name.
    pub fn name(&self) -> &'static str {
        self.system.spec.name
    }
}

/// Test utterances per task (`UNFOLD_UTTS`, default 8).
pub fn utterance_count() -> usize {
    std::env::var("UNFOLD_UTTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Builds every paper task (or just the tiny task under
/// `UNFOLD_SMOKE=1`) with its utterance batch.
pub fn build_all() -> Vec<TaskRun> {
    let smoke = std::env::var("UNFOLD_SMOKE").is_ok_and(|v| v == "1");
    let specs = if smoke {
        vec![TaskSpec::tiny()]
    } else {
        TaskSpec::all_paper_tasks()
    };
    let n = utterance_count();
    specs
        .into_iter()
        .map(|spec| {
            let system = System::build(&spec);
            let utterances = system.test_utterances(n);
            TaskRun { system, utterances }
        })
        .collect()
}

/// The `--metrics <file>` argument, if the binary was invoked with one
/// (`UNFOLD_METRICS=<file>` works too). Binaries that honor it export
/// decode-time telemetry as JSONL next to their Markdown output.
pub fn metrics_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("UNFOLD_METRICS").ok())
}

/// [`unfold::experiments::run_unfold`] with telemetry: returns the run
/// plus the sink holding its stage/frame records.
pub fn run_unfold_with_metrics(task: &TaskRun) -> (SystemRun, MetricsSink) {
    let mut metrics = MetricsSink::new();
    let run = run_unfold_traced(&task.system, &task.utterances, &mut metrics);
    (run, metrics)
}

/// Writes a sink's telemetry to `path` as JSONL (one record per frame
/// and per stage) and prints a receipt to stderr so the Markdown table
/// on stdout stays clean.
pub fn export_metrics(metrics: &MetricsSink, path: &str) {
    match std::fs::write(path, metrics.to_jsonl()) {
        Ok(()) => eprintln!(
            "metrics: {} frame records -> {path}",
            metrics.frames().total_seen()
        ),
        Err(e) => eprintln!("metrics: failed to write {path}: {e}"),
    }
}

/// Prints a Markdown header row + separator.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints a Markdown data row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats with one decimal.
pub fn fmt1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats with two decimals.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_utterance_count() {
        // (environment-dependent, but the default path must parse)
        assert!(utterance_count() >= 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt1(12.3456), "12.3");
        assert_eq!(fmt2(12.3456), "12.35");
    }
}
