#![warn(missing_docs)]

//! Command-line interface for the UNFOLD reproduction.
//!
//! Subcommands:
//!
//! * `build`    — build a task's models and write the compressed
//!   `.unfa`/`.unfl` files plus an ARPA dump of the LM,
//! * `pack`     — build a task's models and write one `.unfb` bundle
//!   (AM + one or more named LMs + symbols + metadata),
//! * `inspect`  — print a bundle's section table and metadata after
//!   verifying every checksum,
//! * `decode`   — load compressed models and decode synthesized test
//!   utterances, printing transcripts and WER,
//! * `simulate` — run the accelerator model (UNFOLD or the baseline)
//!   over a task and print the performance/energy summary,
//! * `profile`  — decode with telemetry enabled and print the stage
//!   breakdown plus frame-latency percentiles,
//! * `sizes`    — print the dataset size table for a task,
//! * `verify`   — replay an `unfold-verify` repro file through the full
//!   differential check matrix,
//! * `serve`    — run the multi-session streaming decode server on a
//!   TCP port until a client sends `Shutdown`,
//! * `loadgen`  — drive a closed-loop load test against a running
//!   server and write the latency report to `BENCH_serve.json`,
//!   optionally scraping live stats mid-run,
//! * `stats`    — scrape a running server's live metrics over the wire
//!   (text table or run-record JSONL; `--dump` appends the flight
//!   recorder and closed session spans).
//!
//! `decode`, `simulate`, and `profile` accept `--metrics <file>` to
//! export the per-frame/per-stage telemetry as JSONL.
//!
//! All argument parsing is plain `std`; [`run`] returns the output as a
//! string so every command is unit-testable.

use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;

use unfold::experiments::{
    run_baseline_configured_jobs, run_baseline_traced_jobs, run_unfold_jobs,
    run_unfold_traced_jobs, SystemRun,
};
use unfold::{decode_batch_recorded, pack_system, AmModel, LmModel, Models, System, TaskSpec};
use unfold_compress::{load_am, load_lm, save_am, save_lm, Bundle};
use unfold_decoder::{wer, DecodeConfig, MetricsSink, NullSink, OtfDecoder, TraceSink, WerReport};
use unfold_serve::{
    run_bias_compare, run_loadgen, run_saturation_sweep, saturation_ladder, BiasCompare, ClientMsg,
    LoadgenConfig, PipelineCompare, ServeConfig, Server, ServerMsg, TcpFront,
};
use unfold_sim::AcceleratorConfig;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: unfold-cli <command> [options]

commands:
  build    --task <name> --out <dir>        build models, write .unfa/.unfl/.arpa
  pack     --task <name> --out <file>       build models, write one .unfb bundle
           [--lm-variants N]                ... with N extra domain-variant LMs
  inspect  --bundle <file> [--mmap]         verify + print a bundle's section table
  decode   --task <name> [--utterances N]   decode test utterances (WER report)
           [--am <file> --lm <file>]        ... using previously saved models
           [--bundle <file> [--mmap]]       ... using a packed bundle (zero-copy
           [--model <lm-name>]                  with --mmap), picking a bundled LM
           [--nbest K]                      ... printing K-best hypotheses
           [--lattice-beam B]               ... word-lattice pruning beam for
                                                --nbest/--confidence (default 8)
           [--confidence]                   ... per-word time spans + lattice
                                                posterior confidences
           [--jobs N]                       ... on N parallel workers (same output;
                                                0 = one per available core)
           [--metrics <file>]               ... exporting telemetry as JSONL
  simulate --task <name> [--utterances N]   accelerator performance/energy summary
           [--baseline]                     ... on the Reza et al. baseline instead
           [--jobs N]                       ... decode on N workers (0 = all cores),
                                                replay serially
           [--metrics <file>]               ... exporting telemetry as JSONL
  profile  --task <name> [--utterances N]   stage breakdown + frame latency percentiles
           [--baseline] [--metrics <file>]
  sizes    --task <name>                    dataset size table
  verify   --repro <file>                   replay an unfold-verify repro file
  serve    --task <name> [--port N]         multi-session streaming decode server;
           [--bundle <file> [--mmap]]       ... hosting a packed bundle's models
                                                (every bundled LM is selectable
                                                per session by name)
           [--port-file <file>]             ... write the bound port to a file
           [--workers N] [--capacity N]     ... decode threads (0 = all cores) and
           [--quantum N] [--deadline-ms N]      session slots / scheduler knobs
           [--idle-timeout-ms N] [--olt N]      runs until a client sends Shutdown
           [--scoring-workers N]            ... enable the two-stage pipeline: N
                                                threads batch acoustic scoring
                                                across sessions, the rest search
           [--scorer-batch N] [--search-lag N]  frames per scoring call / max
                                                frames search may trail scoring
  loadgen  --task <name>                    closed-loop load test against `serve`
           --addr <ip:port> | --port N | --port-file <file>
           [--sessions N] [--concurrency N]
           [--chunk N] [--utterances N]     ... frames per message, distinct utts
           [--scrape-every N]               ... poll live stats every N ms mid-run
                                                (checks counters stay monotonic and
                                                the frame ledger reconciles)
           [--flight-out <file>]            ... write the flight-recorder dump
           [--bias-users N]                 ... mint N distinct per-user biasing
                                                models, register them over the
                                                wire, and open every session
                                                personalized (round-robin)
           [--saturate]                     ... after the main run, sweep client
           [--saturate-max N]                   concurrency 1,2,4..N (default 4x
                                                --concurrency) and record the
                                                sessions-vs-p99/deadline-miss curve
           [--compare-pipeline]             ... self-hosted A/B: run the same
           [--workers N]                        saturation ladder against a
           [--scoring-workers N]                lockstep and a pipelined server
           [--scorer-batch N] [--search-lag N]  with equal thread budgets (no
                                                --addr needed) and record both
                                                curves + knees in the report
           [--out <file>] [--shutdown]      ... report path (default
                                                BENCH_serve.json), stop the server
  stats    --addr <ip:port> | --port N | --port-file <file>
           [--json]                         live server metrics as a text table
                                                (or the raw run-record JSONL)
           [--dump]                         ... append flight + span JSONL
           [--shutdown]                     ... stop the server after scraping

tasks: tedlium | librispeech | voxforge | eesen | tiny
exit status: 0 success, 1 runtime failure (i/o, corrupt bundle, ...), 2 usage
";

/// The CLI's top-level error: every failure a subcommand can hit,
/// with the underlying cause preserved through
/// [`std::error::Error::source`] so `main` can print the whole chain.
///
/// Process exit codes (see `main.rs`): usage problems exit 2,
/// everything else (I/O, corrupt bundles, invalid configs, serve
/// failures) exits 1.
#[derive(Debug)]
pub enum Error {
    /// No or unknown subcommand / flag.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// A model bundle failed to write, open, or verify.
    Bundle(unfold_compress::BundleError),
    /// A decode configuration was rejected by its validator.
    Config(unfold_decoder::ConfigError),
    /// The serve layer refused an operation.
    Serve(unfold_serve::ServeError),
}

impl Error {
    /// The process exit code this error maps to: 2 for usage errors
    /// (mirrors `EX_USAGE`-style conventions), 1 for runtime failures.
    pub fn exit_code(&self) -> i32 {
        match self {
            Error::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Usage(m) => write!(f, "{m}"),
            Error::Io(e) => write!(f, "i/o: {e}"),
            Error::Bundle(e) => write!(f, "bundle: {e}"),
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Usage(_) => None,
            Error::Io(e) => Some(e),
            Error::Bundle(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Serve(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<unfold_compress::BundleError> for Error {
    fn from(e: unfold_compress::BundleError) -> Self {
        Error::Bundle(e)
    }
}

impl From<unfold_decoder::ConfigError> for Error {
    fn from(e: unfold_decoder::ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<unfold_serve::ServeError> for Error {
    fn from(e: unfold_serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

fn task_by_name(name: &str) -> Result<TaskSpec, Error> {
    match name {
        "tedlium" => Ok(TaskSpec::tedlium_kaldi()),
        "librispeech" => Ok(TaskSpec::librispeech()),
        "voxforge" => Ok(TaskSpec::voxforge()),
        "eesen" => Ok(TaskSpec::tedlium_eesen()),
        "tiny" => Ok(TaskSpec::tiny()),
        other => Err(Error::Usage(format!("unknown task '{other}'"))),
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Flags<'a> {
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String], switches: &[&str]) -> Result<Self, Error> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| Error::Usage(format!("expected a flag, got '{}'", args[i])))?;
            if switches.contains(&key) {
                pairs.push((key, None));
                i += 1;
            } else {
                let val = args
                    .get(i + 1)
                    .ok_or_else(|| Error::Usage(format!("--{key} needs a value")))?;
                pairs.push((key, Some(val.as_str())));
                i += 2;
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| *k == key)
    }

    fn require(&self, key: &str) -> Result<&str, Error> {
        self.get(key)
            .ok_or_else(|| Error::Usage(format!("missing --{key}")))
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, Error> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::Usage(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    fn f32_or(&self, key: &str, default: f32) -> Result<f32, Error> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::Usage(format!("--{key} expects a number, got '{v}'"))),
        }
    }
}

/// Executes a CLI invocation and returns its stdout text.
///
/// # Errors
/// Returns [`Error`] on bad arguments or filesystem failures.
pub fn run(args: &[String]) -> Result<String, Error> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| Error::Usage("no command given".into()))?;
    match cmd.as_str() {
        "build" => cmd_build(rest),
        "pack" => cmd_pack(rest),
        "inspect" => cmd_inspect(rest),
        "decode" => cmd_decode(rest),
        "simulate" => cmd_simulate(rest),
        "profile" => cmd_profile(rest),
        "sizes" => cmd_sizes(rest),
        "verify" => cmd_verify(rest),
        "serve" => cmd_serve(rest),
        "loadgen" => cmd_loadgen(rest),
        "stats" => cmd_stats(rest),
        other => Err(Error::Usage(format!("unknown command '{other}'"))),
    }
}

/// Resolves a `--jobs`/`--workers` count: `0` means one worker per
/// available core (so scripts can say "use the machine" without
/// hard-coding a count that oversubscribes small boxes).
fn resolve_jobs(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        n
    }
}

fn cmd_build(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &[])?;
    let spec = task_by_name(flags.require("task")?)?;
    let out = PathBuf::from(flags.require("out")?);
    std::fs::create_dir_all(&out)?;
    let system = System::build(&spec);
    let am_path = out.join(format!("{}.unfa", spec.name));
    let lm_path = out.join(format!("{}.unfl", spec.name));
    let arpa_path = out.join(format!("{}.arpa", spec.name));
    save_am(&system.am_comp, &am_path)?;
    save_lm(&system.lm_comp, &lm_path)?;
    std::fs::write(&arpa_path, unfold_lm::to_arpa(&system.lm_model))?;
    let mut s = String::new();
    let _ = writeln!(s, "task: {}", spec.name);
    let _ = writeln!(
        s,
        "AM:   {} ({} bytes)",
        am_path.display(),
        system.am_comp.size_bytes()
    );
    let _ = writeln!(
        s,
        "LM:   {} ({} bytes)",
        lm_path.display(),
        system.lm_comp.size_bytes()
    );
    let _ = writeln!(s, "ARPA: {}", arpa_path.display());
    Ok(s)
}

fn cmd_pack(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &[])?;
    let spec = task_by_name(flags.require("task")?)?;
    let out = PathBuf::from(flags.require("out")?);
    let variants = flags.usize_or("lm-variants", 0)?;
    let system = System::build(&spec);
    // Variant seeds are the ordinals 1..=N so the bundled LMs get
    // predictable names ("variant-1", ...) regardless of the task.
    let seeds: Vec<u64> = (1..=variants as u64).collect();
    let bytes = pack_system(&system, &seeds)?;
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&out, &bytes)?;
    let bundle = Bundle::from_bytes(bytes)?;
    let mut s = String::new();
    let _ = writeln!(s, "task:   {}", spec.name);
    let _ = writeln!(
        s,
        "bundle: {} ({} bytes, {} sections)",
        out.display(),
        bundle.bytes().len(),
        bundle.sections().len()
    );
    let _ = writeln!(s, "LMs:    {}", bundle.lm_names().join(", "));
    Ok(s)
}

/// Renders a bundle's section table (used by `inspect` and tests).
fn bundle_report(bundle: &Bundle, path: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "bundle: {path} ({} bytes, {})",
        bundle.bytes().len(),
        if bundle.is_mapped() {
            "memory-mapped"
        } else {
            "owned"
        }
    );
    let _ = writeln!(
        s,
        "{:<8} {:<24} {:>10} {:>10}  crc64",
        "kind", "name", "offset", "bytes"
    );
    for sec in bundle.sections() {
        let _ = writeln!(
            s,
            "{:<8} {:<24} {:>10} {:>10}  {:016x}",
            sec.kind.tag(),
            sec.name,
            sec.offset,
            sec.len,
            sec.crc
        );
    }
    if let Ok(Some(task)) = bundle.meta("task") {
        let _ = writeln!(s, "meta.task: {}", String::from_utf8_lossy(task));
    }
    let _ = writeln!(s, "LMs: {}", bundle.lm_names().join(", "));
    for name in bundle.bias_names() {
        let parsed = bundle
            .bias_bytes(name)
            .map_err(|e| e.to_string())
            .and_then(|b| unfold_bias::BiasingFst::from_bytes(b).map_err(|e| e.to_string()));
        match parsed {
            Ok(bias) => {
                let _ = writeln!(
                    s,
                    "bias.{name}: {} phrases, {} states, {} bytes",
                    bias.num_phrases(),
                    bias.num_states(),
                    bias.byte_len()
                );
            }
            Err(err) => {
                let _ = writeln!(s, "bias.{name}: unreadable ({err})");
            }
        }
    }
    s
}

fn cmd_inspect(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &["mmap"])?;
    let path = flags.require("bundle")?;
    let bundle = if flags.has("mmap") {
        Bundle::open_mmap(path.as_ref())?
    } else {
        Bundle::open(path.as_ref())?
    };
    // `inspect` is the integrity check, so verify everything eagerly
    // even on a lazily-checked mmap open.
    bundle.verify_all()?;
    let mut s = bundle_report(&bundle, path);
    let _ = writeln!(s, "checksums: all sections verified");
    Ok(s)
}

/// Synthesizes the test utterances, profiled as the acoustic-scoring
/// stage: in this software stack likelihood evaluation happens up front
/// rather than interleaved with the search, so it is its own span.
fn scored_utterances(
    system: &System,
    n: usize,
    metrics: &mut MetricsSink,
) -> Vec<unfold_am::Utterance> {
    metrics
        .stages_mut()
        .scoped("acoustic_scoring", || system.test_utterances(n))
}

/// Writes a sink's telemetry as JSONL and returns a one-line receipt.
fn export_metrics(metrics: &MetricsSink, path: &str) -> Result<String, Error> {
    std::fs::write(path, metrics.to_jsonl())?;
    Ok(format!(
        "metrics: {} frame records ({} retained) -> {path}",
        metrics.frames().total_seen(),
        metrics.frames().len()
    ))
}

/// Resolves the models a `decode` invocation runs against — packed
/// bundle (owned or mmap), saved `.unfa`/`.unfl` pair, or the task's
/// generated models — always through the [`Models`] facade so every
/// origin decodes through one code path.
fn decode_models(flags: &Flags, system: &System) -> Result<Models, Error> {
    match (flags.get("bundle"), flags.get("am"), flags.get("lm")) {
        (Some(path), None, None) => Ok(if flags.has("mmap") {
            Models::open_mmap(path.as_ref())?
        } else {
            Models::open(path.as_ref())?
        }),
        (Some(_), _, _) => Err(Error::Usage(
            "--bundle replaces --am/--lm; give one or the other".into(),
        )),
        (None, Some(a), Some(l)) => Ok(Models::from_parts(
            load_am(a.as_ref())?,
            vec![(unfold::DEFAULT_LM.to_string(), load_lm(l.as_ref())?)],
        )),
        (None, None, None) => Ok(Models::from_system(system)),
        _ => Err(Error::Usage("--am and --lm must be given together".into())),
    }
}

fn cmd_decode(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &["mmap", "confidence"])?;
    let spec = task_by_name(flags.require("task")?)?;
    let n = flags.usize_or("utterances", 5)?;
    let system = System::build(&spec);
    let confidence = flags.has("confidence");
    let lattice_beam = flags.f32_or("lattice-beam", DecodeConfig::default().lattice_beam)?;
    let config = DecodeConfig::default()
        .to_builder()
        .lattice_beam(lattice_beam)
        .build()
        .map_err(|e| Error::Usage(format!("--lattice-beam: {e:?}")))?;
    let decoder = OtfDecoder::new(config);
    let mut s = String::new();
    let mut report = WerReport::default();
    let models = decode_models(&flags, &system)?;
    let lm = match flags.get("model") {
        None => models.default_lm(),
        Some(name) => models.lm(name).ok_or_else(|| {
            Error::Usage(format!(
                "no LM '{name}' in this bundle (have: {})",
                models.lm_names().join(", ")
            ))
        })?,
    };
    let am = models.am();
    let nbest = flags.usize_or("nbest", 1)?;
    let jobs = resolve_jobs(flags.usize_or("jobs", 1)?);
    let metrics_path = flags.get("metrics");
    let mut metrics = MetricsSink::new();
    let mut null = NullSink;
    let utts = match metrics_path {
        Some(_) => scored_utterances(&system, n, &mut metrics),
        None => system.test_utterances(n),
    };
    let sink: &mut dyn TraceSink = if metrics_path.is_some() {
        &mut metrics
    } else {
        &mut null
    };
    // Decode output is bit-identical for any worker count, so --jobs
    // only changes wall time; with telemetry on, the recorded traces
    // replay serially in utterance order to keep it deterministic too.
    let results: Vec<unfold_decoder::DecodeResult> = if jobs <= 1 {
        let mut scratch = unfold_decoder::DecodeScratch::new();
        utts.iter()
            .map(|utt| decoder.decode_with(am, lm, &utt.scores, &mut scratch, &mut *sink))
            .collect()
    } else {
        let (pairs, _pool) = decode_batch_recorded(&utts, jobs, |_i, utt, scratch, rec| {
            decoder.decode_with(am, lm, &utt.scores, scratch, rec)
        });
        pairs
            .into_iter()
            .map(|(res, trace)| {
                if metrics_path.is_some() {
                    trace.replay(&mut *sink);
                }
                res
            })
            .collect()
    };
    for (i, (utt, res)) in utts.iter().zip(&results).enumerate() {
        report.accumulate(wer(&utt.words, &res.words));
        let _ = writeln!(s, "utt {i}: ref {:?}", utt.words);
        let _ = writeln!(s, "       hyp {:?} (cost {:.2})", res.words, res.cost);
        if nbest > 1 {
            let list = decoder.decode_nbest(am, lm, &utt.scores, nbest, &mut *sink);
            for (rank, (words, cost)) in list.iter().enumerate().skip(1) {
                let _ = writeln!(s, "       #{} {:?} (cost {cost:.2})", rank + 1, words);
            }
        }
        if confidence && res.is_complete() {
            let (_, lattice) = decoder.decode_lattice(am, lm, &utt.scores, &mut *sink);
            let hyps = lattice.best_path_detail();
            let spans = res.word_spans();
            for (hyp, (word, first, last)) in hyps.iter().zip(&spans) {
                debug_assert_eq!(hyp.word, *word);
                let (t0, t1) = (
                    f64::from(*first) * unfold_am::acoustic::FRAME_SECONDS,
                    f64::from(*last + 1) * unfold_am::acoustic::FRAME_SECONDS,
                );
                let _ = writeln!(
                    s,
                    "       word {word} frames {first}-{last} ({t0:.2}s-{t1:.2}s) conf {:.3}",
                    hyp.confidence
                );
            }
        }
    }
    let _ = writeln!(
        s,
        "WER: {:.2}% over {} words",
        report.percent(),
        report.ref_words
    );
    if let Some(path) = metrics_path {
        let _ = writeln!(s, "{}", export_metrics(&metrics, path)?);
    }
    Ok(s)
}

/// Runs the selected accelerator configuration, teeing telemetry into
/// `metrics` when given.
fn run_simulated(
    system: &System,
    utts: &[unfold_am::Utterance],
    baseline: bool,
    metrics: Option<&mut MetricsSink>,
    jobs: usize,
) -> SystemRun {
    match (baseline, metrics) {
        (true, Some(m)) => {
            let composed = system.composed();
            run_baseline_traced_jobs(system, &composed, utts, m, jobs)
        }
        (true, None) => {
            let composed = system.composed();
            run_baseline_configured_jobs(
                system,
                &composed,
                utts,
                AcceleratorConfig::reza(),
                DecodeConfig::default(),
                jobs,
            )
        }
        (false, Some(m)) => run_unfold_traced_jobs(system, utts, m, jobs),
        (false, None) => run_unfold_jobs(system, utts, jobs),
    }
}

fn cmd_simulate(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &["baseline"])?;
    let spec = task_by_name(flags.require("task")?)?;
    let n = flags.usize_or("utterances", 5)?;
    let jobs = resolve_jobs(flags.usize_or("jobs", 1)?);
    let system = System::build(&spec);
    let metrics_path = flags.get("metrics");
    let mut metrics = MetricsSink::new();
    let utts = match metrics_path {
        Some(_) => scored_utterances(&system, n, &mut metrics),
        None => system.test_utterances(n),
    };
    let run = run_simulated(
        &system,
        &utts,
        flags.has("baseline"),
        metrics_path.map(|_| &mut metrics),
        jobs,
    );
    let mut s = String::new();
    let sim = &run.sim;
    let _ = writeln!(s, "configuration: {}", sim.config_name);
    let _ = writeln!(s, "task:          {}", spec.name);
    let _ = writeln!(
        s,
        "audio:         {:.2} s in {} utterances",
        run.audio_seconds, n
    );
    let _ = writeln!(
        s,
        "decode time:   {:.3} ms ({:.0}x real time)",
        sim.seconds * 1e3,
        sim.times_real_time()
    );
    let _ = writeln!(
        s,
        "energy:        {:.4} mJ ({:.4} mJ per audio second)",
        sim.total_energy_mj(),
        sim.energy_mj_per_audio_second()
    );
    let _ = writeln!(s, "avg power:     {:.1} mW", sim.avg_power_mw());
    let _ = writeln!(s, "bandwidth:     {:.1} MB/s", sim.bandwidth_mb_per_s());
    let _ = writeln!(
        s,
        "cache misses:  state {:.1}%  am-arc {:.1}%  lm-arc {:.1}%  token {:.1}%",
        sim.state_cache.miss_ratio() * 100.0,
        sim.am_arc_cache.miss_ratio() * 100.0,
        sim.lm_arc_cache.miss_ratio() * 100.0,
        sim.token_cache.miss_ratio() * 100.0
    );
    if sim.olt.probes > 0 {
        let _ = writeln!(s, "OLT hit ratio: {:.1}%", sim.olt.hit_ratio() * 100.0);
    }
    if run.pool.workers > 1 {
        let _ = writeln!(
            s,
            "decode pool:   {} workers, occupancy {:.2}",
            run.pool.workers,
            run.pool.occupancy()
        );
    }
    let _ = writeln!(s, "WER:           {:.2}%", run.wer.percent());
    let _ = writeln!(s, "area estimate: {:.1} mm2", sim.area_mm2);
    if let Some(path) = metrics_path {
        let _ = writeln!(s, "{}", export_metrics(&metrics, path)?);
    }
    Ok(s)
}

fn cmd_profile(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &["baseline"])?;
    let spec = task_by_name(flags.require("task")?)?;
    let n = flags.usize_or("utterances", 5)?;
    let system = System::build(&spec);
    let mut metrics = MetricsSink::new();
    let utts = scored_utterances(&system, n, &mut metrics);
    let run = run_simulated(&system, &utts, flags.has("baseline"), Some(&mut metrics), 1);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "profile: {} on {} ({} utterances, {} frames, {:.2} s audio)",
        run.sim.config_name, spec.name, n, run.stats.frames, run.audio_seconds
    );
    let _ = writeln!(s);
    s.push_str(&metrics.summary_markdown());
    let lat = metrics.frame_latency().summary();
    let us = |ns: f64| ns / 1e3;
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "frame latency (host): p50 {:.1} us  p95 {:.1} us  p99 {:.1} us  (mean {:.1} us over {} frames)",
        us(lat.p50),
        us(lat.p95),
        us(lat.p99),
        us(lat.mean),
        lat.count
    );
    if let Some(path) = flags.get("metrics") {
        let _ = writeln!(s, "{}", export_metrics(&metrics, path)?);
    }
    Ok(s)
}

fn cmd_sizes(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &[])?;
    let spec = task_by_name(flags.require("task")?)?;
    let system = System::build(&spec);
    let t = system.sizes();
    let mut s = String::new();
    let _ = writeln!(s, "task: {}", spec.name);
    let _ = writeln!(s, "AM WFST:                 {:>10.3} MiB", t.am_mib);
    let _ = writeln!(s, "LM WFST:                 {:>10.3} MiB", t.lm_mib);
    let _ = writeln!(s, "composed WFST:           {:>10.3} MiB", t.composed_mib);
    let _ = writeln!(
        s,
        "composed + compression:  {:>10.3} MiB",
        t.composed_comp_mib
    );
    let _ = writeln!(
        s,
        "on-the-fly (AM+LM):      {:>10.3} MiB",
        t.on_the_fly_mib()
    );
    let _ = writeln!(s, "UNFOLD (compressed):     {:>10.3} MiB", t.unfold_mib());
    let _ = writeln!(s, "acoustic backend:        {:>10.3} MiB", t.backend_mib);
    let _ = writeln!(
        s,
        "reduction vs composed:   {:>9.1}x",
        t.reduction_vs_composed()
    );
    let _ = writeln!(
        s,
        "reduction vs comp+comp:  {:>9.1}x",
        t.reduction_vs_composed_comp()
    );
    Ok(s)
}

fn cmd_verify(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &[])?;
    let path = flags.require("repro")?;
    let text = std::fs::read_to_string(path)?;
    let repro = unfold_verify::ReproCase::from_text(&text)
        .map_err(|e| Error::Usage(format!("{path}: {e}")))?;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "repro: {path} (mutation {}, expected check {})",
        repro.mutation.name(),
        repro
            .check
            .map_or_else(|| "unspecified".to_string(), |c| c.to_string())
    );
    match unfold_verify::run_repro(&repro) {
        Some(d) => {
            let _ = writeln!(s, "DIVERGED ({}): {}", d.check, d.detail);
            if let Some(expected) = repro.check {
                if expected != d.check {
                    let _ = writeln!(
                        s,
                        "note: repro was recorded against check '{expected}', now failing '{}'",
                        d.check
                    );
                }
            }
        }
        None => {
            let _ = writeln!(
                s,
                "PASS: all checks agree (the recorded divergence is gone)"
            );
        }
    }
    Ok(s)
}

fn cmd_serve(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &["mmap"])?;
    let spec = task_by_name(flags.require("task")?)?;
    let port = flags.usize_or("port", 0)?;
    let port = u16::try_from(port)
        .map_err(|_| Error::Usage(format!("--port {port} is not a TCP port")))?;
    // Pipeline knobs ride on the base decode config so every session
    // inherits them; the builder's range checks turn bad flag values
    // into typed config errors (exit 1) rather than panics.
    let base = DecodeConfig::builder()
        .scorer_batch(flags.usize_or("scorer-batch", 8)?)
        .max_search_lag(flags.usize_or("search-lag", 4)?)
        .build()?;
    let scoring_workers = flags.usize_or("scoring-workers", 0)?;
    let config = ServeConfig {
        workers: resolve_jobs(flags.usize_or("workers", 2)?),
        scoring_workers,
        capacity: flags.usize_or("capacity", 32)?,
        quantum_frames: flags.usize_or("quantum", 16)?,
        deadline_ms: flags.usize_or("deadline-ms", 500)? as u64,
        idle_timeout_ms: flags.usize_or("idle-timeout-ms", 10_000)? as u64,
        olt_entries: flags.usize_or("olt", 1_024)?,
        base,
        ..Default::default()
    };
    // All origins funnel through the Models facade, so the server hosts
    // AmModel/LmModel regardless of where the bytes came from — and a
    // bundle's every LM is selectable per session by name.
    let models = match flags.get("bundle") {
        Some(path) if flags.has("mmap") => Models::open_mmap(path.as_ref())?,
        Some(path) => Models::open(path.as_ref())?,
        None => Models::from_system(&System::build(&spec)),
    };
    let am: Arc<AmModel> = Arc::new(models.am().clone());
    let lms: Vec<(String, Arc<LmModel>)> = models
        .lm_names()
        .iter()
        .map(|&name| {
            let lm = models.lm(name).expect("listed name resolves");
            (name.to_string(), Arc::new(lm.clone()))
        })
        .collect();
    let lm_names: Vec<String> = lms.iter().map(|(n, _)| n.clone()).collect();
    let server = Server::start_multi(config, am, lms);
    let handle = server.handle();
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let front = TcpFront::start(listener, server.handle())?;
    let addr = front.local_addr();
    if let Some(path) = flags.get("port-file") {
        // The ephemeral port (with --port 0) is only knowable here, so
        // scripts read it back from this file.
        std::fs::write(path, format!("{}\n", addr.port()))?;
    }
    // Blocks until a client sends Shutdown (the accept loop watches the
    // server's shutdown flag).
    front.join();
    server.shutdown();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "serve: {} on {addr} (LMs: {}{}) — shut down",
        spec.name,
        lm_names.join(", "),
        if scoring_workers > 0 {
            format!("; pipelined, {scoring_workers} scoring workers")
        } else {
            String::new()
        }
    );
    s.push_str(&handle.obs_markdown());
    Ok(s)
}

/// Resolves the loadgen target address from `--addr`, `--port`, or
/// `--port-file` (in that precedence).
fn loadgen_addr(flags: &Flags) -> Result<SocketAddr, Error> {
    if let Some(a) = flags.get("addr") {
        return a
            .parse()
            .map_err(|_| Error::Usage(format!("--addr expects ip:port, got '{a}'")));
    }
    let port = if let Some(path) = flags.get("port-file") {
        let text = std::fs::read_to_string(path)?;
        text.trim()
            .parse::<u16>()
            .map_err(|_| Error::Usage(format!("{path}: expected a port, got '{}'", text.trim())))?
    } else {
        let port = flags.usize_or("port", 0)?;
        if port == 0 {
            return Err(Error::Usage(
                "loadgen needs --addr, --port, or --port-file".into(),
            ));
        }
        u16::try_from(port).map_err(|_| Error::Usage(format!("--port {port} is not a TCP port")))?
    };
    Ok(SocketAddr::from(([127, 0, 0, 1], port)))
}

/// Self-hosted lockstep-vs-pipelined comparison: starts two in-process
/// servers from the same models with equal total thread budgets —
/// lockstep spends every thread on search (`scoring_workers == 0`),
/// pipelined splits them into search and scoring stages — walks the
/// same saturation ladder against each, and returns the pipelined
/// server's main-run report plus the comparison block for
/// `BENCH_serve.json`.
fn run_pipeline_compare(
    system: &System,
    utts: &[Vec<Vec<f32>>],
    cfg: &LoadgenConfig,
    ladder: &[usize],
    total_workers: usize,
    scoring_workers: usize,
    base: DecodeConfig,
) -> Result<(unfold_serve::LoadgenReport, PipelineCompare), Error> {
    let models = Models::from_system(system);
    let am: Arc<AmModel> = Arc::new(models.am().clone());
    let lms: Vec<(String, Arc<LmModel>)> = models
        .lm_names()
        .iter()
        .map(|&name| {
            let lm = models.lm(name).expect("listed name resolves");
            (name.to_string(), Arc::new(lm.clone()))
        })
        .collect();
    let start = |scoring: usize| -> Result<(Server<AmModel, LmModel>, TcpFront), Error> {
        let config = ServeConfig {
            workers: total_workers - scoring,
            scoring_workers: scoring,
            base,
            ..Default::default()
        };
        let server = Server::start_multi(config, am.clone(), lms.clone());
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let front = TcpFront::start(listener, server.handle())?;
        Ok((server, front))
    };
    // The sweep's last rung sends Shutdown, which is what unblocks each
    // front's accept loop.
    let sweep_cfg = LoadgenConfig {
        shutdown_after: true,
        scrape_every_ms: 0,
        ..cfg.clone()
    };

    let (lockstep_srv, lockstep_front) = start(0)?;
    let lockstep = run_saturation_sweep(lockstep_front.local_addr(), utts, &sweep_cfg, ladder)?;
    lockstep_front.join();
    lockstep_srv.shutdown();

    let (pipelined_srv, pipelined_front) = start(scoring_workers)?;
    let main_cfg = LoadgenConfig {
        shutdown_after: false,
        ..cfg.clone()
    };
    let report = run_loadgen(pipelined_front.local_addr(), utts, &main_cfg)?;
    let pipelined = run_saturation_sweep(pipelined_front.local_addr(), utts, &sweep_cfg, ladder)?;
    pipelined_front.join();
    pipelined_srv.shutdown();

    Ok((
        report,
        PipelineCompare {
            lockstep,
            pipelined,
            lockstep_cores: total_workers,
            pipelined_cores: total_workers,
            modeled_scoring: Vec::new(),
        },
    ))
}

fn cmd_loadgen(args: &[String]) -> Result<String, Error> {
    let flags = Flags::parse(args, &["shutdown", "saturate", "compare-pipeline"])?;
    let spec = task_by_name(flags.require("task")?)?;
    let compare_pipeline = flags.has("compare-pipeline");
    let saturate = flags.has("saturate");
    let cfg = LoadgenConfig {
        sessions: flags.usize_or("sessions", 16)?,
        concurrency: flags.usize_or("concurrency", 4)?,
        chunk_frames: flags.usize_or("chunk", 10)?,
        scrape_every_ms: flags.usize_or("scrape-every", 0)? as u64,
        // With a sweep following, the shutdown belongs to its last rung.
        shutdown_after: flags.has("shutdown") && !saturate,
        // Distinct per-user biasing models, registered over the wire and
        // assigned to sessions round-robin; phrases are minted within
        // the task's vocabulary so they can actually fire.
        bias_users: flags.usize_or("bias-users", 0)?,
        bias_vocab: u32::try_from(spec.vocab_size.saturating_sub(1).max(1)).unwrap_or(u32::MAX),
    };
    let n = flags.usize_or("utterances", 4)?.max(1);
    let out = flags.get("out").unwrap_or("BENCH_serve.json");
    // The client synthesizes the same task preset the server loaded, so
    // score-row width matches the server's acoustic model.
    let system = System::build(&spec);
    let utts: Vec<Vec<Vec<f32>>> = system
        .test_utterances(n)
        .iter()
        .map(|u| {
            (0..u.scores.num_frames())
                .map(|t| u.scores.frame(t).to_vec())
                .collect()
        })
        .collect();
    let mut s = String::new();
    let mut bias: Option<BiasCompare> = None;
    let mut sweep = Vec::new();
    let mut pipeline: Option<PipelineCompare> = None;
    let report = if compare_pipeline {
        // Self-hosted A/B: no external server; both servers get the
        // same total thread budget so the knee comparison is per-core.
        let max = flags.usize_or("saturate-max", cfg.concurrency.max(1) * 4)?;
        let total = resolve_jobs(flags.usize_or("workers", 4)?);
        let scoring = flags.usize_or("scoring-workers", (total / 2).max(1))?;
        if scoring == 0 || scoring >= total {
            return Err(Error::Usage(format!(
                "--scoring-workers {scoring} must be in 1..{total} (--workers)"
            )));
        }
        let base = DecodeConfig::builder()
            .scorer_batch(flags.usize_or("scorer-batch", 8)?)
            .max_search_lag(flags.usize_or("search-lag", 4)?)
            .build()?;
        let (report, mut compare) = run_pipeline_compare(
            &system,
            &utts,
            &cfg,
            &saturation_ladder(max),
            total,
            scoring,
            base,
        )?;
        // The analytic amortization curve gives the measured knees
        // context: how much a scoring batch should save per frame.
        const LAUNCH_OVERHEAD_US: f64 = 25.0;
        compare.modeled_scoring = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&b| {
                (
                    b,
                    unfold_sim::modeled_us_per_frame(
                        &unfold_sim::GpuModel::default(),
                        &spec.backend,
                        LAUNCH_OVERHEAD_US,
                        b,
                    ),
                )
            })
            .collect();
        let _ = writeln!(s, "loadgen: {} self-hosted pipeline compare", spec.name);
        pipeline = Some(compare);
        report
    } else {
        let addr = loadgen_addr(&flags)?;
        let _ = writeln!(s, "loadgen: {} against {addr}", spec.name);
        // With biased users requested, run an unbiased control pass
        // first at the same load, so the report carries the marginal
        // cost of personalization (latency and RSS) rather than
        // absolute numbers.
        let report = if cfg.bias_users > 0 {
            let (report, compare) = run_bias_compare(addr, &utts, &cfg)?;
            bias = Some(compare);
            report
        } else {
            run_loadgen(addr, &utts, &cfg)?
        };
        if saturate {
            let max = flags.usize_or("saturate-max", cfg.concurrency.max(1) * 4)?;
            let base = LoadgenConfig {
                shutdown_after: flags.has("shutdown"),
                ..cfg.clone()
            };
            sweep = run_saturation_sweep(addr, &utts, &base, &saturation_ladder(max))?;
        }
        report
    };
    std::fs::write(
        out,
        report.to_json_full(&sweep, bias.as_ref(), pipeline.as_ref()),
    )?;
    let _ = writeln!(
        s,
        "sessions: {} requested, {} completed, {} rejected, {} errors ({:.2}/s)",
        report.sessions_requested,
        report.sessions_completed,
        report.sessions_rejected,
        report.errors,
        report.sessions_per_sec
    );
    let _ = writeln!(
        s,
        "first partial: p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  ({} sessions)",
        report.first_partial_ms.p50,
        report.first_partial_ms.p95,
        report.first_partial_ms.p99,
        report.first_partial_ms.count
    );
    let _ = writeln!(
        s,
        "final:         p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  ({} sessions)",
        report.final_ms.p50, report.final_ms.p95, report.final_ms.p99, report.final_ms.count
    );
    if let Some(b) = &bias {
        let _ = writeln!(
            s,
            "bias: {} users over {} sessions  p99 final {:.2} ms (unbiased {:.2} ms)  \
             miss delta {:.0}  marginal RSS {:.1} KiB/user",
            b.users,
            b.sessions,
            b.biased_p99_final_ms,
            b.unbiased_p99_final_ms,
            b.deadline_miss_delta,
            b.marginal_rss_kb_per_user
        );
    }
    if cfg.scrape_every_ms > 0 {
        let _ = writeln!(
            s,
            "scrapes: {} ({} failures, reconciled: {})",
            report.scrapes, report.scrape_failures, report.reconciled
        );
    }
    for name in [
        "serve.deadline_misses",
        "serve.evictions_idle",
        "serve.rejects_capacity",
        "serve.rejects_overload",
    ] {
        if let Some(v) = report.server_total(name) {
            let _ = writeln!(s, "{name}: {v:.0}");
        }
    }
    for p in &sweep {
        let _ = writeln!(
            s,
            "saturation c={:>3}: {}/{} sessions ({:.2}/s)  p99 final {:.2} ms  miss delta {:.0}",
            p.concurrency,
            p.completed,
            p.sessions,
            p.sessions_per_sec,
            p.p99_final_ms,
            p.deadline_miss_delta
        );
    }
    if let Some(pc) = &pipeline {
        for (label, knee) in [
            ("lockstep ", pc.lockstep_knee()),
            ("pipelined", pc.pipelined_knee()),
        ] {
            if let Some(k) = knee {
                let _ = writeln!(
                    s,
                    "{label} knee: c={:>3}  {:.2} sessions/s  {:.3} sessions/core-s",
                    k.concurrency, k.sessions_per_sec, k.sessions_per_core_sec
                );
            }
        }
    }
    if let Some(path) = flags.get("flight-out") {
        std::fs::write(path, &report.flight_jsonl)?;
        let _ = writeln!(s, "flight: {path}");
    }
    let _ = writeln!(s, "report: {out}");
    Ok(s)
}

/// Scrapes a running server's live metrics over the wire. `--json`
/// prints the raw run-record JSONL instead of the text table; `--dump`
/// appends the flight-recorder and session-span JSONL; `--shutdown`
/// asks the server to stop after the scrape.
fn cmd_stats(args: &[String]) -> Result<String, Error> {
    use unfold_serve::wire::{read_server, write_client};
    let flags = Flags::parse(args, &["json", "dump", "shutdown"])?;
    let addr = loadgen_addr(&flags)?;
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut rd = std::io::BufReader::new(stream.try_clone()?);
    let mut wr = std::io::BufWriter::new(stream);
    let unexpected = |what: &str| {
        Error::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            what.to_string(),
        ))
    };
    write_client(&mut wr, &ClientMsg::Stats)?;
    let Some(ServerMsg::Stats { jsonl }) = read_server(&mut rd)? else {
        return Err(unexpected("unexpected reply to Stats"));
    };
    let mut s = String::new();
    if flags.has("json") {
        s.push_str(jsonl.trim());
        s.push('\n');
    } else {
        let Ok(unfold_obs::ObsRecord::Run(pairs)) = unfold_obs::ObsRecord::parse_line(jsonl.trim())
        else {
            return Err(unexpected("stats reply is not a run record"));
        };
        let _ = writeln!(s, "stats: {addr}");
        s.push_str(&stats_table(&pairs));
    }
    if flags.has("dump") {
        write_client(&mut wr, &ClientMsg::Dump)?;
        let Some(ServerMsg::Dump { flight, spans }) = read_server(&mut rd)? else {
            return Err(unexpected("unexpected reply to Dump"));
        };
        s.push_str(&flight);
        s.push_str(&spans);
    }
    if flags.has("shutdown") {
        write_client(&mut wr, &ClientMsg::Shutdown)?;
    }
    Ok(s)
}

/// Renders a scraped run record as the `stats` text table. Absent
/// metrics (e.g. `serve.olt_hit_rate` before any probe) arrive as NaN;
/// they render as `-` rather than a float, and the numeric column is
/// right-aligned so magnitudes line up.
fn stats_table(pairs: &[(String, f64)]) -> String {
    use std::fmt::Write as _;
    let rendered: Vec<(&str, String)> = pairs
        .iter()
        .map(|(n, v)| {
            let cell = if v.is_nan() {
                "-".to_string()
            } else {
                v.to_string()
            };
            (n.as_str(), cell)
        })
        .collect();
    let width = rendered.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let vwidth = rendered.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let mut s = String::new();
    for (name, v) in &rendered {
        let _ = writeln!(s, "  {name:<width$}  {v:>vwidth$}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_table_renders_nan_as_dash_and_right_aligns() {
        let pairs = vec![
            ("serve.backlog_frames".to_string(), 1234.0),
            ("serve.olt_hit_rate".to_string(), f64::NAN),
            ("serve.vm_rss_kb".to_string(), 56.5),
        ];
        let table = stats_table(&pairs);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[1].ends_with(" -"),
            "NaN must render as a dash: {:?}",
            lines[1]
        );
        assert!(!table.contains("NaN"), "no bare NaN in the table");
        // Right alignment: every value cell ends at the same column.
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "value column must be right-aligned: {widths:?}"
        );
    }

    #[test]
    fn no_command_is_usage_error() {
        assert!(matches!(run(&[]), Err(Error::Usage(_))));
        assert!(matches!(run(&sv(&["frobnicate"])), Err(Error::Usage(_))));
    }

    #[test]
    fn missing_flags_are_reported() {
        let err = run(&sv(&["sizes"])).unwrap_err();
        assert!(err.to_string().contains("--task"));
        let err = run(&sv(&["decode", "--task", "tiny", "--am", "x"])).unwrap_err();
        assert!(err.to_string().contains("together"));
    }

    #[test]
    fn unknown_task_is_reported() {
        let err = run(&sv(&["sizes", "--task", "klingon"])).unwrap_err();
        assert!(err.to_string().contains("klingon"));
    }

    #[test]
    fn sizes_prints_table() {
        let out = run(&sv(&["sizes", "--task", "tiny"])).unwrap();
        assert!(out.contains("reduction vs composed"));
        assert!(out.contains("UNFOLD (compressed)"));
    }

    #[test]
    fn decode_reports_wer() {
        let out = run(&sv(&["decode", "--task", "tiny", "--utterances", "2"])).unwrap();
        assert!(out.contains("WER:"));
        assert!(out.contains("utt 1:"));
    }

    #[test]
    fn decode_nbest_lists_alternatives() {
        let out = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "1",
            "--nbest",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("hyp"));
        // Alternatives may or may not exist; the flag must parse.
        assert!(out.contains("WER:"));
    }

    #[test]
    fn decode_confidence_prints_word_spans() {
        let out = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "1",
            "--confidence",
        ]))
        .unwrap();
        assert!(out.contains("conf "), "missing confidence lines in:\n{out}");
        assert!(out.contains("frames "), "missing frame spans in:\n{out}");
        assert!(out.contains("WER:"));
    }

    #[test]
    fn decode_rejects_bad_lattice_beam() {
        let err = run(&sv(&["decode", "--task", "tiny", "--lattice-beam", "-3"])).unwrap_err();
        assert!(err.to_string().contains("lattice-beam"));
    }

    #[test]
    fn simulate_both_configurations() {
        let unfold_out = run(&sv(&["simulate", "--task", "tiny", "--utterances", "2"])).unwrap();
        assert!(unfold_out.contains("configuration: UNFOLD"));
        assert!(unfold_out.contains("OLT hit ratio"));
        let reza_out = run(&sv(&[
            "simulate",
            "--task",
            "tiny",
            "--utterances",
            "2",
            "--baseline",
        ]))
        .unwrap();
        assert!(reza_out.contains("configuration: Reza et al."));
    }

    #[test]
    fn profile_prints_stage_breakdown_and_percentiles() {
        let out = run(&sv(&["profile", "--task", "tiny", "--utterances", "2"])).unwrap();
        assert!(out.contains("## Stage breakdown"));
        for stage in [
            "acoustic_scoring",
            "arc_expansion",
            "lm_lookup",
            "pruning",
            "lattice",
        ] {
            assert!(out.contains(stage), "missing stage {stage} in:\n{out}");
        }
        assert!(out.contains("frame latency (host): p50"));
        assert!(out.contains("p95"));
        assert!(out.contains("p99"));
    }

    #[test]
    fn decode_metrics_writes_parseable_jsonl() {
        let path =
            std::env::temp_dir().join(format!("unfold-metrics-{}.jsonl", std::process::id()));
        let out = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "1",
            "--metrics",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("metrics:"));
        let text = std::fs::read_to_string(&path).unwrap();
        let mut frames = 0usize;
        for line in text.lines() {
            let rec = unfold_obs::ObsRecord::parse_line(line).expect("valid JSONL");
            if matches!(rec, unfold_obs::ObsRecord::Frame(_)) {
                frames += 1;
            }
        }
        assert!(frames >= 1, "at least one frame record per decoded frame");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_metrics_includes_cache_rates() {
        let path =
            std::env::temp_dir().join(format!("unfold-sim-metrics-{}.jsonl", std::process::id()));
        let out = run(&sv(&[
            "simulate",
            "--task",
            "tiny",
            "--utterances",
            "1",
            "--metrics",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("metrics:"));
        let text = std::fs::read_to_string(&path).unwrap();
        let has_cache = text.lines().any(|l| {
            matches!(
                unfold_obs::ObsRecord::parse_line(l),
                Ok(unfold_obs::ObsRecord::Frame(f)) if f.cache.is_some()
            )
        });
        assert!(has_cache, "simulated frames must carry cache hit rates");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn build_then_decode_from_files() {
        let dir = std::env::temp_dir().join(format!("unfold-cli-{}", std::process::id()));
        let out = run(&sv(&[
            "build",
            "--task",
            "tiny",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains(".unfa") || out.contains("AM:"));
        let am = dir.join("tiny.unfa");
        let lm = dir.join("tiny.unfl");
        assert!(am.exists() && lm.exists());
        assert!(dir.join("tiny.arpa").exists());
        let decoded = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "1",
            "--am",
            am.to_str().unwrap(),
            "--lm",
            lm.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(decoded.contains("WER:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_inspect_and_bundle_decode_roundtrip() {
        let dir = std::env::temp_dir().join(format!("unfold-pack-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bundle = dir.join("tiny.unfb");
        let packed = run(&sv(&[
            "pack",
            "--task",
            "tiny",
            "--out",
            bundle.to_str().unwrap(),
            "--lm-variants",
            "1",
        ]))
        .unwrap();
        assert!(packed.contains("sections"), "in:\n{packed}");
        assert!(bundle.exists());

        let inspected = run(&sv(&["inspect", "--bundle", bundle.to_str().unwrap()])).unwrap();
        assert!(inspected.contains("meta.task: tiny"), "in:\n{inspected}");
        assert!(inspected.contains("all sections verified"));
        assert!(inspected.contains("default"), "in:\n{inspected}");
        let mapped = run(&sv(&[
            "inspect",
            "--bundle",
            bundle.to_str().unwrap(),
            "--mmap",
        ]))
        .unwrap();
        assert!(mapped.contains("memory-mapped"), "in:\n{mapped}");

        // Generated, owned-bundle, and mmap-bundle decodes all print
        // identical transcripts: one facade, one decode path.
        let generated = run(&sv(&["decode", "--task", "tiny", "--utterances", "2"])).unwrap();
        let owned = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "2",
            "--bundle",
            bundle.to_str().unwrap(),
        ]))
        .unwrap();
        let mmapped = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "2",
            "--bundle",
            bundle.to_str().unwrap(),
            "--mmap",
        ]))
        .unwrap();
        assert_eq!(
            generated, owned,
            "bundle must decode like the source models"
        );
        assert_eq!(owned, mmapped, "mmap must be bit-identical to owned");

        // The packed variant LM is selectable and decodes.
        let variant = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "1",
            "--bundle",
            bundle.to_str().unwrap(),
            "--mmap",
            "--model",
            "variant-1",
        ]))
        .unwrap();
        assert!(variant.contains("WER:"), "in:\n{variant}");

        // Unknown LM names list what the bundle has.
        let err = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--bundle",
            bundle.to_str().unwrap(),
            "--model",
            "nope",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("variant-1"), "got: {err}");
        // Conflicting model sources are refused.
        let err = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--bundle",
            bundle.to_str().unwrap(),
            "--am",
            "x.unfa",
            "--lm",
            "x.unfl",
        ]))
        .unwrap_err();
        assert!(matches!(err, Error::Usage(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_bundle_is_a_bundle_error_with_source_and_exit_code_one() {
        let dir = std::env::temp_dir().join(format!("unfold-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bundle = dir.join("tiny.unfb");
        run(&sv(&[
            "pack",
            "--task",
            "tiny",
            "--out",
            bundle.to_str().unwrap(),
        ]))
        .unwrap();
        // Flip one payload byte: inspect must fail the checksum, as a
        // typed error carrying the cause, never a panic.
        let mut bytes = std::fs::read(&bundle).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&bundle, &bytes).unwrap();
        let err = run(&sv(&["inspect", "--bundle", bundle.to_str().unwrap()])).unwrap_err();
        assert!(matches!(err, Error::Bundle(_)), "got: {err:?}");
        assert_eq!(err.exit_code(), 1);
        assert!(
            std::error::Error::source(&err).is_some(),
            "bundle errors keep their cause chain"
        );
        assert_eq!(Error::Usage("x".into()).exit_code(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_jobs_output_is_identical_to_serial() {
        let serial = run(&sv(&["decode", "--task", "tiny", "--utterances", "3"])).unwrap();
        let parallel = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "3",
            "--jobs",
            "4",
        ]))
        .unwrap();
        assert_eq!(serial, parallel, "--jobs must not change decode output");
    }

    #[test]
    fn simulate_jobs_reports_pool_and_matches_serial_sim() {
        let serial = run(&sv(&["simulate", "--task", "tiny", "--utterances", "2"])).unwrap();
        let parallel = run(&sv(&[
            "simulate",
            "--task",
            "tiny",
            "--utterances",
            "2",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(parallel.contains("decode pool:   2 workers"));
        // Every simulator-derived line must be unchanged by --jobs.
        for prefix in ["decode time:", "energy:", "WER:", "cache misses:"] {
            let find = |out: &str| {
                out.lines()
                    .find(|l| l.starts_with(prefix))
                    .map(str::to_string)
            };
            assert_eq!(find(&serial), find(&parallel), "line '{prefix}' diverged");
        }
    }

    #[test]
    fn verify_replays_passing_and_diverging_repros() {
        use unfold_verify::{CaseSpec, Mutation, ReproCase};
        let dir = std::env::temp_dir().join(format!("unfold-verify-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A clean spec under no mutation replays as PASS.
        let clean = dir.join("clean.txt");
        let repro = ReproCase {
            spec: CaseSpec::derive(0xC1EA4, 0),
            check: None,
            mutation: Mutation::None,
        };
        std::fs::write(&clean, repro.to_text()).unwrap();
        let out = run(&sv(&["verify", "--repro", clean.to_str().unwrap()])).unwrap();
        assert!(out.contains("PASS"), "expected PASS in:\n{out}");

        // The same specs under the free-backoff mutation must surface a
        // divergence for at least one case.
        let diverged = (0..12).any(|i| {
            let path = dir.join(format!("mut-{i}.txt"));
            let repro = ReproCase {
                spec: CaseSpec::derive(0xB00, i),
                check: None,
                mutation: Mutation::FreeBackoff,
            };
            std::fs::write(&path, repro.to_text()).unwrap();
            let out = run(&sv(&["verify", "--repro", path.to_str().unwrap()])).unwrap();
            out.contains("DIVERGED")
        });
        assert!(diverged, "injected bug must replay as DIVERGED");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_rejects_malformed_repros() {
        let path =
            std::env::temp_dir().join(format!("unfold-verify-bad-{}.txt", std::process::id()));
        std::fs::write(&path, "version = 1\nbogus_key = 3\n").unwrap();
        let err = run(&sv(&["verify", "--repro", path.to_str().unwrap()])).unwrap_err();
        assert!(matches!(err, Error::Usage(_)));
        assert!(err.to_string().contains("bogus_key"));
        std::fs::remove_file(&path).ok();

        let err = run(&sv(&["verify"])).unwrap_err();
        assert!(err.to_string().contains("--repro"));
    }

    #[test]
    fn bad_number_is_usage_error() {
        let err = run(&sv(&["decode", "--task", "tiny", "--utterances", "lots"])).unwrap_err();
        assert!(err.to_string().contains("number"));
    }

    #[test]
    fn jobs_zero_resolves_to_available_cores_with_identical_output() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let serial = run(&sv(&["decode", "--task", "tiny", "--utterances", "2"])).unwrap();
        let auto = run(&sv(&[
            "decode",
            "--task",
            "tiny",
            "--utterances",
            "2",
            "--jobs",
            "0",
        ]))
        .unwrap();
        assert_eq!(serial, auto, "--jobs 0 must not change decode output");
    }

    #[test]
    fn loadgen_without_a_target_is_a_usage_error() {
        let err = run(&sv(&["loadgen", "--task", "tiny"])).unwrap_err();
        assert!(err.to_string().contains("--addr"));
        let err = run(&sv(&["loadgen", "--task", "tiny", "--addr", "nonsense"])).unwrap_err();
        assert!(err.to_string().contains("ip:port"));
    }

    #[test]
    fn serve_and_loadgen_roundtrip_writes_bench_report() {
        let dir = std::env::temp_dir().join(format!("unfold-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let out = dir.join("BENCH_serve.json");

        let pf = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run(&sv(&[
                "serve",
                "--task",
                "tiny",
                "--port",
                "0",
                "--port-file",
                &pf,
                "--workers",
                "2",
                // Two-stage pipeline on, so the roundtrip exercises
                // scoring-stage gauges and the wire path end to end.
                "--scoring-workers",
                "1",
                "--scorer-batch",
                "4",
                "--search-lag",
                "2",
            ]))
        });
        // Wait (bounded) for serve to publish its ephemeral port.
        let mut waited = 0u32;
        while !port_file.exists() {
            assert!(!server.is_finished(), "serve exited before binding");
            assert!(waited < 1_000, "serve never wrote its port file");
            waited += 1;
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // Live scrape before any traffic: counters exist and are zero.
        let stats = run(&sv(&["stats", "--port-file", port_file.to_str().unwrap()])).unwrap();
        assert!(stats.contains("serve.sessions_opened"), "in:\n{stats}");
        assert!(stats.contains("serve.frames_accepted"), "in:\n{stats}");
        // The pipeline's queue-depth and stage-occupancy gauges are in
        // the table from the start, and NaN gauges render as a dash.
        for gauge in [
            "serve.queue_raw_frames",
            "serve.queue_scored_frames",
            "serve.stage_scoring_occupancy",
            "serve.stage_search_occupancy",
        ] {
            assert!(stats.contains(gauge), "missing {gauge} in:\n{stats}");
        }
        assert!(
            !stats.contains("NaN"),
            "NaN leaked into the table:\n{stats}"
        );
        let stats_json = run(&sv(&[
            "stats",
            "--port-file",
            port_file.to_str().unwrap(),
            "--json",
            "--dump",
        ]))
        .unwrap();
        assert!(
            matches!(
                unfold_obs::ObsRecord::parse_line(stats_json.lines().next().unwrap()),
                Ok(unfold_obs::ObsRecord::Run(_))
            ),
            "--json must emit a parseable run record:\n{stats_json}"
        );

        let flight_out = dir.join("flight.jsonl");
        let report = run(&sv(&[
            "loadgen",
            "--task",
            "tiny",
            "--port-file",
            port_file.to_str().unwrap(),
            "--sessions",
            "4",
            "--concurrency",
            "2",
            "--utterances",
            "2",
            "--scrape-every",
            "5",
            "--flight-out",
            flight_out.to_str().unwrap(),
            "--saturate",
            "--saturate-max",
            "2",
            "--out",
            out.to_str().unwrap(),
            "--shutdown",
        ]))
        .unwrap();
        assert!(report.contains("4 completed"), "in:\n{report}");
        assert!(report.contains("first partial: p50"));
        assert!(report.contains("serve.deadline_misses"));
        assert!(report.contains("reconciled: true"), "in:\n{report}");
        // --saturate walks concurrency 1 then 2 after the main run.
        assert!(report.contains("saturation c=  1"), "in:\n{report}");
        assert!(report.contains("saturation c=  2"), "in:\n{report}");

        let json = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"sessions_per_sec\"",
            "\"first_partial_ms\"",
            "\"p99\"",
            "\"scrape_failures\": 0",
            "\"reconciled\": true",
            "\"server_session_spans\": 4",
            "\"serve.deadline_misses\"",
            "\"saturation\": [",
            "\"deadline_miss_delta\"",
            // The pipelined server scored every accepted frame.
            "\"serve.frames_scored\"",
            "\"serve.score_batches\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // The flight dump is valid JSONL of flight records.
        let flight = std::fs::read_to_string(&flight_out).unwrap();
        assert!(
            flight.lines().all(|l| matches!(
                unfold_obs::ObsRecord::parse_line(l),
                Ok(unfold_obs::ObsRecord::Flight(_))
            )),
            "flight dump must parse:\n{flight}"
        );
        assert!(flight.contains("\"event\":\"final\""), "in:\n{flight}");

        // --shutdown stopped the server; its thread returns the obs
        // summary.
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("shut down"), "in:\n{served}");
        assert!(served.contains("serve.finals"), "in:\n{served}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loadgen_compare_pipeline_is_self_hosted_and_reports_knees() {
        let dir = std::env::temp_dir().join(format!("unfold-pipe-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_serve.json");
        // No --addr/--port: the compare starts its own pair of servers.
        let report = run(&sv(&[
            "loadgen",
            "--task",
            "tiny",
            "--compare-pipeline",
            "--sessions",
            "2",
            "--concurrency",
            "1",
            "--utterances",
            "1",
            "--saturate-max",
            "2",
            "--workers",
            "2",
            "--scoring-workers",
            "1",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("pipeline compare"), "in:\n{report}");
        assert!(report.contains("lockstep  knee:"), "in:\n{report}");
        assert!(report.contains("pipelined knee:"), "in:\n{report}");

        let json = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"pipeline\": {",
            "\"lockstep_cores\": 2",
            "\"pipelined_cores\": 2",
            "\"lockstep_knee\"",
            "\"pipelined_knee\"",
            "\"sessions_per_core_sec\"",
            "\"modeled_scoring_us_per_frame\": [{\"batch\": 1,",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // A bad split is a usage error, not a hang.
        let err = run(&sv(&[
            "loadgen",
            "--task",
            "tiny",
            "--compare-pipeline",
            "--workers",
            "2",
            "--scoring-workers",
            "2",
        ]))
        .unwrap_err();
        assert!(matches!(err, Error::Usage(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
