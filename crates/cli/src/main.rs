//! `unfold-cli` entry point; all logic lives in the library for
//! testability.
//!
//! Exit codes: `0` on success, `1` on runtime failures (I/O, corrupt
//! bundles, invalid configurations, serve errors), `2` on usage errors
//! (which also print the usage text). Runtime failures print the full
//! `source()` chain, one `caused by:` line per link.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match unfold_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            let mut cause = std::error::Error::source(&e);
            while let Some(c) = cause {
                eprintln!("  caused by: {c}");
                cause = c.source();
            }
            if matches!(e, unfold_cli::Error::Usage(_)) {
                eprintln!("{}", unfold_cli::USAGE);
            }
            std::process::exit(e.exit_code());
        }
    }
}
