//! `unfold-cli` entry point; all logic lives in the library for
//! testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match unfold_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", unfold_cli::USAGE);
            std::process::exit(2);
        }
    }
}
