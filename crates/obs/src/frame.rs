//! Per-frame telemetry ring.
//!
//! One [`FrameTelemetry`] record is produced per decoded frame. The
//! ring is bounded ([`FrameRing::with_capacity`]) so long-running
//! streaming decodes hold the most recent window instead of growing
//! without bound; `total_seen`/`dropped` make the truncation explicit
//! in exports rather than silent.

use std::collections::VecDeque;

/// Default number of frames retained by [`FrameRing::new`]. At the
/// simulator's 10 ms frame hop this is about four minutes of audio.
pub const DEFAULT_FRAME_CAPACITY: usize = 25_000;

/// Per-frame cache/OLT hit-rate snapshot from the accelerator
/// simulator. Rates are deltas for this frame only, not cumulative;
/// a cache with no accesses this frame reports 1.0 (nothing missed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheRates {
    /// AM state cache hit rate.
    pub state: f64,
    /// AM arc cache hit rate.
    pub am_arc: f64,
    /// LM arc cache hit rate.
    pub lm_arc: f64,
    /// Token cache hit rate.
    pub token: f64,
    /// Offset Lookup Table hit rate.
    pub olt: f64,
}

/// Telemetry for one decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTelemetry {
    /// Monotonic sequence number across the whole run (frame indices
    /// restart per utterance; this does not).
    pub seq: u64,
    /// Frame index within its utterance.
    pub frame: usize,
    /// Tokens active when the frame began.
    pub active_in: usize,
    /// Tokens surviving after expansion, pruning, and ε-closure.
    pub active_out: usize,
    /// Best (lowest) token cost after the frame.
    pub best_cost: f32,
    /// Worst surviving token cost after the frame.
    pub worst_cost: f32,
    /// LM lookups issued during the frame.
    pub lm_lookups: u64,
    /// Back-off hops walked during the frame.
    pub backoff_hops: u64,
    /// Hypotheses discarded preemptively (paper §3.3) this frame.
    pub preemptive_prunes: u64,
    /// Software-OLT probes this frame (0 when the table is off).
    pub olt_probes: u64,
    /// Software-OLT hits this frame.
    pub olt_hits: u64,
    /// Wall time spent decoding the frame, in nanoseconds.
    pub wall_ns: u64,
    /// Simulator cache rates, when a simulator ran alongside.
    pub cache: Option<CacheRates>,
}

/// Bounded FIFO of the most recent frames.
#[derive(Debug, Clone)]
pub struct FrameRing {
    frames: VecDeque<FrameTelemetry>,
    capacity: usize,
    total_seen: u64,
}

impl Default for FrameRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FRAME_CAPACITY)
    }
}

impl FrameRing {
    /// A ring with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A ring retaining at most `capacity` frames (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FrameRing {
            frames: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total_seen: 0,
        }
    }

    /// Appends a frame, evicting the oldest if full.
    pub fn push(&mut self, frame: FrameTelemetry) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
        self.total_seen += 1;
    }

    /// Frames currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FrameTelemetry> {
        self.frames.iter()
    }

    /// Mutable view of retained frames, oldest first — used to attach
    /// simulator cache snapshots after a traced run.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut FrameTelemetry> {
        self.frames.iter_mut()
    }

    /// Number of frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if no frames were ever pushed.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total frames pushed over the ring's lifetime.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Frames evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.total_seen - self.frames.len() as u64
    }

    /// Renders retained-frame aggregates as markdown.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "frames seen: {} (retained {}, dropped {})\n\n",
            self.total_seen,
            self.len(),
            self.dropped()
        ));
        if self.frames.is_empty() {
            return out;
        }
        let n = self.frames.len() as f64;
        let mean_active = self.frames.iter().map(|f| f.active_out as f64).sum::<f64>() / n;
        let max_active = self.frames.iter().map(|f| f.active_out).max().unwrap_or(0);
        let lm: u64 = self.frames.iter().map(|f| f.lm_lookups).sum();
        let hops: u64 = self.frames.iter().map(|f| f.backoff_hops).sum();
        let prunes: u64 = self.frames.iter().map(|f| f.preemptive_prunes).sum();
        let olt_probes: u64 = self.frames.iter().map(|f| f.olt_probes).sum();
        let olt_hits: u64 = self.frames.iter().map(|f| f.olt_hits).sum();
        out.push_str("| aggregate | value |\n|---|---:|\n");
        out.push_str(&format!("| mean active tokens | {mean_active:.1} |\n"));
        out.push_str(&format!("| max active tokens | {max_active} |\n"));
        out.push_str(&format!("| LM lookups | {lm} |\n"));
        out.push_str(&format!("| back-off hops | {hops} |\n"));
        out.push_str(&format!("| preemptive prunes | {prunes} |\n"));
        if olt_probes > 0 {
            out.push_str(&format!(
                "| software-OLT hit rate | {:.3} |\n",
                olt_hits as f64 / olt_probes as f64
            ));
        }
        out
    }
}

#[cfg(test)]
pub(crate) fn sample_frame(seq: u64) -> FrameTelemetry {
    FrameTelemetry {
        seq,
        frame: seq as usize,
        active_in: 10,
        active_out: 12,
        best_cost: 1.5,
        worst_cost: 9.0,
        lm_lookups: 4,
        backoff_hops: 2,
        preemptive_prunes: 1,
        olt_probes: 3,
        olt_hits: 2,
        wall_ns: 1000,
        cache: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = FrameRing::with_capacity(3);
        for seq in 0..5 {
            ring.push(sample_frame(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 5);
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut ring = FrameRing::with_capacity(0);
        ring.push(sample_frame(0));
        ring.push(sample_frame(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.iter().next().unwrap().seq, 1);
    }

    #[test]
    fn markdown_reports_truncation() {
        let mut ring = FrameRing::with_capacity(2);
        for seq in 0..4 {
            ring.push(sample_frame(seq));
        }
        let md = ring.markdown();
        assert!(md.contains("dropped 2"));
        assert!(md.contains("LM lookups"));
    }
}
