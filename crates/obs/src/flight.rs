//! Flight recorder: a bounded ring of recent scheduler events that
//! freezes a JSONL dump at the first sign of trouble.
//!
//! The serve scheduler feeds every admission, degradation, lease
//! grant (with deadline slack at dispatch), deadline miss, eviction,
//! reject, and worker panic into a [`FlightRecorder`]. The ring keeps
//! only the most recent events, so steady state costs a few hundred
//! small structs; when the *first* anomaly lands — a deadline miss,
//! an `Overloaded` reject, or a worker panic — the recorder snapshots
//! the whole ring to JSONL and pins it, so the post-mortem shows what
//! the scheduler was doing in the moments *before* the failure, not
//! just the failure itself. A snapshot can also be taken on demand at
//! any time (the wire `Dump` request).

use std::collections::VecDeque;

use crate::json::ObsRecord;

/// Default bound on retained events.
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// What happened. The discriminant doubles as the JSONL `event` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// Session admitted; `value` = degradation-ladder level.
    Admit,
    /// Open refused: session table full.
    RejectCapacity,
    /// Frame or open refused: backlog over the overload bound.
    /// **Trigger**: freezes the dump.
    RejectOverload,
    /// Lease granted to a worker; `slack_ms` = deadline − now at
    /// dispatch, `value` = frames in the lease.
    Lease,
    /// Lease completed after its deadline; `slack_ms` = deadline − now
    /// at completion (negative). **Trigger**: freezes the dump.
    DeadlineMiss,
    /// Idle session evicted.
    Evict,
    /// Final result produced; `value` = total frames decoded.
    Final,
    /// A worker panicked mid-lease. **Trigger**: freezes the dump.
    WorkerPanic,
    /// Scoring-stage batch leased; `slack_ms` = sessions in the batch,
    /// `value` = frames in the batch.
    ScoreBatch,
}

impl FlightKind {
    /// Stable string tag used in the JSONL encoding.
    pub fn tag(self) -> &'static str {
        match self {
            FlightKind::Admit => "admit",
            FlightKind::RejectCapacity => "reject_capacity",
            FlightKind::RejectOverload => "reject_overload",
            FlightKind::Lease => "lease",
            FlightKind::DeadlineMiss => "deadline_miss",
            FlightKind::Evict => "evict",
            FlightKind::Final => "final",
            FlightKind::WorkerPanic => "worker_panic",
            FlightKind::ScoreBatch => "score_batch",
        }
    }

    /// Parses a tag back (the JSONL import path).
    pub fn from_tag(tag: &str) -> Option<FlightKind> {
        Some(match tag {
            "admit" => FlightKind::Admit,
            "reject_capacity" => FlightKind::RejectCapacity,
            "reject_overload" => FlightKind::RejectOverload,
            "lease" => FlightKind::Lease,
            "deadline_miss" => FlightKind::DeadlineMiss,
            "evict" => FlightKind::Evict,
            "final" => FlightKind::Final,
            "worker_panic" => FlightKind::WorkerPanic,
            "score_batch" => FlightKind::ScoreBatch,
            _ => return None,
        })
    }

    /// Whether this event freezes the auto-dump.
    fn is_trigger(self) -> bool {
        matches!(
            self,
            FlightKind::RejectOverload | FlightKind::DeadlineMiss | FlightKind::WorkerPanic
        )
    }
}

/// One recorded scheduler event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Recorder-lifetime sequence number (never resets, so gaps in a
    /// dump reveal how much the ring dropped).
    pub seq: u64,
    /// Logical-clock timestamp.
    pub now_ms: u64,
    /// Session the event concerns (0 when none applies).
    pub session: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Deadline slack in ms where meaningful (negative = late);
    /// 0 otherwise.
    pub slack_ms: f64,
    /// Event-specific magnitude (degrade level, lease frames, …).
    pub value: f64,
}

/// Bounded event ring with first-anomaly auto-freeze.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<FlightEvent>,
    cap: usize,
    seq: u64,
    frozen: Option<String>,
    frozen_reason: Option<&'static str>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAP)
    }
}

impl FlightRecorder {
    /// A recorder with the default ring bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder retaining at most `cap` most-recent events.
    pub fn with_capacity(cap: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::new(),
            cap: cap.max(1),
            seq: 0,
            frozen: None,
            frozen_reason: None,
        }
    }

    /// Records one event. If it is the first trigger (deadline miss,
    /// overload reject, worker panic), the ring — ending with this
    /// event — is snapshotted and pinned as the auto-dump.
    pub fn record(
        &mut self,
        kind: FlightKind,
        now_ms: u64,
        session: u64,
        slack_ms: f64,
        value: f64,
    ) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(FlightEvent {
            seq: self.seq,
            now_ms,
            session,
            kind,
            slack_ms,
            value,
        });
        self.seq += 1;
        if kind.is_trigger() && self.frozen.is_none() {
            self.frozen = Some(self.snapshot_jsonl());
            self.frozen_reason = Some(kind.tag());
        }
    }

    /// Events recorded over the recorder's lifetime.
    pub fn recorded_total(&self) -> u64 {
        self.seq
    }

    /// The current ring contents as JSONL, oldest event first.
    pub fn snapshot_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            out.push_str(&ObsRecord::Flight(e.clone()).to_json());
            out.push('\n');
        }
        out
    }

    /// The dump pinned at the first trigger, if any fired.
    pub fn frozen_dump(&self) -> Option<&str> {
        self.frozen.as_deref()
    }

    /// The tag of the trigger that froze the dump.
    pub fn frozen_reason(&self) -> Option<&'static str> {
        self.frozen_reason
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_with_monotonic_seq() {
        let mut fr = FlightRecorder::with_capacity(3);
        for i in 0..10u64 {
            fr.record(FlightKind::Admit, i, i, 0.0, 0.0);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded_total(), 10);
        let seqs: Vec<u64> = fr
            .snapshot_jsonl()
            .lines()
            .map(|l| match ObsRecord::parse_line(l).unwrap() {
                ObsRecord::Flight(e) => e.seq,
                other => panic!("expected flight, got {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn first_deadline_miss_freezes_the_dump_ending_with_the_miss() {
        let mut fr = FlightRecorder::new();
        fr.record(FlightKind::Admit, 0, 1, 0.0, 0.0);
        fr.record(FlightKind::Lease, 5, 1, 25.0, 16.0);
        fr.record(FlightKind::DeadlineMiss, 40, 1, -10.0, 16.0);
        // Later events do not overwrite the pinned dump.
        fr.record(FlightKind::DeadlineMiss, 80, 2, -50.0, 8.0);
        let dump = fr.frozen_dump().expect("auto-dump pinned");
        assert_eq!(fr.frozen_reason(), Some("deadline_miss"));
        let events: Vec<FlightEvent> = dump
            .lines()
            .map(|l| match ObsRecord::parse_line(l).unwrap() {
                ObsRecord::Flight(e) => e,
                other => panic!("expected flight, got {other:?}"),
            })
            .collect();
        assert_eq!(events.len(), 3);
        let last = events.last().unwrap();
        assert_eq!(last.kind, FlightKind::DeadlineMiss);
        assert!(
            last.slack_ms < 0.0,
            "missed lease must carry negative slack"
        );
        assert_eq!(last.session, 1);
    }

    #[test]
    fn overload_reject_and_panic_also_trigger() {
        for kind in [FlightKind::RejectOverload, FlightKind::WorkerPanic] {
            let mut fr = FlightRecorder::new();
            fr.record(FlightKind::Admit, 0, 1, 0.0, 0.0);
            assert!(fr.frozen_dump().is_none());
            fr.record(kind, 1, 1, 0.0, 0.0);
            assert!(fr.frozen_dump().is_some());
            assert_eq!(fr.frozen_reason(), Some(kind.tag()));
        }
        // Capacity rejects and evictions are expected churn, not
        // anomalies.
        let mut fr = FlightRecorder::new();
        fr.record(FlightKind::RejectCapacity, 0, 1, 0.0, 0.0);
        fr.record(FlightKind::Evict, 1, 1, 0.0, 0.0);
        assert!(fr.frozen_dump().is_none());
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let mut fr = FlightRecorder::new();
        fr.record(FlightKind::Lease, 12, 3, 7.5, 16.0);
        let line = fr.snapshot_jsonl();
        let parsed = ObsRecord::parse_line(line.trim()).unwrap();
        let ObsRecord::Flight(e) = parsed else {
            panic!("expected flight");
        };
        assert_eq!(e.kind, FlightKind::Lease);
        assert_eq!(e.slack_ms, 7.5);
        assert_eq!(e.value, 16.0);
        assert_eq!(e.session, 3);
        assert_eq!(e.now_ms, 12);
    }
}
