//! Worker-pool telemetry for utterance-parallel batch decoding.
//!
//! The batch decoder (`unfold::batch`) hands out utterances to a fixed
//! set of workers through an atomic work index. [`PoolTelemetry`]
//! records how that work distributed: items per worker, per-worker busy
//! time, and the batch wall time, from which occupancy (how much of the
//! pool's capacity was actually used) falls out. Like the rest of this
//! crate it only *observes* — the pool produces bit-identical output
//! for any worker count, so these numbers never feed back into decoding.

/// How a batch of work spread across a worker pool.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoolTelemetry {
    /// Workers spawned (1 for the serial path).
    pub workers: usize,
    /// Items (utterances) processed.
    pub items: usize,
    /// Items each worker claimed from the shared queue.
    pub per_worker_items: Vec<usize>,
    /// Wall time each worker spent alive, in nanoseconds.
    pub per_worker_busy_ns: Vec<u64>,
    /// Batch wall time (queue open → last worker joined), nanoseconds.
    pub wall_ns: u64,
}

impl PoolTelemetry {
    /// Fraction of the pool's capacity that was busy:
    /// `sum(busy) / (workers × wall)`. 1.0 means every worker worked
    /// the whole batch; low values mean the queue starved (few items,
    /// or one straggler utterance). 0.0 when nothing ran.
    pub fn occupancy(&self) -> f64 {
        if self.workers == 0 || self.wall_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_worker_busy_ns.iter().sum();
        busy as f64 / (self.workers as f64 * self.wall_ns as f64)
    }

    /// Largest items-per-worker imbalance: `max - min` over workers.
    /// 0 means the queue dealt perfectly evenly.
    pub fn imbalance(&self) -> usize {
        let max = self.per_worker_items.iter().copied().max().unwrap_or(0);
        let min = self.per_worker_items.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// Renders the pool summary as a markdown table.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| pool | value |\n|---|---:|\n");
        out.push_str(&format!("| workers | {} |\n", self.workers));
        out.push_str(&format!("| items | {} |\n", self.items));
        out.push_str(&format!("| occupancy | {:.3} |\n", self.occupancy()));
        out.push_str(&format!("| imbalance | {} |\n", self.imbalance()));
        out.push_str(&format!("| wall ms | {:.3} |\n", self.wall_ns as f64 / 1e6));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_of_fully_busy_pool_is_one() {
        let t = PoolTelemetry {
            workers: 2,
            items: 8,
            per_worker_items: vec![4, 4],
            per_worker_busy_ns: vec![1_000, 1_000],
            wall_ns: 1_000,
        };
        assert!((t.occupancy() - 1.0).abs() < 1e-9);
        assert_eq!(t.imbalance(), 0);
    }

    #[test]
    fn starved_pool_reports_low_occupancy() {
        let t = PoolTelemetry {
            workers: 4,
            items: 1,
            per_worker_items: vec![1, 0, 0, 0],
            per_worker_busy_ns: vec![1_000, 10, 10, 10],
            wall_ns: 1_000,
        };
        assert!(t.occupancy() < 0.3);
        assert_eq!(t.imbalance(), 1);
    }

    #[test]
    fn empty_pool_is_zero_not_nan() {
        let t = PoolTelemetry::default();
        assert_eq!(t.occupancy(), 0.0);
        assert_eq!(t.imbalance(), 0);
    }

    #[test]
    fn markdown_has_rows() {
        let t = PoolTelemetry {
            workers: 2,
            items: 3,
            per_worker_items: vec![2, 1],
            per_worker_busy_ns: vec![500, 400],
            wall_ns: 600,
        };
        let md = t.markdown();
        assert!(md.contains("| workers | 2 |"));
        assert!(md.contains("| occupancy |"));
    }
}
