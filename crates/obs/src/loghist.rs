//! Lock-free log₂-bucketed histogram for hot-path recording.
//!
//! [`LogHistogram`] shares the bucket scheme of
//! [`registry::Histogram`](crate::registry::Histogram) — bucket 0 holds
//! the value 0, bucket `i` holds `[2^(i-1), 2^i)` — but every field is
//! atomic, so workers bump it through a shared `Arc` with no lock and
//! no coordination. Recording is a relaxed `fetch_add` on one bucket
//! plus count/sum and a `fetch_min`/`fetch_max`; there is no CAS loop
//! and no retry, so the hot-path cost is a handful of uncontended
//! atomic RMWs.
//!
//! Merging is *exact-count*: [`LogHistogram::merge_from`] adds the
//! other histogram's buckets, count, and sum verbatim, so folding N
//! per-worker histograms into one produces identical totals in any
//! fold order — the property the serve registry relies on for
//! deterministic exports across `--workers N`.
//!
//! Concurrent `record` calls racing a `snapshot` can yield a snapshot
//! whose count and bucket sum disagree transiently by in-flight
//! observations; quiesce writers (serve snapshots under the core lock
//! after workers park) when exactness matters.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::registry::{bucket_of, Histogram, Summary, BUCKETS};

/// A thread-safe log₂ histogram: share via `Arc`, record from any
/// thread, snapshot into a plain [`Histogram`] for quantiles.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty, so the first `fetch_min` wins.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Safe to call concurrently from any
    /// number of threads; all updates are relaxed atomics.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds `other`'s exact bucket counts (and count/sum/min/max) into
    /// `self`. Addition is commutative and associative, so merging a
    /// set of histograms produces bit-identical totals regardless of
    /// fold order — per-worker histograms collapse deterministically.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Copies the current contents into a plain (single-threaded)
    /// [`Histogram`] for quantile math and export.
    pub fn snapshot(&self) -> Histogram {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        Histogram::from_parts(
            buckets,
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Three-point summary of a snapshot (see [`Histogram::summary`]).
    pub fn summary(&self) -> Summary {
        self.snapshot().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_matches_plain_histogram() {
        // (Parity holds while the total fits u64: the plain histogram
        // saturates its sum, the atomic one wraps — both only diverge
        // past 2^64 total, unreachable for real latency data.)
        let lh = LogHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 40] {
            lh.record(v);
            h.record(v);
        }
        assert_eq!(lh.snapshot().summary(), h.summary());

        let top = LogHistogram::new();
        top.record(u64::MAX);
        let s = top.summary();
        assert_eq!((s.count, s.min, s.max), (1, u64::MAX, u64::MAX));
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = LogHistogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn bucket_boundaries_land_where_the_registry_puts_them() {
        // Powers of two open a new bucket; 2^i - 1 stays in the old one.
        for i in 1..=10u32 {
            let edge = 1u64 << i;
            let below = LogHistogram::new();
            below.record(edge - 1);
            let at = LogHistogram::new();
            at.record(edge);
            let b = below.snapshot();
            let a = at.snapshot();
            // Same value in, same exact min/max out; the quantile of a
            // single observation is exact regardless of bucket.
            assert_eq!(b.summary().p50, (edge - 1) as f64);
            assert_eq!(a.summary().p50, edge as f64);
        }
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let parts: Vec<LogHistogram> = (0..4)
            .map(|w| {
                let h = LogHistogram::new();
                for v in 0..100u64 {
                    h.record(v * (w + 1));
                }
                h
            })
            .collect();

        let fwd = LogHistogram::new();
        for p in &parts {
            fwd.merge_from(p);
        }
        let rev = LogHistogram::new();
        for p in parts.iter().rev() {
            rev.merge_from(p);
        }
        assert_eq!(fwd.snapshot().summary(), rev.snapshot().summary());
        assert_eq!(fwd.count(), 400);

        // And equals recording everything into one histogram directly.
        let direct = LogHistogram::new();
        for (w, _) in parts.iter().enumerate() {
            for v in 0..100u64 {
                direct.record(v * (w as u64 + 1));
            }
        }
        assert_eq!(fwd.snapshot().summary(), direct.snapshot().summary());
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let h = LogHistogram::new();
        h.record(5);
        let before = h.snapshot().summary();
        h.merge_from(&LogHistogram::new());
        assert_eq!(h.snapshot().summary(), before);
        // And min stays untouched (the empty side's min is u64::MAX).
        assert_eq!(before.min, 5);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(LogHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        let s = h.summary();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 39_999);
    }
}
