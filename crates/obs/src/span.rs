//! Session-lifecycle spans on the serve layer's logical clock.
//!
//! A [`SpanLog`] records each session's life as a tree of open/close
//! intervals — `session → sched-wait / lease / …` — stamped with the
//! caller's `now_ms` (the serve scheduler's logical clock, so tests
//! drive it with arithmetic and threaded servers with wall time).
//! Span ids are handed out by the log itself; callers open and close
//! under whatever lock serializes their clock, which makes id order
//! and close order deterministic for a deterministic event sequence.
//!
//! Closed spans land in a bounded ring (oldest dropped first, drop
//! count kept) and export two ways:
//!
//! * [`SpanLog::to_jsonl`] — one [`ObsRecord::SessionSpan`] per line,
//!   round-trippable through the obs parser;
//! * [`SpanLog::to_chrome_trace`] — a Chrome `trace_event` JSON array
//!   of complete (`"ph":"X"`) events, loadable in about://tracing,
//!   with one track (`tid`) per session. Write-only: the obs JSON
//!   parser deliberately has no array support.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::json::ObsRecord;

/// Default bound on retained closed spans.
pub const DEFAULT_SPAN_CAP: usize = 4096;

/// One closed span: a named interval in a session's life, with
/// optional numeric attributes (frames decoded, OLT hit rate, …).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpan {
    /// Log-unique id, assigned at open in increasing order (starts
    /// at 1; 0 is reserved for "no parent").
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// Stage tag: `"session"`, `"sched-wait"`, `"lease"`, ….
    pub stage: String,
    /// The session this span belongs to.
    pub session: u64,
    /// Open timestamp on the logical clock.
    pub start_ms: u64,
    /// Close timestamp on the logical clock (`>= start_ms`).
    pub end_ms: u64,
    /// Numeric attributes attached at close, sorted by name so export
    /// and parse round-trip exactly.
    pub attrs: Vec<(String, f64)>,
}

#[derive(Debug)]
struct OpenSpan {
    parent: u64,
    stage: String,
    session: u64,
    start_ms: u64,
}

/// Append-only span recorder with a bounded closed-span ring.
#[derive(Debug)]
pub struct SpanLog {
    next_id: u64,
    open: HashMap<u64, OpenSpan>,
    closed: VecDeque<SessionSpan>,
    cap: usize,
    opened_total: u64,
    closed_total: u64,
    dropped: u64,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAP)
    }
}

impl SpanLog {
    /// A log with the default retained-span bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log retaining at most `cap` most-recent closed spans.
    pub fn with_capacity(cap: usize) -> Self {
        SpanLog {
            next_id: 1,
            open: HashMap::new(),
            closed: VecDeque::new(),
            cap: cap.max(1),
            opened_total: 0,
            closed_total: 0,
            dropped: 0,
        }
    }

    /// Opens a span and returns its id. `parent` is a previously
    /// opened span id, or 0 for a root span.
    pub fn open(&mut self, stage: &str, session: u64, parent: u64, now_ms: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.opened_total += 1;
        self.open.insert(
            id,
            OpenSpan {
                parent,
                stage: stage.to_string(),
                session,
                start_ms: now_ms,
            },
        );
        id
    }

    /// Closes `id` with no attributes. Returns `false` (and records
    /// nothing) if the id is unknown or already closed, so a span can
    /// close at most once.
    pub fn close(&mut self, id: u64, now_ms: u64) -> bool {
        self.close_with(id, now_ms, &[])
    }

    /// Closes `id`, attaching numeric attributes. Attributes are
    /// stored sorted by name; a `false` return means the id was not
    /// open (double close, or never opened).
    pub fn close_with(&mut self, id: u64, now_ms: u64, attrs: &[(&str, f64)]) -> bool {
        let Some(open) = self.open.remove(&id) else {
            return false;
        };
        let mut attrs: Vec<(String, f64)> =
            attrs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        attrs.sort_by(|a, b| a.0.cmp(&b.0));
        if self.closed.len() == self.cap {
            self.closed.pop_front();
            self.dropped += 1;
        }
        self.closed.push_back(SessionSpan {
            id,
            parent: open.parent,
            stage: open.stage,
            session: open.session,
            start_ms: open.start_ms,
            end_ms: now_ms.max(open.start_ms),
            attrs,
        });
        self.closed_total += 1;
        true
    }

    /// Spans opened over the log's lifetime.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Spans closed over the log's lifetime (retained or dropped).
    pub fn closed_total(&self) -> u64 {
        self.closed_total
    }

    /// Spans still open (opened, not yet closed).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Closed spans evicted from the ring by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained closed spans, oldest first (close order).
    pub fn iter_closed(&self) -> impl Iterator<Item = &SessionSpan> {
        self.closed.iter()
    }

    /// Retained closed spans as JSONL, one
    /// [`ObsRecord::SessionSpan`] per line, in close order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.closed {
            out.push_str(&ObsRecord::SessionSpan(s.clone()).to_json());
            out.push('\n');
        }
        out
    }

    /// Retained closed spans as a Chrome `trace_event` JSON array:
    /// complete events (`"ph":"X"`), microsecond timestamps (the
    /// logical clock's ms × 1000), one `tid` per session. Load the
    /// output in about://tracing or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.closed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
                s.stage,
                s.start_ms * 1000,
                (s.end_ms - s.start_ms) * 1000,
                s.session,
                s.id,
                s.parent
            ));
            for (k, v) in &s.attrs {
                out.push_str(&format!(",\"{k}\":{v}"));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_records_the_interval() {
        let mut log = SpanLog::new();
        let root = log.open("session", 7, 0, 100);
        let child = log.open("lease", 7, root, 110);
        assert!(log.close_with(child, 125, &[("frames", 16.0)]));
        assert!(log.close(root, 130));
        let spans: Vec<&SessionSpan> = log.iter_closed().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "lease");
        assert_eq!(spans[0].parent, root);
        assert_eq!(spans[0].start_ms, 110);
        assert_eq!(spans[0].end_ms, 125);
        assert_eq!(spans[0].attrs, vec![("frames".to_string(), 16.0)]);
        assert_eq!(spans[1].stage, "session");
        assert_eq!(spans[1].parent, 0);
    }

    #[test]
    fn every_span_closes_exactly_once() {
        let mut log = SpanLog::new();
        let id = log.open("lease", 1, 0, 0);
        assert!(log.close(id, 5));
        assert!(!log.close(id, 6), "second close must be rejected");
        assert!(!log.close(999, 6), "unknown id must be rejected");
        assert_eq!(log.closed_total(), 1);
        assert_eq!(log.open_count(), 0);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut log = SpanLog::new();
        let a = log.open("a", 1, 0, 0);
        let b = log.open("b", 1, 0, 0);
        let c = log.open("c", 2, 0, 1);
        assert!(a < b && b < c);
        assert!(a >= 1, "0 is reserved for no-parent");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut log = SpanLog::with_capacity(2);
        for i in 0..5 {
            let id = log.open("x", 1, 0, i);
            log.close(id, i + 1);
        }
        assert_eq!(log.iter_closed().count(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.closed_total(), 5);
        // The ring keeps the most recent closes.
        let kept: Vec<u64> = log.iter_closed().map(|s| s.start_ms).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn end_never_precedes_start() {
        let mut log = SpanLog::new();
        let id = log.open("x", 1, 0, 50);
        // A confused clock (close "before" open) clamps to zero width.
        assert!(log.close(id, 40));
        assert_eq!(log.iter_closed().next().unwrap().end_ms, 50);
    }

    #[test]
    fn jsonl_round_trips_through_the_obs_parser() {
        let mut log = SpanLog::new();
        let root = log.open("session", 3, 0, 10);
        let lease = log.open("lease", 3, root, 12);
        log.close_with(lease, 20, &[("olt_hit_rate", 0.5), ("frames", 16.0)]);
        log.close(root, 22);
        for line in log.to_jsonl().lines() {
            let rec = ObsRecord::parse_line(line).expect("span line parses");
            let ObsRecord::SessionSpan(s) = rec else {
                panic!("expected a session span, got {rec:?}");
            };
            assert_eq!(s.session, 3);
        }
        // Exact round trip, attrs included.
        let first = log.iter_closed().next().unwrap().clone();
        let parsed = ObsRecord::parse_line(&ObsRecord::SessionSpan(first.clone()).to_json());
        assert_eq!(parsed.unwrap(), ObsRecord::SessionSpan(first));
    }

    #[test]
    fn chrome_trace_is_an_array_of_complete_events() {
        let mut log = SpanLog::new();
        let id = log.open("lease", 4, 0, 7);
        log.close_with(id, 9, &[("frames", 8.0)]);
        let t = log.to_chrome_trace();
        assert!(t.starts_with('[') && t.ends_with(']'));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"ts\":7000"));
        assert!(t.contains("\"dur\":2000"));
        assert!(t.contains("\"tid\":4"));
        assert!(t.contains("\"frames\":8"));
    }
}
