//! Monotonic stage profiling with exclusive-time attribution.
//!
//! [`StageTimer`] tracks a stack of named stages. Wall time between
//! clock ticks is always attributed to the *innermost* open stage, so
//! a parent's total never double-counts its children — entering
//! `lm_lookup` inside `arc_expansion` moves the clock to the child and
//! only time after the child exits accrues to the parent again. This
//! "self time" view is what the `profile` subcommand prints: the
//! columns sum to the measured wall clock.

use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct StageEntry {
    name: String,
    self_ticks: u64,
    count: u64,
}

/// Reads the raw tick counter. On x86_64 this is the TSC — a single
/// `rdtsc` costs a few nanoseconds versus tens for a vDSO
/// `clock_gettime`, which matters because the decoder ticks the clock
/// at every stage transition and frame boundary. Elsewhere it falls
/// back to `Instant` nanoseconds since a process-wide origin (ticks
/// then convert 1:1).
#[inline]
pub fn raw_ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: rdtsc has no preconditions; it only reads a counter.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Nanoseconds per raw tick. On x86_64 the TSC rate is calibrated once
/// per process against the wall clock over a short window; call it
/// outside any timed region (e.g. when a sink is created) to front-load
/// that cost. Elsewhere ticks already are nanoseconds.
pub fn ns_per_raw_tick() -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static RATE: OnceLock<f64> = OnceLock::new();
        *RATE.get_or_init(|| {
            let wall = Instant::now();
            let t0 = raw_ticks();
            while wall.elapsed() < Duration::from_micros(200) {
                std::hint::spin_loop();
            }
            let ticks = raw_ticks().saturating_sub(t0);
            let ns = wall.elapsed().as_nanos() as u64;
            if ticks == 0 {
                1.0
            } else {
                ns as f64 / ticks as f64
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        1.0
    }
}

/// Converts a raw tick delta to nanoseconds.
#[inline]
pub fn ticks_to_ns(ticks: u64) -> u64 {
    (ticks as f64 * ns_per_raw_tick()) as u64
}

/// Handle to an interned stage name, for hot paths that enter/exit
/// stages per event rather than per frame (see [`StageTimer::intern`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(usize);

/// Per-stage exclusive time for one report row.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (snake_case, e.g. `arc_expansion`).
    pub name: String,
    /// Number of times the stage was entered.
    pub count: u64,
    /// Exclusive wall time in nanoseconds.
    pub self_nanos: u64,
}

/// Stack-based stage timer. Not thread-safe by design: decoding is
/// single-threaded and the timer rides the decoder's `TraceSink`.
#[derive(Debug, Default, Clone)]
pub struct StageTimer {
    entries: Vec<StageEntry>,
    stack: Vec<usize>,
    /// Raw tick value at the last enter/exit (`None` before first use).
    last_tick: Option<u64>,
}

impl StageTimer {
    /// An empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry_index(&mut self, name: &str) -> usize {
        match self.entries.iter().position(|e| e.name == name) {
            Some(i) => i,
            None => {
                self.entries.push(StageEntry {
                    name: name.to_string(),
                    self_ticks: 0,
                    count: 0,
                });
                self.entries.len() - 1
            }
        }
    }

    fn tick(&mut self) -> u64 {
        let now = raw_ticks();
        let elapsed = match self.last_tick {
            Some(prev) => now.saturating_sub(prev),
            None => 0,
        };
        self.last_tick = Some(now);
        elapsed
    }

    /// Interns `name`, returning a handle that skips the name lookup in
    /// [`StageTimer::enter_id`]/[`StageTimer::exit_id`]. Interning the
    /// same name twice returns the same id.
    pub fn intern(&mut self, name: &str) -> StageId {
        StageId(self.entry_index(name))
    }

    /// Opens stage `name`. Elapsed time since the previous tick is
    /// attributed to the stage that was innermost until now.
    pub fn enter(&mut self, name: &str) {
        let id = self.intern(name);
        self.enter_id(id);
    }

    /// [`StageTimer::enter`] by pre-interned id (no name lookup).
    pub fn enter_id(&mut self, id: StageId) {
        let elapsed = self.tick();
        if let Some(&top) = self.stack.last() {
            self.entries[top].self_ticks += elapsed;
        }
        self.entries[id.0].count += 1;
        self.stack.push(id.0);
    }

    /// Closes the innermost stage, attributing its remaining elapsed
    /// time. `name` is checked in debug builds; in release a mismatch
    /// still closes the innermost stage so timing stays balanced.
    pub fn exit(&mut self, name: &str) {
        let id = self.intern(name);
        self.exit_id(id);
    }

    /// Closes stage `from` and opens stage `to` with a single clock
    /// read: the elapsed time goes to `from`, and `to` starts at the
    /// same instant. For hot paths where two stages are adjacent —
    /// separate exit + enter calls would read the clock twice to
    /// measure the same boundary.
    pub fn switch_id(&mut self, from: StageId, to: StageId) {
        let elapsed = self.tick();
        if let Some(top) = self.stack.pop() {
            debug_assert_eq!(
                self.entries[top].name, self.entries[from.0].name,
                "stage switch out of order"
            );
            self.entries[top].self_ticks += elapsed;
        } else {
            debug_assert!(false, "stage switch with no stage open");
        }
        self.entries[to.0].count += 1;
        self.stack.push(to.0);
    }

    /// Raw tick recorded at the most recent enter/exit/switch, if any.
    /// Lets callers timestamp events adjacent to a stage boundary
    /// without paying for another clock read.
    pub fn last_tick_raw(&self) -> Option<u64> {
        self.last_tick
    }

    /// [`StageTimer::exit`] by pre-interned id (no name lookup).
    pub fn exit_id(&mut self, id: StageId) {
        let elapsed = self.tick();
        if let Some(top) = self.stack.pop() {
            debug_assert_eq!(
                self.entries[top].name, self.entries[id.0].name,
                "stage exit out of order"
            );
            self.entries[top].self_ticks += elapsed;
        } else {
            debug_assert!(false, "stage exit with no stage open");
        }
    }

    /// Runs `f` inside stage `name`.
    pub fn scoped<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.enter(name);
        let out = f();
        self.exit(name);
        out
    }

    /// True if no stage is currently open.
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty()
    }

    /// Report rows in first-entry order, raw ticks converted to
    /// nanoseconds with one rate for every row.
    pub fn report(&self) -> Vec<StageReport> {
        let rate = ns_per_raw_tick();
        self.entries
            .iter()
            .map(|e| StageReport {
                name: e.name.clone(),
                count: e.count,
                self_nanos: (e.self_ticks as f64 * rate) as u64,
            })
            .collect()
    }

    /// Total exclusive time across all stages (equals wall time spent
    /// inside any stage).
    pub fn total(&self) -> Duration {
        let ticks: u64 = self.entries.iter().map(|e| e.self_ticks).sum();
        Duration::from_nanos(ticks_to_ns(ticks))
    }

    /// Renders the stage table: name, calls, self time, share of total.
    pub fn markdown(&self) -> String {
        let mut out = String::from("| stage | calls | self time | share |\n|---|---:|---:|---:|\n");
        if self.entries.is_empty() {
            out.push_str("| (no stages recorded) | | | |\n");
            return out;
        }
        let mut rows = self.report();
        let total = rows.iter().map(|r| r.self_nanos).sum::<u64>().max(1) as f64;
        rows.sort_by_key(|r| std::cmp::Reverse(r.self_nanos));
        for r in rows {
            out.push_str(&format!(
                "| {} | {} | {} | {:.1}% |\n",
                r.name,
                r.count,
                fmt_duration(Duration::from_nanos(r.self_nanos)),
                100.0 * r.self_nanos as f64 / total
            ));
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_balance() {
        let mut t = StageTimer::new();
        t.enter("outer");
        t.enter("inner");
        t.exit("inner");
        t.exit("outer");
        assert!(t.is_balanced());
        let report = t.report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].name, "outer");
        assert_eq!(report[0].count, 1);
        assert_eq!(report[1].count, 1);
    }

    #[test]
    fn nested_time_is_exclusive() {
        let mut t = StageTimer::new();
        t.enter("outer");
        std::thread::sleep(Duration::from_millis(2));
        t.enter("inner");
        std::thread::sleep(Duration::from_millis(8));
        t.exit("inner");
        t.exit("outer");
        let report = t.report();
        let outer = report.iter().find(|r| r.name == "outer").unwrap();
        let inner = report.iter().find(|r| r.name == "inner").unwrap();
        // Inner slept 4x longer; exclusive attribution must reflect it.
        assert!(
            inner.self_nanos > outer.self_nanos,
            "inner {} <= outer {}",
            inner.self_nanos,
            outer.self_nanos
        );
        // Self times sum to total (allow <1% slack: the tick-to-ns
        // calibration is re-read per call).
        let sum = report.iter().map(|r| r.self_nanos).sum::<u64>() as f64;
        let total = t.total().as_nanos() as f64;
        assert!(
            (sum - total).abs() < 0.01 * total.max(1.0),
            "sum {sum} vs total {total}"
        );
    }

    #[test]
    fn switch_closes_and_opens_in_one_step() {
        let mut t = StageTimer::new();
        let a = t.intern("pruning");
        let b = t.intern("arc_expansion");
        t.enter_id(a);
        t.switch_id(a, b);
        t.exit_id(b);
        assert!(t.is_balanced());
        let report = t.report();
        assert_eq!(
            report.iter().find(|r| r.name == "pruning").unwrap().count,
            1
        );
        assert_eq!(
            report
                .iter()
                .find(|r| r.name == "arc_expansion")
                .unwrap()
                .count,
            1
        );
        assert!(t.last_tick_raw().is_some());
    }

    #[test]
    fn scoped_returns_value() {
        let mut t = StageTimer::new();
        let v = t.scoped("calc", || 7);
        assert_eq!(v, 7);
        assert_eq!(t.report()[0].count, 1);
        assert!(t.is_balanced());
    }

    #[test]
    fn reentry_accumulates_counts() {
        let mut t = StageTimer::new();
        for _ in 0..5 {
            t.scoped("loop", || ());
        }
        assert_eq!(t.report()[0].count, 5);
    }

    #[test]
    fn markdown_lists_stages() {
        let mut t = StageTimer::new();
        t.scoped("pruning", || ());
        let md = t.markdown();
        assert!(md.contains("| pruning |"));
        assert!(md.contains("| stage |"));
    }
}
