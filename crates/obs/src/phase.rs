//! Fixed-lane nanosecond accumulators for kernel-phase timing.
//!
//! A [`PhaseAccum`] is the cheapest possible aggregation for a hot
//! loop that reports "phase i took n nanoseconds" many times per
//! frame: a flat array of `(total_ns, count)` lanes indexed by phase,
//! no interning, no hashing, no clock reads of its own. The decoder's
//! SoA kernel feeds one via `TraceSink::kernel_phase`; the serve layer
//! can do the same for request phases.
//!
//! This deliberately differs from [`crate::StageTimer`]: the stage
//! timer owns the clock and attributes exclusive time across a stack,
//! while a `PhaseAccum` just sums durations the caller already
//! measured (phases may overlap stages or each other freely).

/// Aggregated timing for one phase lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Lane name (as given at construction).
    pub name: &'static str,
    /// Total accumulated nanoseconds.
    pub total_ns: u64,
    /// Number of samples accumulated.
    pub count: u64,
}

impl PhaseStat {
    /// Mean nanoseconds per sample (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Flat per-phase `(total_ns, count)` accumulator. Lanes are fixed at
/// construction; out-of-range indices are ignored rather than panicking
/// so a sink can never take down a decode.
#[derive(Debug, Clone)]
pub struct PhaseAccum {
    names: Vec<&'static str>,
    total_ns: Vec<u64>,
    counts: Vec<u64>,
}

impl PhaseAccum {
    /// An accumulator with one lane per name.
    pub fn new(names: &[&'static str]) -> Self {
        PhaseAccum {
            names: names.to_vec(),
            total_ns: vec![0; names.len()],
            counts: vec![0; names.len()],
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the accumulator has no lanes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Adds one sample of `ns` to lane `idx` (no-op when out of range).
    #[inline]
    pub fn add(&mut self, idx: usize, ns: u64) {
        if let (Some(t), Some(c)) = (self.total_ns.get_mut(idx), self.counts.get_mut(idx)) {
            *t += ns;
            *c += 1;
        }
    }

    /// Total nanoseconds accumulated in lane `idx`.
    pub fn total_ns(&self, idx: usize) -> u64 {
        self.total_ns.get(idx).copied().unwrap_or(0)
    }

    /// Samples accumulated in lane `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Whether any lane has seen a sample.
    pub fn any_recorded(&self) -> bool {
        self.counts.iter().any(|&c| c > 0)
    }

    /// Per-lane stats, in lane order.
    pub fn stats(&self) -> Vec<PhaseStat> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, &name)| PhaseStat {
                name,
                total_ns: self.total_ns[i],
                count: self.counts[i],
            })
            .collect()
    }

    /// Resets every lane to zero, keeping the lane set.
    pub fn reset(&mut self) {
        self.total_ns.fill(0);
        self.counts.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_lane() {
        let mut p = PhaseAccum::new(&["a", "b"]);
        p.add(0, 10);
        p.add(0, 5);
        p.add(1, 7);
        assert_eq!(p.total_ns(0), 15);
        assert_eq!(p.count(0), 2);
        assert_eq!(p.total_ns(1), 7);
        assert!(p.any_recorded());
        let s = p.stats();
        assert_eq!(s[0].name, "a");
        assert_eq!(s[0].mean_ns(), 7);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut p = PhaseAccum::new(&["only"]);
        p.add(5, 100);
        assert_eq!(p.total_ns(5), 0);
        assert_eq!(p.count(5), 0);
        assert!(!p.any_recorded());
    }

    #[test]
    fn reset_clears_samples() {
        let mut p = PhaseAccum::new(&["x"]);
        p.add(0, 3);
        p.reset();
        assert_eq!(p.total_ns(0), 0);
        assert!(!p.any_recorded());
        assert_eq!(p.len(), 1);
    }
}
