//! Named metrics: counters, gauges, and log₂-bucketed histograms.
//!
//! The registry keeps insertion order so exported tables are stable
//! across runs. Histograms use power-of-two buckets — bucket 0 holds
//! the value 0 and bucket `i` holds `[2^(i-1), 2^i)` — which gives
//! ~7% worst-case relative error on quantiles at a fixed 65-slot
//! footprint, plenty for latency/population distributions.

use std::collections::HashMap;
use std::sync::Arc;

use crate::loghist::LogHistogram;

/// Number of histogram buckets: one for zero plus one per bit of u64.
pub const BUCKETS: usize = 65;

/// A monotonically increasing count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// Replaces the gauge value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// Log₂-bucketed histogram over `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Three-point quantile summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Observation count.
    pub count: u64,
    /// Arithmetic mean of raw observations (exact, not bucketed).
    pub mean: f64,
    /// Interpolated 50th percentile.
    pub p50: f64,
    /// Interpolated 95th percentile.
    pub p95: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// Smallest observation (exact).
    pub min: u64,
    /// Largest observation (exact).
    pub max: u64,
}

pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        v.ilog2() as usize + 1
    }
}

fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 0.0)
    } else {
        ((1u128 << (i - 1)) as f64, ((1u128 << i) - 1) as f64)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rehydrates a histogram from raw parts — the bridge from an
    /// atomic [`LogHistogram`] snapshot back into quantile math.
    pub(crate) fn from_parts(
        buckets: [u64; BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Interpolated quantile `q` in `[0, 1]`. Returns 0 for an empty
    /// histogram. Within a bucket the value is linearly interpolated
    /// between the bucket bounds, and the result is clamped to the
    /// exact observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count as f64 - 1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lo_rank = seen as f64;
            let hi_rank = (seen + n - 1) as f64;
            if rank <= hi_rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = if n > 1 {
                    (rank - lo_rank) / (n as f64)
                } else {
                    0.0
                };
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Full three-point summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
        }
    }
}

/// Which kind of metric a registry name refers to.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic count.
    Counter(Counter),
    /// Instantaneous value.
    Gauge(Gauge),
    /// Distribution (boxed: a histogram's bucket array is two orders of
    /// magnitude larger than the scalar variants).
    Histogram(Box<Histogram>),
    /// Lock-free distribution shared with recording threads via `Arc`;
    /// exports exactly like [`Metric::Histogram`].
    Shared(Arc<LogHistogram>),
}

/// Ordered collection of named metrics.
///
/// Lookup is hashed; iteration follows first-registration order so
/// exports are deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    index: HashMap<String, usize>,
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, name: &str, make: impl FnOnce() -> Metric) -> &mut Metric {
        let idx = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.entries.len();
                self.entries.push((name.to_string(), make()));
                self.index.insert(name.to_string(), i);
                i
            }
        };
        &mut self.entries[idx].1
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        match self.slot(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        match self.slot(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        match self.slot(name, || Metric::Histogram(Box::default())) {
            Metric::Histogram(h) => h.as_mut(),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// The shared lock-free histogram registered under `name`, created
    /// on first use. The returned `Arc` can be handed to recording
    /// threads; the registry keeps its own reference for export.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn log_histogram(&mut self, name: &str) -> Arc<LogHistogram> {
        match self.slot(name, || Metric::Shared(Arc::new(LogHistogram::new()))) {
            Metric::Shared(h) => Arc::clone(h),
            other => panic!("metric {name:?} is not a shared histogram: {other:?}"),
        }
    }

    /// Iterates metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Flattens the registry to `(name, value)` pairs for the run
    /// record: counters and gauges export directly, histograms export
    /// their summary fields as `name.count`, `name.mean`, `name.p50`,
    /// `name.p95`, `name.p99`, `name.max`.
    pub fn totals(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(c) => out.push((name.to_string(), c.get() as f64)),
                Metric::Gauge(g) => out.push((name.to_string(), g.get())),
                Metric::Histogram(h) => push_summary(&mut out, name, h.summary()),
                Metric::Shared(h) => push_summary(&mut out, name, h.summary()),
            }
        }
        out
    }

    /// Renders the registry as a markdown table.
    pub fn markdown(&self) -> String {
        let mut out = String::from("| metric | value |\n|---|---|\n");
        if self.entries.is_empty() {
            out.push_str("| (none) | |\n");
            return out;
        }
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("| {name} | {} |\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("| {name} | {:.4} |\n", g.get())),
                Metric::Histogram(h) => push_summary_row(&mut out, name, h.summary()),
                Metric::Shared(h) => push_summary_row(&mut out, name, h.summary()),
            }
        }
        out
    }
}

fn push_summary(out: &mut Vec<(String, f64)>, name: &str, s: Summary) {
    out.push((format!("{name}.count"), s.count as f64));
    out.push((format!("{name}.mean"), s.mean));
    out.push((format!("{name}.p50"), s.p50));
    out.push((format!("{name}.p95"), s.p95));
    out.push((format!("{name}.p99"), s.p99));
    out.push((format!("{name}.max"), s.max as f64));
}

fn push_summary_row(out: &mut String, name: &str, s: Summary) {
    out.push_str(&format!(
        "| {name} | n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={} |\n",
        s.count, s.mean, s.p50, s.p95, s.p99, s.max
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Log-bucketed p50 of 1..=1000 must land in the 256..1000
        // region within one bucket of error.
        assert!(s.p50 >= 256.0 && s.p50 <= 1000.0, "p50 = {}", s.p50);
        assert!(s.p95 >= s.p50 && s.p99 >= s.p95);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(42);
        let s = h.summary();
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn registry_preserves_registration_order() {
        let mut r = MetricsRegistry::new();
        r.counter("zeta").inc();
        r.counter("alpha").add(2);
        r.gauge("mid").set(1.5);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["zeta", "alpha", "mid"]);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.counter("c").add(5);
        r.counter("c").inc();
        r.gauge("g").set(0.25);
        assert_eq!(r.counter("c").get(), 6);
        assert_eq!(r.gauge("g").get(), 0.25);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.gauge("x").set(1.0);
        r.counter("x");
    }

    #[test]
    fn shared_histograms_export_like_plain_ones() {
        let mut r = MetricsRegistry::new();
        let h = r.log_histogram("lat");
        h.record(10);
        h.record(20);
        // Re-requesting the same name hands back the same histogram.
        r.log_histogram("lat").record(30);
        let totals: Vec<(String, f64)> = r.totals();
        let get = |k: &str| totals.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("lat.count"), Some(3.0));
        assert_eq!(get("lat.max"), Some(30.0));
        assert_eq!(get("lat.mean"), Some(20.0));
        assert!(r.markdown().contains("| lat |"));
    }

    #[test]
    #[should_panic(expected = "is not a shared histogram")]
    fn shared_kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.counter("x").inc();
        r.log_histogram("x");
    }

    #[test]
    fn totals_flatten_histograms() {
        let mut r = MetricsRegistry::new();
        r.histogram("lat").record(10);
        let names: Vec<String> = r.totals().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"lat.p95".to_string()));
        assert!(names.contains(&"lat.count".to_string()));
    }
}
