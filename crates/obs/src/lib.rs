//! Decode-time observability for the UNFOLD reproduction.
//!
//! Three cooperating pieces, all pure `std`:
//!
//! * [`registry`] — named counters, gauges, and log₂-bucketed
//!   histograms with p50/p95/p99 summaries;
//! * [`stage`] — a monotonic stage timer attributing exclusive wall
//!   time to decoder phases (acoustic scoring, arc expansion, LM
//!   lookup, pruning, lattice);
//! * [`frame`] — a bounded per-frame telemetry ring (active tokens,
//!   cost spread, LM traffic, cache hit rates);
//! * [`pool`] — worker-pool occupancy for utterance-parallel batches;
//! * [`loghist`] — a lock-free log₂ histogram workers bump through a
//!   shared `Arc`, with exact-count deterministic merge;
//! * [`span`] — session-lifecycle spans on the serve layer's logical
//!   clock, exportable as JSONL and Chrome `trace_event`;
//! * [`flight`] — a bounded scheduler-event ring that pins a JSONL
//!   dump at the first deadline miss, overload reject, or panic.
//!
//! Everything exports through [`json`] as JSONL (one record per frame
//! or span) and renders to a markdown summary via
//! [`Collector::summary_markdown`]. The decoder side feeds these
//! through its `TraceSink` — observability never touches the search
//! itself, so enabling it cannot perturb results.

pub mod flight;
pub mod frame;
pub mod json;
pub mod loghist;
pub mod phase;
pub mod pool;
pub mod registry;
pub mod span;
pub mod stage;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use frame::{CacheRates, FrameRing, FrameTelemetry};
pub use json::ObsRecord;
pub use loghist::LogHistogram;
pub use phase::{PhaseAccum, PhaseStat};
pub use pool::PoolTelemetry;
pub use registry::{Histogram, MetricsRegistry, Summary};
pub use span::{SessionSpan, SpanLog};
pub use stage::{ns_per_raw_tick, raw_ticks, ticks_to_ns, StageId, StageReport, StageTimer};

/// One-stop container bundling the registry, stage timer, and frame
/// ring for a single decode run.
#[derive(Debug, Default)]
pub struct Collector {
    /// Named counters/gauges/histograms.
    pub registry: MetricsRegistry,
    /// Per-stage exclusive wall time.
    pub stages: StageTimer,
    /// Bounded per-frame telemetry.
    pub frames: FrameRing,
}

impl Collector {
    /// A collector with the default frame-ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector whose frame ring keeps at most `frame_capacity`
    /// most-recent frames.
    pub fn with_frame_capacity(frame_capacity: usize) -> Self {
        Collector {
            registry: MetricsRegistry::new(),
            stages: StageTimer::new(),
            frames: FrameRing::with_capacity(frame_capacity),
        }
    }

    /// Serializes the whole run as JSONL: one `span` record per stage,
    /// one `frame` record per retained frame, and a trailing `run`
    /// record with registry totals.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.stages.report() {
            out.push_str(&ObsRecord::Span(span).to_json());
            out.push('\n');
        }
        for f in self.frames.iter() {
            out.push_str(&ObsRecord::Frame(f.clone()).to_json());
            out.push('\n');
        }
        out.push_str(&ObsRecord::Run(self.registry.totals()).to_json());
        out.push('\n');
        out
    }

    /// Renders the run as a human-readable markdown summary: the stage
    /// breakdown table, frame-latency percentiles, and registry
    /// contents.
    pub fn summary_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("## Stage breakdown\n\n");
        out.push_str(&self.stages.markdown());
        out.push('\n');
        out.push_str("## Metrics\n\n");
        out.push_str(&self.registry.markdown());
        if self.frames.total_seen() > 0 {
            out.push('\n');
            out.push_str("## Frames\n\n");
            out.push_str(&self.frames.markdown());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_jsonl_has_run_record() {
        let mut c = Collector::new();
        c.registry.counter("lm_lookups").add(3);
        let jsonl = c.to_jsonl();
        let records: Vec<ObsRecord> = jsonl
            .lines()
            .map(|l| ObsRecord::parse_line(l).expect("valid record"))
            .collect();
        assert!(matches!(records.last(), Some(ObsRecord::Run(_))));
    }

    #[test]
    fn summary_contains_sections() {
        let c = Collector::new();
        let md = c.summary_markdown();
        assert!(md.contains("## Stage breakdown"));
        assert!(md.contains("## Metrics"));
    }
}
