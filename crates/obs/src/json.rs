//! JSONL export/import for telemetry records.
//!
//! One JSON object per line, discriminated by a `"type"` field:
//!
//! * `frame`  — one [`FrameTelemetry`] per decoded frame;
//! * `span`   — one [`StageReport`] per profiled stage;
//! * `sspan`  — one [`SessionSpan`] per closed session-lifecycle span;
//! * `flight` — one [`FlightEvent`] per flight-recorder entry;
//! * `run`    — flattened registry totals for the whole run.
//!
//! The writer and parser are hand-rolled over `std` (the workspace has
//! no serde). Floats print with Rust's shortest-round-trip `Display`,
//! so `parse_line(to_json(r)) == r` exactly; non-finite floats encode
//! as the strings `"inf"`, `"-inf"`, `"nan"` since JSON has no literal
//! for them.

use std::collections::BTreeMap;

use crate::flight::{FlightEvent, FlightKind};
use crate::frame::{CacheRates, FrameTelemetry};
use crate::span::SessionSpan;
use crate::stage::StageReport;

/// A single telemetry record (one JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub enum ObsRecord {
    /// Per-frame telemetry.
    Frame(FrameTelemetry),
    /// Per-stage exclusive time.
    Span(StageReport),
    /// One closed session-lifecycle span.
    SessionSpan(SessionSpan),
    /// One flight-recorder event.
    Flight(FlightEvent),
    /// Run-level registry totals as `(name, value)` pairs.
    Run(Vec<(String, f64)>),
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn push_str_value(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        // `{}` on f64 is the shortest string that round-trips.
        out.push_str(&format!("{v}"));
    }
}

struct ObjWriter {
    out: String,
    first: bool,
}

impl ObjWriter {
    fn new(kind: &str) -> Self {
        let mut w = ObjWriter {
            out: String::from("{\"type\":"),
            first: false,
        };
        push_str_value(&mut w.out, kind);
        w
    }

    fn key(&mut self, k: &str) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        push_str_value(&mut self.out, k);
        self.out.push(':');
    }

    fn uint(&mut self, k: &str, v: u64) {
        self.key(k);
        self.out.push_str(&v.to_string());
    }

    fn float(&mut self, k: &str, v: f64) {
        self.key(k);
        push_f64(&mut self.out, v);
    }

    fn string(&mut self, k: &str, v: &str) {
        self.key(k);
        push_str_value(&mut self.out, v);
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl ObsRecord {
    /// Serializes the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            ObsRecord::Frame(f) => {
                let mut w = ObjWriter::new("frame");
                w.uint("seq", f.seq);
                w.uint("frame", f.frame as u64);
                w.uint("active_in", f.active_in as u64);
                w.uint("active_out", f.active_out as u64);
                w.float("best_cost", f64::from(f.best_cost));
                w.float("worst_cost", f64::from(f.worst_cost));
                w.uint("lm_lookups", f.lm_lookups);
                w.uint("backoff_hops", f.backoff_hops);
                w.uint("preemptive_prunes", f.preemptive_prunes);
                w.uint("olt_probes", f.olt_probes);
                w.uint("olt_hits", f.olt_hits);
                w.uint("wall_ns", f.wall_ns);
                if let Some(c) = f.cache {
                    w.float("cache_state", c.state);
                    w.float("cache_am_arc", c.am_arc);
                    w.float("cache_lm_arc", c.lm_arc);
                    w.float("cache_token", c.token);
                    w.float("cache_olt", c.olt);
                }
                w.finish()
            }
            ObsRecord::Span(s) => {
                let mut w = ObjWriter::new("span");
                w.string("stage", &s.name);
                w.uint("count", s.count);
                w.uint("self_ns", s.self_nanos);
                w.finish()
            }
            ObsRecord::SessionSpan(s) => {
                let mut w = ObjWriter::new("sspan");
                w.uint("id", s.id);
                w.uint("parent", s.parent);
                w.string("stage", &s.stage);
                w.uint("session", s.session);
                w.uint("start_ms", s.start_ms);
                w.uint("end_ms", s.end_ms);
                w.key("attrs");
                w.out.push('{');
                for (i, (name, v)) in s.attrs.iter().enumerate() {
                    if i > 0 {
                        w.out.push(',');
                    }
                    push_str_value(&mut w.out, name);
                    w.out.push(':');
                    push_f64(&mut w.out, *v);
                }
                w.out.push('}');
                w.finish()
            }
            ObsRecord::Flight(e) => {
                let mut w = ObjWriter::new("flight");
                w.uint("seq", e.seq);
                w.uint("now_ms", e.now_ms);
                w.uint("session", e.session);
                w.string("event", e.kind.tag());
                w.float("slack_ms", e.slack_ms);
                w.float("value", e.value);
                w.finish()
            }
            ObsRecord::Run(metrics) => {
                let mut w = ObjWriter::new("run");
                w.key("metrics");
                w.out.push('{');
                for (i, (name, v)) in metrics.iter().enumerate() {
                    if i > 0 {
                        w.out.push(',');
                    }
                    push_str_value(&mut w.out, name);
                    w.out.push(':');
                    push_f64(&mut w.out, *v);
                }
                w.out.push('}');
                w.finish()
            }
        }
    }

    /// Parses one JSONL line back into a record.
    pub fn parse_line(line: &str) -> Result<ObsRecord, String> {
        let value = Parser::new(line).parse_document()?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let kind = obj
            .get("type")
            .and_then(Value::as_str)
            .ok_or("missing \"type\" field")?;
        match kind {
            "frame" => {
                let cache = if obj.contains_key("cache_state") {
                    Some(CacheRates {
                        state: get_f64(obj, "cache_state")?,
                        am_arc: get_f64(obj, "cache_am_arc")?,
                        lm_arc: get_f64(obj, "cache_lm_arc")?,
                        token: get_f64(obj, "cache_token")?,
                        olt: get_f64(obj, "cache_olt")?,
                    })
                } else {
                    None
                };
                Ok(ObsRecord::Frame(FrameTelemetry {
                    seq: get_u64(obj, "seq")?,
                    frame: get_u64(obj, "frame")? as usize,
                    active_in: get_u64(obj, "active_in")? as usize,
                    active_out: get_u64(obj, "active_out")? as usize,
                    best_cost: get_f64(obj, "best_cost")? as f32,
                    worst_cost: get_f64(obj, "worst_cost")? as f32,
                    lm_lookups: get_u64(obj, "lm_lookups")?,
                    backoff_hops: get_u64(obj, "backoff_hops")?,
                    preemptive_prunes: get_u64(obj, "preemptive_prunes")?,
                    // Absent in JSONL written before the software OLT
                    // existed; default to 0 so old logs still parse.
                    olt_probes: get_u64_or(obj, "olt_probes", 0)?,
                    olt_hits: get_u64_or(obj, "olt_hits", 0)?,
                    wall_ns: get_u64(obj, "wall_ns")?,
                    cache,
                }))
            }
            "span" => Ok(ObsRecord::Span(StageReport {
                name: obj
                    .get("stage")
                    .and_then(Value::as_str)
                    .ok_or("span missing \"stage\"")?
                    .to_string(),
                count: get_u64(obj, "count")?,
                self_nanos: get_u64(obj, "self_ns")?,
            })),
            "sspan" => {
                let attrs_obj = obj
                    .get("attrs")
                    .and_then(Value::as_object)
                    .ok_or("sspan missing \"attrs\" object")?;
                let mut attrs = Vec::with_capacity(attrs_obj.len());
                for (name, v) in attrs_obj {
                    attrs.push((
                        name.clone(),
                        v.as_f64()
                            .ok_or_else(|| format!("attr {name:?} is not numeric"))?,
                    ));
                }
                Ok(ObsRecord::SessionSpan(SessionSpan {
                    id: get_u64(obj, "id")?,
                    parent: get_u64(obj, "parent")?,
                    stage: obj
                        .get("stage")
                        .and_then(Value::as_str)
                        .ok_or("sspan missing \"stage\"")?
                        .to_string(),
                    session: get_u64(obj, "session")?,
                    start_ms: get_u64(obj, "start_ms")?,
                    end_ms: get_u64(obj, "end_ms")?,
                    attrs,
                }))
            }
            "flight" => {
                let tag = obj
                    .get("event")
                    .and_then(Value::as_str)
                    .ok_or("flight missing \"event\"")?;
                Ok(ObsRecord::Flight(FlightEvent {
                    seq: get_u64(obj, "seq")?,
                    now_ms: get_u64(obj, "now_ms")?,
                    session: get_u64(obj, "session")?,
                    kind: FlightKind::from_tag(tag)
                        .ok_or_else(|| format!("unknown flight event {tag:?}"))?,
                    slack_ms: get_f64(obj, "slack_ms")?,
                    value: get_f64(obj, "value")?,
                }))
            }
            "run" => {
                let metrics = obj
                    .get("metrics")
                    .and_then(Value::as_object)
                    .ok_or("run missing \"metrics\" object")?;
                let mut pairs = Vec::with_capacity(metrics.len());
                for (name, v) in metrics {
                    pairs.push((
                        name.clone(),
                        v.as_f64()
                            .ok_or_else(|| format!("metric {name:?} is not numeric"))?,
                    ));
                }
                Ok(ObsRecord::Run(pairs))
            }
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

fn get_f64(obj: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn get_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    let v = get_f64(obj, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("field {key:?} is not a non-negative integer: {v}"));
    }
    Ok(v as u64)
}

fn get_u64_or(obj: &BTreeMap<String, Value>, key: &str, default: u64) -> Result<u64, String> {
    if obj.contains_key(key) {
        get_u64(obj, key)
    } else {
        Ok(default)
    }
}

// ---------------------------------------------------------------------
// Minimal JSON parser (objects, strings, numbers, null; no arrays —
// the telemetry schema never emits them).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Object(BTreeMap<String, Value>),
    String(String),
    Number(f64),
    Null,
}

impl Value {
    fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: numbers directly; the sentinel strings map back
    /// to the non-finite floats they encoded.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::String(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Value::Null)
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::sample_frame;

    #[test]
    fn frame_round_trips_exactly() {
        let mut f = sample_frame(7);
        f.best_cost = 1.100_000_1; // not representable as a short decimal
        f.worst_cost = f32::INFINITY;
        f.cache = Some(CacheRates {
            state: 0.875,
            am_arc: 1.0,
            lm_arc: 0.1,
            token: 0.0,
            olt: 0.5,
        });
        let rec = ObsRecord::Frame(f.clone());
        let parsed = ObsRecord::parse_line(&rec.to_json()).expect("parses");
        assert_eq!(parsed, ObsRecord::Frame(f));
    }

    #[test]
    fn frame_without_cache_round_trips() {
        let rec = ObsRecord::Frame(sample_frame(0));
        let parsed = ObsRecord::parse_line(&rec.to_json()).expect("parses");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn span_round_trips() {
        let rec = ObsRecord::Span(StageReport {
            name: "arc_expansion".to_string(),
            count: 12,
            self_nanos: 987_654_321,
        });
        assert_eq!(ObsRecord::parse_line(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn run_round_trips_with_odd_names() {
        let rec = ObsRecord::Run(vec![
            ("lm_lookups".to_string(), 42.0),
            ("frame_ns.p95".to_string(), 1.5e6),
            ("weird \"name\"\n".to_string(), -0.125),
        ]);
        match ObsRecord::parse_line(&rec.to_json()).unwrap() {
            ObsRecord::Run(mut pairs) => {
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                let mut want = match rec {
                    ObsRecord::Run(p) => p,
                    _ => unreachable!(),
                };
                want.sort_by(|a, b| a.0.cmp(&b.0));
                assert_eq!(pairs, want);
            }
            other => panic!("wrong record kind: {other:?}"),
        }
    }

    #[test]
    fn non_finite_floats_survive() {
        let mut f = sample_frame(1);
        f.best_cost = f32::NEG_INFINITY;
        let parsed = ObsRecord::parse_line(&ObsRecord::Frame(f).to_json()).unwrap();
        match parsed {
            ObsRecord::Frame(f) => assert_eq!(f.best_cost, f32::NEG_INFINITY),
            other => panic!("wrong record kind: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(ObsRecord::parse_line("").is_err());
        assert!(ObsRecord::parse_line("{\"type\":\"frame\"}").is_err());
        assert!(ObsRecord::parse_line("{\"no_type\":1}").is_err());
        assert!(ObsRecord::parse_line("{\"type\":\"mystery\"}").is_err());
        assert!(ObsRecord::parse_line("{\"type\":\"frame\",").is_err());
    }
}
