//! `unfold-verify`: run a randomized differential campaign from the
//! command line. Exits 1 when any case diverges (or on bad flags), so
//! CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

use unfold_verify::{run_campaign, CampaignConfig, CheckId, Mutation};

const USAGE: &str = "\
unfold-verify: randomized differential verification campaign

USAGE:
    unfold-verify [--cases N] [--seed S] [--jobs N] [--out DIR]
                  [--mutation none|olt-aliasing|free-backoff|stale-checksum
                             |lattice-beam-skip|bias-bonus-skip|stale-lag]
                  [--check NAME] [--no-shrink]

FLAGS:
    --cases N      cases to run (default 64)
    --seed S       campaign seed (default 42)
    --jobs N       worker threads (default: available parallelism)
    --out DIR      write minimized repro files here
    --mutation M   inject a known decoder bug (default none)
    --check NAME   run a single check (e.g. lattice-oracle, bias-oracle,
                   or pipeline-identity) instead of the full matrix
    --no-shrink    skip delta-debugging of divergences
";

fn parse_args(args: &[String]) -> Result<CampaignConfig, String> {
    let mut config = CampaignConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cases" => {
                config.cases = value("--cases")?
                    .parse()
                    .map_err(|_| "--cases: expected an integer".to_string())?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: expected an integer".to_string())?;
            }
            "--jobs" => {
                config.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs: expected an integer".to_string())?;
            }
            "--out" => config.out_dir = Some(PathBuf::from(value("--out")?)),
            "--mutation" => {
                let v = value("--mutation")?;
                config.mutation = Mutation::parse(&v)
                    .ok_or_else(|| format!("--mutation: unknown mutation {v:?}"))?;
            }
            "--check" => {
                let v = value("--check")?;
                config.only = Some(
                    CheckId::parse(&v).ok_or_else(|| format!("--check: unknown check {v:?}"))?,
                );
            }
            "--no-shrink" => config.shrink = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "campaign: {} cases, seed {}, mutation {}, {} jobs{}",
        config.cases,
        config.seed,
        config.mutation.name(),
        config.jobs.max(1),
        config
            .only
            .map_or(String::new(), |c| format!(", check {c} only"))
    );
    let report = match run_campaign(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{}/{} cases passed", report.passed, report.cases);
    for d in &report.divergences {
        println!("case {:04}: {}", d.index, d.divergence);
        if let Some(s) = &d.shrunk {
            println!(
                "  shrunk in {} steps ({} evals) to {} LM states, {} AM states, {} frames",
                s.steps, s.evals, s.lm_states, s.am_states, s.frames
            );
            println!("  minimized: {}", s.divergence);
        }
        if let Some(p) = &d.repro_path {
            println!(
                "  repro: {} (replay: unfold-cli verify --repro {0})",
                p.display()
            );
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
