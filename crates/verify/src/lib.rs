#![warn(missing_docs)]

//! Randomized differential verification for the UNFOLD decoder.
//!
//! The paper's central correctness claim is that on-the-fly composition
//! is *exactly* equivalent to searching the offline-composed WFST
//! (Section 3; Table 6 reports identical WER). The hand-written tests in
//! `tests/` pin that equivalence — and the bit-identity of every
//! decode-time acceleration — on a handful of fixed presets. This crate
//! hunts for divergence systematically, in the spirit of the
//! differential testing practiced around WFST toolkits:
//!
//! 1. [`CaseSpec::derive`] generates seeded adversarial model/utterance
//!    pairs with knobs skewed toward edge cases: unigram-only and
//!    pruned-bigram LMs (deep back-off chains), coarse weight grids
//!    (arc-weight ties), tight beams, CTC vs 3-state topologies, and
//!    empty / one-frame utterances.
//! 2. [`run_case`] decodes each case through the full configuration
//!    matrix — on-the-fly vs offline-composed oracle, OLT sizes
//!    ∈ {0, small, large}, fresh vs warm scratch, `jobs` ∈ {1, N},
//!    streaming vs whole-utterance, compressed models vs their
//!    `to_wfst()` round-trips, the two-pass rescoring bound — and
//!    replays the recorded trace through the accelerator simulator
//!    twice, asserting [`unfold_sim::SimReport`] determinism.
//! 3. On divergence, [`shrink`] runs a delta-debugging loop over the
//!    generator knobs (drop words, truncate frames, shrink the
//!    vocabulary and corpus, force a unigram-only LM) until no simpler
//!    spec still diverges, and [`ReproCase`] serializes the minimized
//!    case as a self-contained text file that
//!    `unfold-cli verify --repro <file>` replays.
//!
//! [`Mutation`] injects known decoder bugs (e.g. an OLT-style memo that
//! skips the full-key compare, §3.1/DESIGN.md §7) so the campaign's
//! detection and shrinking machinery is itself tested end to end.

pub mod campaign;
pub mod case;
pub mod check;
pub mod repro;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignDivergence, CampaignReport};
pub use case::{CaseModels, CaseSpec};
pub use check::{
    run_case, run_case_caught, run_case_caught_filtered, run_case_filtered, CheckId, Divergence,
    Mutation,
};
pub use repro::{run_repro, ReproCase, ReproParseError};
pub use shrink::{shrink, ShrinkOutcome};
